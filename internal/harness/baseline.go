package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"eds/internal/core"
	"eds/internal/gen"
	"eds/internal/sim"
	"eds/internal/verify"
)

// BaselineRow compares the distributed algorithm against centralized
// baselines over a batch of random instances: total edges selected by
// each method. The centralized methods see the whole graph; the
// distributed one sees only ports — the gap is the price of locality and
// anonymity on typical (non-adversarial) inputs.
type BaselineRow struct {
	Nodes, MaxDeg, Trials int
	// Totals over all trials.
	Distributed, GreedyMM, GreedyEDS, Exact int
	// ExactAll reports whether every instance was within the exact
	// solver's budget.
	ExactAll bool
}

// BaselineComparison runs A(Δ), the greedy maximal matching, the greedy
// EDS heuristic, and (when tractable) the exact solver on a batch of
// random bounded-degree graphs.
func BaselineComparison(seed int64, n, maxDeg, trials int) (BaselineRow, error) {
	rng := rand.New(rand.NewSource(seed))
	row := BaselineRow{Nodes: n, MaxDeg: maxDeg, Trials: trials, ExactAll: true}
	for t := 0; t < trials; t++ {
		g := gen.RandomBoundedDegree(rng, n, maxDeg, 0.5)
		if g.M() == 0 {
			continue
		}
		d, _, err := sim.RunToEdgeSet(g, core.NewGeneral(maxDeg))
		if err != nil {
			return BaselineRow{}, err
		}
		if !verify.IsEdgeDominatingSet(g, d) {
			return BaselineRow{}, fmt.Errorf("harness: infeasible distributed output on trial %d", t)
		}
		row.Distributed += d.Count()
		row.GreedyMM += verify.GreedyMaximalMatching(g).Count()
		greedy := verify.GreedyEDS(g)
		if !verify.IsEdgeDominatingSet(g, greedy) {
			return BaselineRow{}, fmt.Errorf("harness: infeasible greedy EDS on trial %d", t)
		}
		row.GreedyEDS += greedy.Count()
		if g.M() <= exactThresholdEdges {
			row.Exact += verify.MinimumMaximalMatching(g).Count()
		} else {
			row.ExactAll = false
		}
	}
	return row, nil
}

// FormatBaseline renders comparison rows.
func FormatBaseline(rows []BaselineRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%6s %7s %7s  %12s %10s %10s %8s\n",
		"nodes", "maxdeg", "trials", "distributed", "greedy-mm", "greedy-eds", "exact")
	sb.WriteString(strings.Repeat("-", 70) + "\n")
	for _, r := range rows {
		exact := fmt.Sprint(r.Exact)
		if !r.ExactAll {
			exact = "n/a"
		}
		fmt.Fprintf(&sb, "%6d %7d %7d  %12d %10d %10d %8s\n",
			r.Nodes, r.MaxDeg, r.Trials, r.Distributed, r.GreedyMM, r.GreedyEDS, exact)
	}
	return sb.String()
}
