// Command lbexplore inspects the paper's lower-bound constructions: it
// builds the Theorem 1 (even d) or Theorem 2 (odd d) instance, verifies
// the covering map onto the quotient multigraph, runs every applicable
// algorithm, and shows how the covering argument forces the tight ratio —
// including the per-fibre uniform outputs.
//
// Usage:
//
//	lbexplore -d 6
//	lbexplore -d 5 -fibres
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"eds/internal/core"
	"eds/internal/cover"
	"eds/internal/lowerbound"
	"eds/internal/ratio"
	"eds/internal/sim"
	"eds/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbexplore: ")
	d := flag.Int("d", 6, "degree of the construction (even -> Theorem 1, odd -> Theorem 2)")
	fibres := flag.Bool("fibres", false, "print the per-fibre outputs")
	flag.Parse()
	if err := explore(os.Stdout, *d, *fibres); err != nil {
		log.Fatal(err)
	}
}

func explore(w io.Writer, d int, fibres bool) error {
	var c *lowerbound.Construction
	var paper ratio.R
	var theorem string
	var err error
	if d%2 == 0 {
		c, err = lowerbound.Even(d)
		paper = ratio.EvenRegularBound(d)
		theorem = "Theorem 1"
	} else {
		c, err = lowerbound.Odd(d)
		paper = ratio.OddRegularBound(d)
		theorem = "Theorem 2"
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s construction for d = %d\n", theorem, d)
	fmt.Fprintf(w, "  nodes: %d, edges: %d, optimum |D*| = %d\n", c.G.N(), c.G.M(), c.Opt.Count())
	if err := cover.Verify(c.G, c.Quotient, c.Map); err != nil {
		return fmt.Errorf("covering map: %w", err)
	}
	fmt.Fprintf(w, "  covering map onto a %d-node quotient multigraph: verified\n", c.Quotient.N())
	fmt.Fprintf(w, "  forced ratio for any deterministic algorithm: %s (= %.4f)\n\n", paper, paper.Float64())

	algs := []sim.Algorithm{core.PortOne{}, core.NewGeneral(d)}
	if d%2 == 1 {
		algs = append(algs, core.RegularOdd{}, core.RegularOdd{SkipPruning: true})
	}
	for _, alg := range algs {
		ds, res, err := sim.RunToEdgeSet(c.G, alg)
		if err != nil {
			return fmt.Errorf("%s: %w", alg.Name(), err)
		}
		measured := ratio.New(int64(ds.Count()), int64(c.Opt.Count()))
		fmt.Fprintf(w, "  %-24s |D| = %4d  ratio = %-7s (%.4f)  rounds = %4d  feasible = %v\n",
			alg.Name(), ds.Count(), measured.String(), measured.Float64(), res.Rounds,
			verify.IsEdgeDominatingSet(c.G, ds))
	}

	if fibres {
		fmt.Fprintln(w, "\nPer-fibre outputs (covering-map lemma: constant on every fibre):")
		alg := algs[0]
		res, err := sim.RunSequential(c.G, alg)
		if err != nil {
			return err
		}
		byFibre := make(map[int][]int)
		for v, f := range c.Map {
			if _, seen := byFibre[f]; !seen {
				byFibre[f] = res.Outputs[v]
			} else if fmt.Sprint(byFibre[f]) != fmt.Sprint(res.Outputs[v]) {
				return fmt.Errorf("fibre %d outputs are not uniform", f)
			}
		}
		for f := 0; f < c.Quotient.N(); f++ {
			size := 0
			for _, m := range c.Map {
				if m == f {
					size++
				}
			}
			fmt.Fprintf(w, "  fibre %d (%d nodes): X = %v\n", f, size, byFibre[f])
		}
	}
	return nil
}
