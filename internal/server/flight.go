package server

import (
	"sync"
	"sync/atomic"
)

// flightGroup coalesces identical in-flight /v1/run requests: the first
// request for a cache key becomes the leader and executes the run; every
// duplicate arriving while it is in flight becomes a follower and waits
// for the leader's outcome instead of occupying a second worker slot.
// Together with the result cache this closes the stampede window — the
// cache serves repeats of *finished* runs, the flight group serves
// repeats of *running* ones.
//
// Outcomes come in two classes. Deterministic outcomes — a successful
// response body or a run failure that is a function of the graph and
// algorithm alone (round limit, malformed send) — are shared with every
// follower verbatim. Private outcomes — the leader's deadline expired,
// its client went away, or its admission budget ran out — say nothing
// about what any other request would see, so followers are not poisoned
// with them: the flight resolves with code 0 and each follower retries,
// the first one becoming the new leader.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-flight run. done is closed exactly once, after res is
// set; followers must only read res after done is closed. size counts
// every request the flight serves (leader included); it is stable once
// finish has removed the key, so a leader reads it after finishing to
// report the batch size.
type flight struct {
	done chan struct{}
	res  flightResult
	size atomic.Int64
}

// flightResult is a leader's published outcome. code 0 marks a private
// outcome (retry); StatusOK carries body; anything else carries msg.
type flightResult struct {
	code int
	body []byte
	msg  string
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join returns the flight for key, creating it if none is in flight. The
// second result is true when the caller became the leader and now owes
// exactly one finish call on every exit path.
func (fg *flightGroup) join(key string) (*flight, bool) {
	fg.mu.Lock()
	defer fg.mu.Unlock()
	if f, ok := fg.m[key]; ok {
		f.size.Add(1)
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	f.size.Add(1)
	fg.m[key] = f
	return f, true
}

// finish publishes the leader's outcome and wakes every follower. The
// key is removed before done is closed, so a request arriving after the
// outcome starts a fresh flight rather than reading a stale one.
func (fg *flightGroup) finish(key string, f *flight, res flightResult) {
	fg.mu.Lock()
	delete(fg.m, key)
	fg.mu.Unlock()
	f.res = res
	close(f.done)
}
