package verify

import (
	"eds/internal/graph"
)

// Exact exponential solvers for small instances. Both the minimum
// maximal matching and the minimum edge dominating set problems are
// NP-hard (Yannakakis and Gavril 1980); these branch-and-bound searches
// are meant for the instance sizes used in tests and experiment baselines
// (tens of edges), where they are fast.

// MinimumMaximalMatching returns a maximal matching of minimum size. By
// Yannakakis–Gavril it is also a minimum edge dominating set.
//
// Branching: pick an edge e = {u,v} with both endpoints unmatched; every
// maximal matching must match u or v, so branch on all edges incident to
// u or v whose endpoints are both unmatched.
func MinimumMaximalMatching(g *graph.Graph) *graph.EdgeSet {
	s := &mmSolver{
		g:       g,
		matched: make([]bool, g.N()),
		current: graph.NewEdgeSet(g.M()),
		best:    allEdgeSet(g),
	}
	s.bestSize = s.best.Count()
	s.maxDominated = 2*g.MaxDegree() - 1
	if s.maxDominated < 1 {
		s.maxDominated = 1
	}
	s.search(0)
	return s.best
}

type mmSolver struct {
	g            *graph.Graph
	matched      []bool
	current      *graph.EdgeSet
	currentSize  int
	best         *graph.EdgeSet
	bestSize     int
	maxDominated int
}

// undominatedFrom returns the smallest edge index >= from whose endpoints
// are both unmatched, or -1.
func (s *mmSolver) undominatedFrom(from int) int {
	for idx := from; idx < s.g.M(); idx++ {
		e := s.g.Edge(idx)
		if !s.matched[e.A.Node] && !s.matched[e.B.Node] {
			return idx
		}
	}
	return -1
}

func (s *mmSolver) countUndominated() int {
	c := 0
	for idx := 0; idx < s.g.M(); idx++ {
		e := s.g.Edge(idx)
		if !s.matched[e.A.Node] && !s.matched[e.B.Node] {
			c++
		}
	}
	return c
}

func (s *mmSolver) search(from int) {
	pivot := s.undominatedFrom(from)
	if pivot == -1 {
		if s.currentSize < s.bestSize {
			s.best = s.current.Clone()
			s.bestSize = s.currentSize
		}
		return
	}
	// Lower bound: each matching edge dominates at most 2Δ-1 edges.
	undom := s.countUndominated()
	lb := s.currentSize + (undom+s.maxDominated-1)/s.maxDominated
	if lb >= s.bestSize {
		return
	}
	e := s.g.Edge(pivot)
	for _, f := range s.candidates(e) {
		fe := s.g.Edge(f)
		s.current.Add(f)
		s.currentSize++
		s.matched[fe.A.Node] = true
		s.matched[fe.B.Node] = true
		// Dominated edges only grow, so the next pivot scan may resume
		// from the current pivot.
		s.search(pivot)
		s.matched[fe.A.Node] = false
		s.matched[fe.B.Node] = false
		s.current.Remove(f)
		s.currentSize--
	}
}

// candidates lists the edges incident to e's endpoints whose own
// endpoints are both unmatched, deduplicated.
func (s *mmSolver) candidates(e graph.Edge) []int {
	seen := make(map[int]bool)
	var out []int
	for _, v := range []int{e.A.Node, e.B.Node} {
		for _, idx := range s.g.IncidentEdges(v) {
			if seen[idx] {
				continue
			}
			seen[idx] = true
			f := s.g.Edge(idx)
			if f.IsLoop() {
				continue // a loop cannot be in a matching
			}
			if !s.matched[f.A.Node] && !s.matched[f.B.Node] {
				out = append(out, idx)
			}
		}
	}
	return out
}

// MinimumEdgeDominatingSet returns a minimum-size edge dominating set by
// direct branch and bound (without the matching restriction). Its size
// always equals MinimumMaximalMatching's; keeping both makes that classic
// equivalence an executable test.
func MinimumEdgeDominatingSet(g *graph.Graph) *graph.EdgeSet {
	s := &edsSolver{
		g:          g,
		coverCount: make([]int, g.N()),
		current:    graph.NewEdgeSet(g.M()),
		best:       allEdgeSet(g),
	}
	s.bestSize = s.best.Count()
	s.maxDominated = 2*g.MaxDegree() - 1
	if s.maxDominated < 1 {
		s.maxDominated = 1
	}
	s.search(0)
	return s.best
}

type edsSolver struct {
	g            *graph.Graph
	coverCount   []int // number of chosen edges covering each node
	current      *graph.EdgeSet
	currentSize  int
	best         *graph.EdgeSet
	bestSize     int
	maxDominated int
}

func (s *edsSolver) dominated(idx int) bool {
	e := s.g.Edge(idx)
	return s.current.Has(idx) || s.coverCount[e.A.Node] > 0 || s.coverCount[e.B.Node] > 0
}

func (s *edsSolver) undominatedFrom(from int) int {
	for idx := from; idx < s.g.M(); idx++ {
		if !s.dominated(idx) {
			return idx
		}
	}
	return -1
}

func (s *edsSolver) countUndominated() int {
	c := 0
	for idx := 0; idx < s.g.M(); idx++ {
		if !s.dominated(idx) {
			c++
		}
	}
	return c
}

func (s *edsSolver) search(from int) {
	pivot := s.undominatedFrom(from)
	if pivot == -1 {
		if s.currentSize < s.bestSize {
			s.best = s.current.Clone()
			s.bestSize = s.currentSize
		}
		return
	}
	undom := s.countUndominated()
	lb := s.currentSize + (undom+s.maxDominated-1)/s.maxDominated
	if lb >= s.bestSize {
		return
	}
	e := s.g.Edge(pivot)
	seen := make(map[int]bool)
	for _, v := range []int{e.A.Node, e.B.Node} {
		for _, idx := range s.g.IncidentEdges(v) {
			if seen[idx] || s.current.Has(idx) {
				continue
			}
			seen[idx] = true
			f := s.g.Edge(idx)
			s.current.Add(idx)
			s.currentSize++
			s.coverCount[f.A.Node]++
			if f.A != f.B {
				s.coverCount[f.B.Node]++
			}
			s.search(pivot)
			s.coverCount[f.A.Node]--
			if f.A != f.B {
				s.coverCount[f.B.Node]--
			}
			s.current.Remove(idx)
			s.currentSize--
		}
	}
}

// GreedyMaximalMatching scans the edges in canonical index order and
// keeps every edge whose endpoints are still unmatched. The result is a
// maximal matching and hence a 2-approximation of the minimum edge
// dominating set (Section 1.2).
func GreedyMaximalMatching(g *graph.Graph) *graph.EdgeSet {
	matched := make([]bool, g.N())
	s := graph.NewEdgeSet(g.M())
	for idx, e := range g.Edges() {
		if e.IsLoop() {
			continue
		}
		if !matched[e.A.Node] && !matched[e.B.Node] {
			s.Add(idx)
			matched[e.A.Node] = true
			matched[e.B.Node] = true
		}
	}
	return s
}

// allEdgeSet returns the full edge set (always an EDS, the trivial upper
// bound used to seed the branch-and-bound searches).
func allEdgeSet(g *graph.Graph) *graph.EdgeSet {
	s := graph.NewEdgeSet(g.M())
	for idx := 0; idx < g.M(); idx++ {
		s.Add(idx)
	}
	return s
}
