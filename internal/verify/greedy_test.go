package verify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eds/internal/gen"
)

func TestGreedyEDSKnownValues(t *testing.T) {
	// On a star, greedy picks one edge; on P4, the middle edge.
	if got := GreedyEDS(gen.Star(7)).Count(); got != 1 {
		t.Errorf("star: %d edges, want 1", got)
	}
	if got := GreedyEDS(gen.Path(4)).Count(); got != 1 {
		t.Errorf("P4: %d edges, want 1", got)
	}
}

func TestGreedyEDSFeasibleQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomBoundedDegree(rng, 4+rng.Intn(14), 1+rng.Intn(5), 0.5)
		s := GreedyEDS(g)
		if !IsEdgeDominatingSet(g, s) {
			return false
		}
		// Greedy is never worse than selecting everything and never
		// smaller than the optimum.
		if g.M() <= 30 {
			opt := MinimumEdgeDominatingSet(g).Count()
			if s.Count() < opt {
				return false
			}
		}
		return s.Count() <= g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGreedyEDSOftenBeatsMaximalMatching(t *testing.T) {
	// Not a theorem — just the yardstick property the studies rely on:
	// over a batch of random graphs, greedy's total is no worse than the
	// greedy maximal matching's total.
	rng := rand.New(rand.NewSource(17))
	sumGreedy, sumMM := 0, 0
	for i := 0; i < 30; i++ {
		g := gen.RandomBoundedDegree(rng, 20, 4, 0.4)
		sumGreedy += GreedyEDS(g).Count()
		sumMM += GreedyMaximalMatching(g).Count()
	}
	if sumGreedy > sumMM {
		t.Errorf("greedy EDS total %d worse than maximal matching total %d", sumGreedy, sumMM)
	}
}
