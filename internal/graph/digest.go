package graph

import "crypto/sha256"

// DigestSize is the length of the canonical graph digest in bytes.
const DigestSize = sha256.Size

// Digest hashes the graph's canonical flat representation: the
// port-offset array (which implies the node count) and the routing
// table (which encodes the port involution), separated by a sentinel.
// Together the two arrays determine the port-numbered graph exactly, so
// any two wire forms that decode to the same graph — reordered conn
// lines, comments, whitespace — digest identically, and any structural
// difference changes the digest.
//
// The digest is the repo's global content address for a graph: the edsd
// result cache keys on it (a run's outcome is a deterministic function
// of the port-numbered graph, a property the determinism lints guard),
// and the cluster tier rendezvous-hashes it to pick the replica that
// owns computing and caching that graph fleet-wide.
func Digest(g *Graph) [DigestSize]byte {
	h := sha256.New()
	var buf [8192]byte
	k := 0
	flush := func() {
		h.Write(buf[:k])
		k = 0
	}
	put := func(v int32) {
		if k == len(buf) {
			flush()
		}
		buf[k+0] = byte(v)
		buf[k+1] = byte(v >> 8)
		buf[k+2] = byte(v >> 16)
		buf[k+3] = byte(v >> 24)
		k += 4
	}
	for _, v := range g.PortOffsets() {
		put(v)
	}
	put(-1) // domain separator between the two arrays
	for _, v := range g.RoutingTable() {
		put(v)
	}
	flush()
	var sum [DigestSize]byte
	h.Sum(sum[:0])
	return sum
}
