// Package checker applies a set of analyzers to loaded packages,
// honours inline suppressions, and renders findings in the familiar
// `go vet` file:line:column format.
//
// Suppression follows the staticcheck convention:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the offending line or on the line directly above it.
// The reason is mandatory — a suppression without a written
// justification is itself reported — so every deliberate violation of
// an invariant is documented where it happens.
package checker

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"eds/internal/lint/analysis"
	"eds/internal/lint/loader"
)

// Finding is one diagnostic from one analyzer, with its position
// resolved.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	analyzers map[string]bool
	pos       token.Position
	used      bool
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. Malformed or unused suppressions are
// reported as findings of the pseudo-analyzer "lint".
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		sups, bad := collectSuppressions(pkg)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if suppressed(sups, name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("checker: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
		// A directive that silenced nothing is stale: the violation it
		// justified is gone, so the justification must go too.
		for _, fileSups := range sups {
			for _, s := range fileSups {
				if !s.used {
					findings = append(findings, Finding{
						Analyzer: "lint",
						Pos:      s.pos,
						Message:  "unused //lint:ignore directive: no diagnostic matched it; delete the stale suppression",
					})
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// collectSuppressions scans a package's comments for //lint:ignore
// directives. Directives missing an analyzer name or a reason are
// returned as findings.
func collectSuppressions(pkg *loader.Package) (map[string][]*suppression, []Finding) {
	byFile := map[string][]*suppression{}
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:ignore: want `//lint:ignore <analyzer> <reason>`",
					})
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(fields[0], ",") {
					names[n] = true
				}
				byFile[pos.Filename] = append(byFile[pos.Filename], &suppression{analyzers: names, pos: pos})
			}
		}
	}
	return byFile, bad
}

// suppressed reports whether a finding by analyzer at pos is covered by
// a directive on the same line or the line above.
func suppressed(sups map[string][]*suppression, analyzer string, pos token.Position) bool {
	for _, s := range sups[pos.Filename] {
		if !s.analyzers[analyzer] {
			continue
		}
		if s.pos.Line == pos.Line || s.pos.Line == pos.Line-1 {
			s.used = true
			return true
		}
	}
	return false
}
