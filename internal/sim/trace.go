package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Trace records the message profile of an execution round by round:
// how many messages were sent and of which payload types. Attach it to a
// sequential, sharded, or auto run with its Option; it is the machinery
// behind the per-phase communication profiles in the experiment reports.
// Traces are engine-independent: the sharded engine produces the exact
// trace the sequential reference would (a property test in
// engines_test.go enforces it).
type Trace struct {
	Rounds []RoundTrace
}

// RoundTrace is one round's profile.
type RoundTrace struct {
	Round    int
	Messages int
	ByType   map[string]int
}

// NewTrace returns an empty trace and the option that attaches it to a
// run. The sequential and sharded engines (and RunAuto, which only ever
// picks between the two) support tracing; the concurrent engine rejects
// traced runs with ErrHookUnsupported.
func NewTrace() (*Trace, Option) {
	t := &Trace{}
	return t, WithRoundHook(func(round int, sent [][]Message) {
		rt := RoundTrace{Round: round, ByType: make(map[string]int)}
		for _, row := range sent {
			for _, m := range row {
				if m != nil {
					rt.Messages++
					rt.ByType[fmt.Sprintf("%T", m)]++
				}
			}
		}
		t.Rounds = append(t.Rounds, rt)
	})
}

// TotalMessages sums the messages over all rounds.
func (t *Trace) TotalMessages() int {
	total := 0
	for _, r := range t.Rounds {
		total += r.Messages
	}
	return total
}

// TypeTotals aggregates the per-type counts over the whole run.
func (t *Trace) TypeTotals() map[string]int {
	out := make(map[string]int)
	for _, r := range t.Rounds {
		for typ, c := range r.ByType {
			out[typ] += c
		}
	}
	return out
}

// String renders a compact profile: total rounds and messages, the
// per-type totals, and the busiest round.
func (t *Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rounds: %d, messages: %d\n", len(t.Rounds), t.TotalMessages())
	totals := t.TypeTotals()
	types := make([]string, 0, len(totals))
	for typ := range totals {
		types = append(types, typ)
	}
	sort.Strings(types)
	for _, typ := range types {
		fmt.Fprintf(&sb, "  %-24s %6d\n", typ, totals[typ])
	}
	busiest := -1
	for i, r := range t.Rounds {
		if busiest == -1 || r.Messages > t.Rounds[busiest].Messages {
			busiest = i
		}
	}
	if busiest >= 0 {
		fmt.Fprintf(&sb, "busiest round: %d with %d messages\n",
			t.Rounds[busiest].Round, t.Rounds[busiest].Messages)
	}
	return sb.String()
}
