// Package ratio implements small exact rational numbers. Table 1 of the
// paper states approximation ratios as exact fractions (4 - 2/d,
// 4 - 6/(d+1), 4 - 1/k); the experiment harness compares measured ratios
// to those formulas as rational equalities, not float approximations.
package ratio

import (
	"fmt"
)

// R is a rational number Num/Den in lowest terms with Den > 0. The zero
// value is 0/1.
type R struct {
	Num, Den int64
}

// New returns num/den in lowest terms. It panics when den == 0.
func New(num, den int64) R {
	if den == 0 {
		panic("ratio: zero denominator")
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := gcd(abs(num), den)
	if g == 0 {
		return R{Num: 0, Den: 1}
	}
	return R{Num: num / g, Den: den / g}
}

// FromInt returns n/1.
func FromInt(n int64) R { return R{Num: n, Den: 1} }

func abs(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Add returns r + s.
func (r R) Add(s R) R { return New(r.num()*s.den()+s.num()*r.den(), r.den()*s.den()) }

// Sub returns r - s.
func (r R) Sub(s R) R { return New(r.num()*s.den()-s.num()*r.den(), r.den()*s.den()) }

// Mul returns r * s.
func (r R) Mul(s R) R { return New(r.num()*s.num(), r.den()*s.den()) }

// num and den normalise the zero value to 0/1.
func (r R) num() int64 { return r.Num }
func (r R) den() int64 {
	if r.Den == 0 {
		return 1
	}
	return r.Den
}

// Cmp returns -1, 0, or +1 as r is less than, equal to, or greater than s.
func (r R) Cmp(s R) int {
	lhs := r.num() * s.den()
	rhs := s.num() * r.den()
	switch {
	case lhs < rhs:
		return -1
	case lhs > rhs:
		return 1
	default:
		return 0
	}
}

// Equal reports whether r == s as rationals.
func (r R) Equal(s R) bool { return r.Cmp(s) == 0 }

// LessEq reports r <= s.
func (r R) LessEq(s R) bool { return r.Cmp(s) <= 0 }

// Float64 returns the floating-point value of r.
func (r R) Float64() float64 { return float64(r.num()) / float64(r.den()) }

// String formats r as "num/den", or just "num" for integers.
func (r R) String() string {
	if r.den() == 1 {
		return fmt.Sprint(r.num())
	}
	return fmt.Sprintf("%d/%d", r.num(), r.den())
}

// EvenRegularBound returns 4 - 2/d, the tight ratio for even d (Theorems
// 1 and 3).
func EvenRegularBound(d int) R { return New(int64(4*d-2), int64(d)) }

// OddRegularBound returns 4 - 6/(d+1), the tight ratio for odd d
// (Theorems 2 and 4).
func OddRegularBound(d int) R { return New(int64(4*(d+1)-6), int64(d+1)) }

// BoundedDegreeBound returns the tight ratio for maximum degree delta:
// 1 for Δ = 1 and 4 - 1/k for Δ ∈ {2k, 2k+1} (Corollary 1 and Theorem 5).
func BoundedDegreeBound(delta int) R {
	if delta <= 1 {
		return FromInt(1)
	}
	k := delta / 2 // works for both 2k and 2k+1
	return New(int64(4*k-1), int64(k))
}
