package core

import (
	"eds/internal/sim"
)

// step is one synchronous round of a node's protocol: send composes the
// outgoing messages (nil entries are empty messages), recv consumes the
// round's inbox.
type step struct {
	send func() []sim.Message
	recv func(inbox []sim.Message)
}

// scriptNode drives a fixed sequence of steps, one per round. Because the
// paper's algorithms have deterministic round schedules that depend only
// on the node's degree (and the family parameter Δ), a protocol is fully
// described by its step list; the node stops when the list is exhausted.
type scriptNode struct {
	deg    int
	steps  []step
	pc     int
	output func() []int
}

var _ sim.Node = (*scriptNode)(nil)

func (s *scriptNode) Send(round int) []sim.Message {
	if out := s.steps[s.pc].send; out != nil {
		msgs := out()
		if msgs == nil {
			msgs = make([]sim.Message, s.deg)
		}
		return msgs
	}
	return make([]sim.Message, s.deg)
}

func (s *scriptNode) Receive(round int, inbox []sim.Message) {
	if recv := s.steps[s.pc].recv; recv != nil {
		recv(inbox)
	}
	s.pc++
}

func (s *scriptNode) Done() bool { return s.pc >= len(s.steps) }

func (s *scriptNode) Output() []int {
	if s.output == nil {
		return nil
	}
	return s.output()
}

// silent returns a no-op step, used to keep heterogeneous-degree nodes
// aligned on a common global round schedule.
func silent() step { return step{} }
