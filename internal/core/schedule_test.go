package core

import (
	"fmt"
	"testing"

	"eds/internal/gen"
	"eds/internal/sim"
)

// TestRegularOddPhaseWindows verifies the protocol structure round by
// round: label exchange exactly in round 0, only propose/respond traffic
// during phase I (rounds 1..2d²), only probe traffic during phase II.
func TestRegularOddPhaseWindows(t *testing.T) {
	g := gen.Complete(4) // 3-regular
	const d = 3
	tr, opt := sim.NewTrace()
	if _, err := sim.RunSequential(g, RegularOdd{}, opt); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(tr.Rounds) != 1+4*d*d {
		t.Fatalf("rounds = %d, want %d", len(tr.Rounds), 1+4*d*d)
	}
	for _, r := range tr.Rounds {
		for typ := range r.ByType {
			var ok bool
			switch {
			case r.Round == 0:
				ok = typ == fmt.Sprintf("%T", msgLabel{})
			case r.Round <= 2*d*d:
				ok = typ == fmt.Sprintf("%T", msgPropose{}) || typ == fmt.Sprintf("%T", msgRespond{})
			default:
				ok = typ == fmt.Sprintf("%T", msgProbe{}) || typ == fmt.Sprintf("%T", msgProbeRespond{})
			}
			if !ok {
				t.Errorf("round %d: unexpected message type %s", r.Round, typ)
			}
		}
	}
}

// TestGeneralPhaseWindows does the same for A(Δ): label exchange, phase
// I pair traffic, then only status/proposal/answer traffic.
func TestGeneralPhaseWindows(t *testing.T) {
	g := gen.Petersen()
	alg := NewGeneral(3)
	delta := alg.Delta()
	tr, opt := sim.NewTrace()
	if _, err := sim.RunSequential(g, alg, opt); err != nil {
		t.Fatalf("run: %v", err)
	}
	phaseIEnd := 2 * delta * delta // rounds 1..phaseIEnd are phase I
	for _, r := range tr.Rounds {
		for typ := range r.ByType {
			var ok bool
			switch {
			case r.Round == 0:
				ok = typ == fmt.Sprintf("%T", msgLabel{})
			case r.Round <= phaseIEnd:
				ok = typ == fmt.Sprintf("%T", msgPropose{}) || typ == fmt.Sprintf("%T", msgRespond{})
			default:
				ok = typ == fmt.Sprintf("%T", msgStatus{}) ||
					typ == fmt.Sprintf("%T", msgProposal{}) ||
					typ == fmt.Sprintf("%T", msgAnswer{})
			}
			if !ok {
				t.Errorf("round %d: unexpected message type %s", r.Round, typ)
			}
		}
	}
	// The status broadcasts happen in exactly Δ rounds (one per phase II
	// iteration plus the phase III opener).
	statusRounds := 0
	for _, r := range tr.Rounds {
		if r.ByType[fmt.Sprintf("%T", msgStatus{})] > 0 {
			statusRounds++
		}
	}
	if want := delta - 1 + 1; statusRounds != want {
		t.Errorf("status rounds = %d, want %d", statusRounds, want)
	}
}
