// Package local contains centralized reference implementations of the
// paper's distributed algorithms. Each reference replays the exact
// decision sequence of its distributed counterpart — same pair order,
// same proposal order, same tie-breaking — but on global state, so tests
// can demand edge-for-edge equality between a sim execution and the
// reference. A protocol bug (round misalignment, wrong tie-break, state
// leaking between phases) shows up as a diff here long before it shows up
// as an infeasible output.
package local

import (
	"fmt"

	"eds/internal/core"
	"eds/internal/graph"
)

// PortOne returns the Theorem 3 selection: every edge connected to a port
// with port number 1.
func PortOne(g *graph.Graph) *graph.EdgeSet {
	s := graph.NewEdgeSet(g.M())
	for idx, e := range g.Edges() {
		if e.A.Num == 1 || e.B.Num == 1 {
			s.Add(idx)
		}
	}
	return s
}

// AllEdges returns every edge of the graph (the Δ = 1 optimum).
func AllEdges(g *graph.Graph) *graph.EdgeSet {
	s := graph.NewEdgeSet(g.M())
	for idx := range g.Edges() {
		s.Add(idx)
	}
	return s
}

// proposerEdge resolves the distinguishable edge of proposer v for pair
// (i,j), returning the edge index and the responder.
func proposerEdge(g *graph.Graph, v, i int) (edge int, responder int) {
	return g.EdgeAt(v, i), g.P(v, i).Node
}

// RegularOdd replays the Theorem 4 algorithm on a d-regular graph. It
// returns an error if the graph is not regular, because the distributed
// round schedule (derived from each node's own degree) is only globally
// aligned on regular graphs.
func RegularOdd(g *graph.Graph, skipPruning bool) (*graph.EdgeSet, error) {
	d, ok := g.Regular()
	if !ok {
		return nil, fmt.Errorf("local: RegularOdd needs a regular graph")
	}
	// Distinguishable ports, once per node.
	dpOwn := make([]int, g.N())
	dpPeer := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		dpOwn[v], dpPeer[v], _ = core.DistinguishablePort(g, v)
	}
	D := graph.NewEdgeSet(g.M())
	degD := make([]int, g.N())
	addEdge := func(idx int) {
		if !D.Has(idx) {
			D.Add(idx)
			e := g.Edge(idx)
			degD[e.A.Node]++
			if e.A != e.B {
				degD[e.B.Node]++
			}
		}
	}
	removeEdge := func(idx int) {
		if D.Has(idx) {
			D.Remove(idx)
			e := g.Edge(idx)
			degD[e.A.Node]--
			if e.A != e.B {
				degD[e.B.Node]--
			}
		}
	}
	// Phase I: build the edge cover.
	for i := 1; i <= d; i++ {
		for j := 1; j <= d; j++ {
			for v := 0; v < g.N(); v++ {
				if dpOwn[v] != i || dpPeer[v] != j {
					continue
				}
				idx, u := proposerEdge(g, v, i)
				if !(degD[v] > 0 && degD[u] > 0) {
					addEdge(idx)
				}
			}
		}
	}
	if skipPruning {
		return D, nil
	}
	// Phase II: prune redundant edges.
	for i := 1; i <= d; i++ {
		for j := 1; j <= d; j++ {
			for v := 0; v < g.N(); v++ {
				if dpOwn[v] != i || dpPeer[v] != j {
					continue
				}
				idx, u := proposerEdge(g, v, i)
				if !D.Has(idx) {
					continue
				}
				if degD[v] >= 2 && degD[u] >= 2 {
					removeEdge(idx)
				}
			}
		}
	}
	return D, nil
}

// GeneralResult carries the phase decomposition of a Theorem 5 run: the
// matching M (phases I-II), the 2-matching P (phase III), and the output
// D = M ∪ P.
type GeneralResult struct {
	D, M, P *graph.EdgeSet
}

// General replays the Theorem 5 algorithm A(Δ). Delta is normalised to
// the next odd value like core.NewGeneral. It returns an error if the
// graph's maximum degree exceeds Δ.
func General(g *graph.Graph, delta int) (GeneralResult, error) {
	if delta < 2 {
		return GeneralResult{}, fmt.Errorf("local: General needs Δ >= 2, got %d", delta)
	}
	if delta%2 == 0 {
		delta++
	}
	if md := g.MaxDegree(); md > delta {
		return GeneralResult{}, fmt.Errorf("local: max degree %d exceeds Δ = %d", md, delta)
	}
	n := g.N()
	dpOwn := make([]int, n)
	dpPeer := make([]int, n)
	for v := 0; v < n; v++ {
		dpOwn[v], dpPeer[v], _ = core.DistinguishablePort(g, v)
	}
	M := graph.NewEdgeSet(g.M())
	covered := make([]bool, n) // covered by M
	// Phase I: greedy matching over the distinguishable pairs.
	for i := 1; i <= delta; i++ {
		for j := 1; j <= delta; j++ {
			for v := 0; v < n; v++ {
				if dpOwn[v] != i || dpPeer[v] != j {
					continue
				}
				idx, u := proposerEdge(g, v, i)
				if !covered[v] && !covered[u] {
					M.Add(idx)
					covered[v] = true
					covered[u] = true
				}
			}
		}
	}
	// Phase II: for each i, a maximal matching on B_i via port-ordered
	// proposals from the degree-i (black) side.
	for i := 2; i <= delta; i++ {
		covAtStart := append([]bool(nil), covered...)
		type blackState struct {
			eligible []int // 0-based ports
			ptr      int
			matched  bool
		}
		blacks := make(map[int]*blackState)
		for v := 0; v < n; v++ {
			if g.Deg(v) != i || covAtStart[v] {
				continue
			}
			bs := &blackState{}
			for idx := 0; idx < g.Deg(v); idx++ {
				u := g.Neighbour(v, idx+1)
				if g.Deg(u) < i && !covAtStart[u] {
					bs.eligible = append(bs.eligible, idx)
				}
			}
			blacks[v] = bs
		}
		for c := 0; c < i; c++ {
			// Proposal round: black v proposes on port bs.eligible[bs.ptr].
			type incoming struct {
				whitePort int // 0-based port at the white node
				black     int
			}
			byWhite := make(map[int][]incoming)
			for v := 0; v < n; v++ {
				bs, ok := blacks[v]
				if !ok || bs.matched || bs.ptr >= len(bs.eligible) {
					continue
				}
				q := g.P(v, bs.eligible[bs.ptr]+1)
				byWhite[q.Node] = append(byWhite[q.Node], incoming{whitePort: q.Num - 1, black: v})
			}
			// Answer round: each white accepts the smallest-port proposal
			// if it is still uncovered.
			for u, props := range byWhite {
				best := -1
				for k, p := range props {
					if best == -1 || p.whitePort < props[best].whitePort {
						best = k
					}
				}
				for k, p := range props {
					bs := blacks[p.black]
					if k == best && !covered[u] {
						M.Add(g.EdgeAt(u, p.whitePort+1))
						covered[u] = true
						covered[p.black] = true
						bs.matched = true
					} else {
						bs.ptr++
					}
				}
			}
		}
	}
	// Phase III: the double-cover 2-matching on the M-uncovered subgraph.
	P := DoubleCoverTwoMatching(g, covered, delta)
	D := M.Clone()
	D.Union(P)
	return GeneralResult{D: D, M: M, P: P}, nil
}

// DoubleCoverTwoMatching replays the proposal protocol of Theorem 5's
// phase III (Polishchuk–Suomela): on the subgraph of edges whose
// endpoints are both unflagged in excluded, every node proposes along
// its eligible ports in increasing order until accepted and accepts the
// first incoming proposal of its life; cycles copies of the protocol
// run. The accepted edges form a 2-matching dominating every eligible
// edge. Pass a nil excluded slice to run on the whole graph.
func DoubleCoverTwoMatching(g *graph.Graph, excluded []bool, cycles int) *graph.EdgeSet {
	n := g.N()
	if excluded == nil {
		excluded = make([]bool, n)
	}
	P := graph.NewEdgeSet(g.M())
	type h3 struct {
		eligible         []int
		ptr              int
		sentAccepted     bool
		acceptedIncoming bool
	}
	hs := make([]*h3, n)
	for v := 0; v < n; v++ {
		hs[v] = &h3{}
		if excluded[v] {
			continue
		}
		for idx := 0; idx < g.Deg(v); idx++ {
			if !excluded[g.Neighbour(v, idx+1)] {
				hs[v].eligible = append(hs[v].eligible, idx)
			}
		}
	}
	for c := 0; c < cycles; c++ {
		type incoming struct {
			port     int // 0-based port at the receiver
			proposer int
		}
		byNode := make(map[int][]incoming)
		for v := 0; v < n; v++ {
			s := hs[v]
			if excluded[v] || s.sentAccepted || s.ptr >= len(s.eligible) {
				continue
			}
			q := g.P(v, s.eligible[s.ptr]+1)
			byNode[q.Node] = append(byNode[q.Node], incoming{port: q.Num - 1, proposer: v})
		}
		for u, props := range byNode {
			best := -1
			if !hs[u].acceptedIncoming {
				for k, p := range props {
					if best == -1 || p.port < props[best].port {
						best = k
					}
				}
			}
			for k, p := range props {
				if k == best {
					P.Add(g.EdgeAt(u, p.port+1))
					hs[u].acceptedIncoming = true
					hs[p.proposer].sentAccepted = true
				} else {
					hs[p.proposer].ptr++
				}
			}
		}
	}
	return P
}

// VertexCover3 is the centralized reference of core.VertexCover3: the
// nodes covered by the whole-graph double-cover 2-matching form a vertex
// cover of size at most 3 times the minimum.
func VertexCover3(g *graph.Graph, delta int) []bool {
	p := DoubleCoverTwoMatching(g, nil, delta)
	return graph.CoveredNodes(g, p)
}
