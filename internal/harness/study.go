package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"eds/internal/core"
	"eds/internal/gen"
	"eds/internal/graph"
	"eds/internal/local"
	"eds/internal/lowerbound"
	"eds/internal/sim"
	"eds/internal/verify"
)

// StudyRow is one data point of a random-graph study: the algorithm's
// ratio against the best available lower bound on the optimum.
type StudyRow struct {
	Family    string
	Param     int // d or Δ
	Nodes     int
	Trials    int
	Algorithm string
	// AvgRatio averages |D| / opt over the trials, where opt is exact for
	// small instances and otherwise the lower bound
	// max(|greedy MM|/2, ⌈|E|/(2Δ-1)⌉) — making AvgRatio an upper
	// estimate of the true average ratio.
	AvgRatio float64
	// WorstRatio is the maximum over trials.
	WorstRatio float64
	// Exact reports whether the optimum was computed exactly.
	Exact bool
	// PaperBound is the worst-case bound for this family, for context.
	PaperBound float64
}

// exactThresholdEdges bounds the instance size handed to the exponential
// exact solver.
const exactThresholdEdges = 36

// optimumOrBound returns a lower bound on the minimum EDS size, exact
// when the instance is small. For large instances it uses the best of
// two polynomial bounds: ν(G)/2 (any maximal matching has at least half
// the edges of a maximum one, computed with Edmonds' blossom algorithm)
// and |E|/(2Δ-1) (each chosen edge dominates at most 2Δ-1 edges).
func optimumOrBound(g *graph.Graph) (size int, exact bool) {
	if g.M() == 0 {
		return 0, true
	}
	if g.M() <= exactThresholdEdges {
		return verify.MinimumMaximalMatching(g).Count(), true
	}
	nu := verify.MaximumMatching(g).Count()
	lb := (nu + 1) / 2
	dom := 2*g.MaxDegree() - 1
	if byDom := (g.M() + dom - 1) / dom; byDom > lb {
		lb = byDom
	}
	return lb, false
}

// RandomRegularStudy measures the typical-case ratio of the appropriate
// regular-graph algorithm (PortOne for even d, RegularOdd for odd d) on
// random d-regular graphs, quantifying how far typical inputs sit from
// the adversarial bound.
func RandomRegularStudy(seed int64, d, n, trials int) (StudyRow, error) {
	rng := rand.New(rand.NewSource(seed))
	var alg sim.Algorithm
	var bound float64
	if d%2 == 0 {
		alg = core.PortOne{}
		bound = float64(4) - 2/float64(d)
	} else {
		alg = core.RegularOdd{}
		bound = float64(4) - 6/float64(d+1)
	}
	row := StudyRow{Family: "random d-regular", Param: d, Nodes: n, Trials: trials,
		Algorithm: alg.Name(), PaperBound: bound, Exact: true}
	var sum float64
	for t := 0; t < trials; t++ {
		g, err := gen.RandomRegular(rng, n, d)
		if err != nil {
			return StudyRow{}, err
		}
		ds, _, err := sim.RunToEdgeSet(g, alg)
		if err != nil {
			return StudyRow{}, err
		}
		if !verify.IsEdgeDominatingSet(g, ds) {
			return StudyRow{}, fmt.Errorf("harness: infeasible output on trial %d", t)
		}
		opt, exact := optimumOrBound(g)
		row.Exact = row.Exact && exact
		r := float64(ds.Count()) / float64(opt)
		sum += r
		if r > row.WorstRatio {
			row.WorstRatio = r
		}
	}
	row.AvgRatio = sum / float64(trials)
	return row, nil
}

// RandomBoundedStudy does the same for A(Δ) on random max-degree-Δ
// graphs.
func RandomBoundedStudy(seed int64, delta, n, trials int) (StudyRow, error) {
	rng := rand.New(rand.NewSource(seed))
	alg := core.NewGeneral(delta)
	k := delta / 2
	row := StudyRow{Family: "random max-deg Δ", Param: delta, Nodes: n, Trials: trials,
		Algorithm: alg.Name(), PaperBound: 4 - 1/float64(k), Exact: true}
	var sum float64
	for t := 0; t < trials; t++ {
		g := gen.RandomBoundedDegree(rng, n, delta, 0.6)
		if g.M() == 0 {
			continue
		}
		ds, _, err := sim.RunToEdgeSet(g, alg)
		if err != nil {
			return StudyRow{}, err
		}
		if !verify.IsEdgeDominatingSet(g, ds) {
			return StudyRow{}, fmt.Errorf("harness: infeasible output on trial %d", t)
		}
		opt, exact := optimumOrBound(g)
		row.Exact = row.Exact && exact
		r := float64(ds.Count()) / float64(opt)
		sum += r
		if r > row.WorstRatio {
			row.WorstRatio = r
		}
	}
	row.AvgRatio = sum / float64(trials)
	return row, nil
}

// RandomizedBaselineStudy measures the Ext-B ablation: a randomized
// maximal matching (symmetry broken by per-node coins, which the paper's
// deterministic anonymous model forbids) on the same adversarial
// construction where every deterministic algorithm is forced to ratio
// 4 - 2/d. Randomness collapses the ratio to at most 2.
func RandomizedBaselineStudy(seed int64, d, trials int) (StudyRow, error) {
	if d%2 != 0 {
		return StudyRow{}, fmt.Errorf("harness: randomized baseline study uses the even construction, got d=%d", d)
	}
	rng := rand.New(rand.NewSource(seed))
	row := StudyRow{Family: "Thm-1 construction", Param: d, Trials: trials,
		Algorithm: "randomized-mm", PaperBound: 2}
	c, err := lowerbound.Even(d)
	if err != nil {
		return StudyRow{}, err
	}
	row.Nodes = c.G.N()
	opt := c.Opt.Count()
	var sum float64
	for t := 0; t < trials; t++ {
		mm := local.RandomizedMaximalMatching(rng, c.G)
		if !verify.IsMaximalMatching(c.G, mm) {
			return StudyRow{}, fmt.Errorf("harness: randomized baseline produced a non-maximal matching")
		}
		r := float64(mm.Count()) / float64(opt)
		sum += r
		if r > row.WorstRatio {
			row.WorstRatio = r
		}
	}
	row.AvgRatio = sum / float64(trials)
	row.Exact = true
	return row, nil
}

// FormatStudy renders study rows as an aligned table.
func FormatStudy(rows []StudyRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %5s %6s %7s  %-22s %9s %9s %7s %10s\n",
		"family", "param", "nodes", "trials", "algorithm", "avg", "worst", "exact", "paper-bound")
	sb.WriteString(strings.Repeat("-", 108) + "\n")
	for _, r := range rows {
		exact := "no"
		if r.Exact {
			exact = "yes"
		}
		fmt.Fprintf(&sb, "%-20s %5d %6d %7d  %-22s %9.4f %9.4f %7s %10.4f\n",
			r.Family, r.Param, r.Nodes, r.Trials, r.Algorithm,
			r.AvgRatio, r.WorstRatio, exact, r.PaperBound)
	}
	return sb.String()
}
