// In-package test fixture: the loader now feeds _test.go files to the
// analyzers (LoadTests for real packages, LoadDir for fixtures), so a
// retention bug written inside a test — the most common place to write
// an ad-hoc round hook — is caught the same way as one in production
// code.
package outboxalias

import (
	"testing"

	"eds/internal/sim"
)

// captured is the classic test bug this file pins: a hook that saves
// the matrix to assert on after the run. By then the sharded engine has
// recycled the backing store into its pool.
var captured [][]sim.Message

func TestHookRetention(t *testing.T) {
	hook := func(round int, sent [][]sim.Message) {
		captured = sent // want `stored outside the callback`
	}
	_ = hook
}

type testRecorder struct {
	lastInbox []sim.Message
}

func (r *testRecorder) observe(inbox []sim.Message) {
	r.lastInbox = inbox // want `stored in a field`
}

func TestLawfulSnapshot(t *testing.T) {
	hook := func(round int, sent [][]sim.Message) {
		// Deep copy before the callback returns: allowed.
		snap := make([][]sim.Message, len(sent))
		for v := range sent {
			snap[v] = append([]sim.Message(nil), sent[v]...)
		}
		captured = snap
	}
	_ = hook
}
