package core

import (
	"fmt"

	"eds/internal/graph"
	"eds/internal/sim"
)

// General is the Theorem 5 family A(Δ) for graphs of maximum degree Δ.
// Given Δ = 2k+1 (an even parameter is promoted to the next odd one,
// exactly as the paper sets A(2k) = A(2k+1)), the algorithm builds two
// node-disjoint edge sets and outputs their union D = M ∪ P:
//
//	Phase I   — a greedy matching M over the distinguishable-edge
//	            matchings M_G(i,j), processed pair by pair: add e when
//	            neither endpoint is covered by M. Afterwards every
//	            odd-degree node is covered by M or adjacent to a covered
//	            node (property b).
//	Phase II  — for i = 2..Δ: a maximal matching M_i on the bipartite
//	            graph B_i of edges {u,v} with deg(u) < deg(v) = i and
//	            both endpoints M-uncovered, via port-ordered proposals
//	            from the degree-i side; M grows by M_i. Afterwards every
//	            surviving uncovered edge joins equal-degree endpoints
//	            (property c).
//	Phase III — on the subgraph H of edges with both endpoints
//	            M-uncovered, a 2-matching P dominating H: simultaneous
//	            port-ordered proposals, each node accepting at most one
//	            incoming proposal and retiring after one accepted
//	            outgoing proposal — a maximal matching on the bipartite
//	            double cover of H mapped back to H (Polishchuk–Suomela).
//
// The approximation factor is 4 - 1/k for max degree in {2k, 2k+1},
// optimal by Corollary 1; the round schedule depends only on Δ, so one
// compiled program serves every node of a run regardless of degree.
type General struct {
	delta int // normalised: odd, >= 3
}

var (
	_ sim.Algorithm     = General{}
	_ sim.BulkAlgorithm = General{}
)

// NewGeneral returns A(Δ) for graphs of maximum degree at most Δ. It
// panics if delta < 2; use AllEdges for Δ = 1.
func NewGeneral(delta int) General {
	if delta < 2 {
		panic(fmt.Sprintf("core: General needs Δ >= 2, got %d (use AllEdges for Δ = 1)", delta))
	}
	if delta%2 == 0 {
		delta++ // A(2k) = A(2k+1)
	}
	return General{delta: delta}
}

// Name implements sim.Algorithm.
func (a General) Name() string { return fmt.Sprintf("general(Δ=%d)", a.delta) }

// Delta returns the normalised (odd) family parameter.
func (a General) Delta() int { return a.delta }

// Rounds returns the full round schedule length for the family parameter:
// 1 label-exchange round, 2Δ² phase I rounds, Σ_{i=2..Δ} (1+2i) phase II
// rounds, and 1+2Δ phase III rounds.
func (a General) Rounds(int) int {
	d := a.delta
	total := 1 + 2*d*d
	for i := 2; i <= d; i++ {
		total += 1 + 2*i
	}
	total += 1 + 2*d
	return total
}

// generalState carries the mutable per-node state across the phases.
// Every slice is arena-carved by initGeneralState; the two scratch
// lists hold at most one entry per port, so their capacity is the
// degree and every proposal round is allocation-free.
type generalState struct {
	pairState         // phase I machinery; inSet = membership in M
	inP        []bool // phase III membership
	nbrCovered []bool // neighbour M-coverage, refreshed by status rounds

	// Phase II (black role) per-iteration state.
	eligible []int // 0-based ports to propose on, in increasing order
	ptr      int
	matched  bool

	// Shared proposal bookkeeping.
	proposedPort  int   // 0-based port proposed on this cycle, -1 if none
	proposalPorts []int // 0-based ports that carried proposals this cycle

	// Phase III state.
	sentAccepted     bool
	acceptedIncoming bool
}

func initGeneralState(st *generalState, deg int, arena *sim.StateArena) {
	st.pairState.init(deg, arena)
	st.inP = arenaBools(arena, deg)
	st.nbrCovered = arenaBools(arena, deg)
	st.eligible = arenaInts(arena, deg)[:0]
	st.proposalPorts = arenaInts(arena, deg)[:0]
	st.proposedPort = -1
}

// generalPair is the embedded-pairState accessor the shared Theorem 4/5
// step builders hook into.
func generalPair(st *generalState) *pairState { return &st.pairState }

// NewNode implements sim.Algorithm.
func (a General) NewNode(degree int) sim.Node {
	return newProgNode(generalProgram(a.Name(), a.delta), degree)
}

// BuildNodes implements sim.BulkAlgorithm: one shared program (the
// schedule depends only on Δ), one node slab, state carved from the
// shard's arena.
func (a General) BuildNodes(g *graph.Graph, lo, hi int, arena *sim.StateArena, nodes []sim.Node) {
	prog := generalProgram(a.Name(), a.delta)
	buildProgNodes(g, lo, hi, arena, nodes, func(int) *program[generalState] { return prog })
}

// generalProgram compiles (once per Δ) the full A(Δ) schedule. Every
// step guards on the node's runtime degree, so nodes of every degree
// share the one program and stay on the common global round schedule.
func generalProgram(kind string, delta int) *program[generalState] {
	return cachedProgram(kind, 0, func() *program[generalState] {
		p := &program[generalState]{
			init: initGeneralState,
			output: func(st *generalState, deg int, dst []int) []int {
				for idx := 0; idx < deg; idx++ {
					if st.inSet[idx] || st.inP[idx] {
						dst = append(dst, idx+1)
					}
				}
				return dst
			},
		}
		p.steps = append(p.steps, labelExchangeStep(generalPair))
		// Phase I: all pairs over the family parameter so every node stays
		// on the same global schedule regardless of its own degree.
		for i := 1; i <= delta; i++ {
			for j := 1; j <= delta; j++ {
				p.steps = append(p.steps, phaseIAddSteps(generalPair, i, j, addOnlyIfNeitherCovered)...)
			}
		}
		// Phase II: degree-stratified bipartite maximal matchings.
		for i := 2; i <= delta; i++ {
			p.steps = append(p.steps, phaseIIStatusStep(i))
			for c := 0; c < i; c++ {
				p.steps = append(p.steps, phaseIIProposeStep(), phaseIIAnswerStep())
			}
		}
		// Phase III: the 2-matching on the M-uncovered subgraph.
		p.steps = append(p.steps, phaseIIIStatusStep())
		for c := 0; c < delta; c++ {
			p.steps = append(p.steps, phaseIIIProposeStep(), phaseIIIAnswerStep())
		}
		return p
	})
}

// phaseIIStatusStep opens iteration i of phase II: everyone broadcasts
// its M-coverage; a node of degree exactly i that is uncovered becomes
// black and lists its eligible white neighbours (smaller degree,
// uncovered) in increasing port order.
func phaseIIStatusStep(i int) pstep[generalState] {
	return pstep[generalState]{
		send: statusBroadcast,
		recv: func(st *generalState, inbox []sim.Message) {
			recordStatus(st, inbox)
			st.eligible = st.eligible[:0]
			st.ptr = 0
			st.matched = false
			if st.deg != i || st.covered() {
				return
			}
			for idx := 0; idx < st.deg; idx++ {
				if st.peerDeg[idx] < i && !st.nbrCovered[idx] {
					st.eligible = append(st.eligible, idx)
				}
			}
		},
	}
}

// phaseIIProposeStep: every live black node proposes to its next eligible
// white neighbour.
func phaseIIProposeStep() pstep[generalState] {
	return pstep[generalState]{
		send: func(st *generalState, buf []sim.Message) {
			st.proposedPort = -1
			if st.matched || st.ptr >= len(st.eligible) {
				return
			}
			st.proposedPort = st.eligible[st.ptr]
			buf[st.proposedPort] = msgProposal{}
		},
		recv: collectProposals,
	}
}

// phaseIIAnswerStep: every white node answers the proposals it has just
// received — accepting the one on its smallest port if it is still
// unmatched in M, rejecting everything else — and the black nodes act on
// the answers. A white that got matched in an earlier cycle of this
// iteration is covered by M and must reject.
func phaseIIAnswerStep() pstep[generalState] {
	return pstep[generalState]{
		send: func(st *generalState, buf []sim.Message) {
			if st.covered() {
				rejectAll(st, buf)
				return
			}
			answerProposals(st, buf, func(accepted int) {
				st.inSet[accepted] = true
			})
		},
		recv: func(st *generalState, inbox []sim.Message) {
			if st.proposedPort < 0 {
				return
			}
			if m, ok := inbox[st.proposedPort].(msgAnswer); ok {
				if m.Accept {
					st.inSet[st.proposedPort] = true
					st.matched = true
				} else {
					st.ptr++
				}
			}
			st.proposedPort = -1
		},
	}
}

// phaseIIIStatusStep opens phase III: everyone broadcasts M-coverage; an
// uncovered node lists the incident H-edges (both endpoints uncovered).
func phaseIIIStatusStep() pstep[generalState] {
	return pstep[generalState]{
		send: statusBroadcast,
		recv: func(st *generalState, inbox []sim.Message) {
			recordStatus(st, inbox)
			st.eligible = st.eligible[:0]
			st.ptr = 0
			if st.covered() {
				return
			}
			for idx := 0; idx < st.deg; idx++ {
				if !st.nbrCovered[idx] {
					st.eligible = append(st.eligible, idx)
				}
			}
		},
	}
}

// phaseIIIProposeStep: every H-node that has not had a proposal accepted
// yet proposes along its next H-port.
func phaseIIIProposeStep() pstep[generalState] {
	return pstep[generalState]{
		send: func(st *generalState, buf []sim.Message) {
			st.proposedPort = -1
			if st.covered() || st.sentAccepted || st.ptr >= len(st.eligible) {
				return
			}
			st.proposedPort = st.eligible[st.ptr]
			buf[st.proposedPort] = msgProposal{}
		},
		recv: collectProposals,
	}
}

// phaseIIIAnswerStep: each H-node accepts the first incoming proposal of
// its life (smallest port this cycle) and rejects all others; proposers
// act on the answers. Accepted edges form the 2-matching P.
func phaseIIIAnswerStep() pstep[generalState] {
	return pstep[generalState]{
		send: func(st *generalState, buf []sim.Message) {
			if st.acceptedIncoming {
				rejectAll(st, buf)
				return
			}
			answerProposals(st, buf, func(accepted int) {
				st.inP[accepted] = true
				st.acceptedIncoming = true
			})
		},
		recv: func(st *generalState, inbox []sim.Message) {
			if st.proposedPort < 0 {
				return
			}
			if m, ok := inbox[st.proposedPort].(msgAnswer); ok {
				if m.Accept {
					st.inP[st.proposedPort] = true
					st.sentAccepted = true
				} else {
					st.ptr++
				}
			}
			st.proposedPort = -1
		},
	}
}

// statusBroadcast sends the node's M-coverage flag on every port.
func statusBroadcast(st *generalState, buf []sim.Message) {
	cov := st.covered()
	for idx := range buf {
		buf[idx] = msgStatus{Covered: cov}
	}
}

// recordStatus stores the neighbours' coverage flags.
func recordStatus(st *generalState, inbox []sim.Message) {
	for idx, m := range inbox {
		if s, ok := m.(msgStatus); ok {
			st.nbrCovered[idx] = s.Covered
		}
	}
}

// collectProposals notes which ports carried proposals this cycle,
// reusing nbr bookkeeping in proposalPorts.
func collectProposals(st *generalState, inbox []sim.Message) {
	st.proposalPorts = st.proposalPorts[:0]
	for idx, m := range inbox {
		if _, ok := m.(msgProposal); ok {
			st.proposalPorts = append(st.proposalPorts, idx)
		}
	}
}

// answerProposals accepts the smallest-port proposal (invoking onAccept
// with the 0-based port) and rejects the rest, writing the answers into
// the round's send buffer. With no proposals it sends nothing.
func answerProposals(st *generalState, buf []sim.Message, onAccept func(accepted int)) {
	if len(st.proposalPorts) == 0 {
		return
	}
	accepted := st.proposalPorts[0] // smallest port: inbox scanned in order
	onAccept(accepted)
	buf[accepted] = msgAnswer{Accept: true}
	for _, idx := range st.proposalPorts[1:] {
		buf[idx] = msgAnswer{Accept: false}
	}
}

// rejectAll rejects every proposal received this cycle.
func rejectAll(st *generalState, buf []sim.Message) {
	if len(st.proposalPorts) == 0 {
		return
	}
	for _, idx := range st.proposalPorts {
		buf[idx] = msgAnswer{Accept: false}
	}
}
