package verify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eds/internal/gen"
	"eds/internal/graph"
)

// bruteMaxMatching computes the maximum matching size by exhaustive
// recursion; only for tiny graphs.
func bruteMaxMatching(g *graph.Graph) int {
	matched := make([]bool, g.N())
	var rec func(idx int) int
	rec = func(idx int) int {
		if idx == g.M() {
			return 0
		}
		best := rec(idx + 1)
		e := g.Edge(idx)
		if !e.IsLoop() && !matched[e.A.Node] && !matched[e.B.Node] {
			matched[e.A.Node] = true
			matched[e.B.Node] = true
			if v := 1 + rec(idx+1); v > best {
				best = v
			}
			matched[e.A.Node] = false
			matched[e.B.Node] = false
		}
		return best
	}
	return rec(0)
}

func TestMaximumMatchingKnownValues(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"P2", gen.Path(2), 1},
		{"P5", gen.Path(5), 2},
		{"C5", gen.Cycle(5), 2},
		{"C6", gen.Cycle(6), 3},
		{"K4", gen.Complete(4), 2},
		{"K5", gen.Complete(5), 2},
		{"K7", gen.Complete(7), 3},
		{"Petersen", gen.Petersen(), 5}, // has a perfect matching
		{"Star6", gen.Star(6), 1},
		{"K34", gen.CompleteBipartite(3, 4), 3},
		{"two triangles", graph.MustFromUndirected(6,
			[][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}), 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := MaximumMatching(tc.g)
			if !IsMatching(tc.g, m) {
				t.Fatal("result is not a matching")
			}
			if got := m.Count(); got != tc.want {
				t.Errorf("ν = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestMaximumMatchingAgainstBruteForceQuick(t *testing.T) {
	// Blossoms matter exactly on odd structures; random graphs with
	// triangles and odd cycles exercise the shrinking logic.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomBoundedDegree(rng, 4+rng.Intn(7), 1+rng.Intn(5), 0.6)
		if g.M() > 16 {
			return true // keep brute force tractable
		}
		m := MaximumMatching(g)
		if !IsMatching(g, m) {
			return false
		}
		return m.Count() == bruteMaxMatching(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestMatchingSandwichQuick(t *testing.T) {
	// ν/2 <= minimum maximal matching <= ν, and every maximal matching
	// sits between the minimum maximal matching and ν.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomBoundedDegree(rng, 4+rng.Intn(8), 1+rng.Intn(4), 0.5)
		nu := MaximumMatching(g).Count()
		mmm := MinimumMaximalMatching(g).Count()
		greedy := GreedyMaximalMatching(g).Count()
		return 2*mmm >= nu && mmm <= nu && mmm <= greedy && greedy <= nu
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMinimumEdgeCoverGallaiQuick(t *testing.T) {
	// Gallai: for a graph without isolated nodes, the minimum edge cover
	// has exactly n - ν edges.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		// A random tree plus extra edges has no isolated nodes.
		g := gen.RandomTree(rng, n)
		c, err := MinimumEdgeCover(g)
		if err != nil {
			return false
		}
		if !IsEdgeCover(g, c) {
			return false
		}
		nu := MaximumMatching(g).Count()
		return c.Count() == g.N()-nu
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMinimumEdgeCoverRejectsIsolated(t *testing.T) {
	g := graph.MustFromUndirected(3, [][2]int{{0, 1}})
	if _, err := MinimumEdgeCover(g); err == nil {
		t.Error("isolated node accepted")
	}
}

func TestMaximumMatchingOnLargeRegular(t *testing.T) {
	// Polynomial scaling sanity: a 3-regular graph on 200 nodes has a
	// (near-)perfect matching; ν >= n/2 - o(n) and the result is valid.
	rng := rand.New(rand.NewSource(8))
	g := gen.MustRandomRegular(rng, 200, 3)
	m := MaximumMatching(g)
	if !IsMatching(g, m) {
		t.Fatal("not a matching")
	}
	if m.Count() < 95 {
		t.Errorf("ν = %d suspiciously small for a 200-node 3-regular graph", m.Count())
	}
}
