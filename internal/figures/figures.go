// Package figures regenerates the paper's Figures 1-9 as machine-checked
// artifacts: for every figure it rebuilds the depicted object (graph,
// port numbering, matching family, algorithm phase output, or cost
// decomposition), validates the properties the paper states about it, and
// renders DOT + text.
//
// Figures 2 and 3 are hand-drawn examples whose exact wiring is not
// recoverable from the paper's text; for those the artifact is a
// reconstruction satisfying every property the text asserts (noted in the
// artifact's facts).
package figures

import (
	"fmt"
	"math/rand"

	"eds/internal/core"
	"eds/internal/cover"
	"eds/internal/gen"
	"eds/internal/graph"
	"eds/internal/local"
	"eds/internal/lowerbound"
	"eds/internal/render"
	"eds/internal/sim"
	"eds/internal/verify"
)

// Artifact is one regenerated figure.
type Artifact struct {
	ID    int
	Title string
	// DOT and Text are the rendered artifact bodies.
	DOT, Text string
	// Facts lists the properties that were checked while building the
	// artifact; every fact in the list has been verified programmatically.
	Facts []string
}

// Figure regenerates figure id (1..9).
func Figure(id int) (*Artifact, error) {
	switch id {
	case 1:
		return figure1()
	case 2:
		return figure2()
	case 3:
		return figure3()
	case 4:
		return figure4()
	case 5:
		return figure5()
	case 6:
		return figure6()
	case 7:
		return figure7()
	case 8:
		return figure8()
	case 9:
		return figure9()
	default:
		return nil, fmt.Errorf("figures: no figure %d (valid: 1..9)", id)
	}
}

// All regenerates every figure.
func All() ([]*Artifact, error) {
	out := make([]*Artifact, 0, 9)
	for id := 1; id <= 9; id++ {
		a, err := Figure(id)
		if err != nil {
			return nil, fmt.Errorf("figures: figure %d: %w", id, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// fact appends a printf-style verified fact.
func (a *Artifact) fact(format string, args ...any) {
	a.Facts = append(a.Facts, fmt.Sprintf(format, args...))
}

// figure1 — edge dominating sets vs matchings on an example graph: (a) an
// EDS, (b) a maximal matching, (c) a minimum EDS, (d) a minimum maximal
// matching, with |c| = |d| (Yannakakis-Gavril).
func figure1() (*Artifact, error) {
	// An 8-node graph with enough structure that the four sets differ.
	g := graph.MustFromUndirected(8, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 4}, {2, 5}, {4, 5}, {4, 6}, {5, 7},
	})
	a := &Artifact{ID: 1, Title: "Figure 1: edge dominating sets and matchings"}

	res, err := local.General(g, g.MaxDegree())
	if err != nil {
		return nil, err
	}
	eds := res.D
	mm := verify.GreedyMaximalMatching(g)
	minEDS := verify.MinimumEdgeDominatingSet(g)
	minMM := verify.MinimumMaximalMatching(g)

	if !verify.IsEdgeDominatingSet(g, eds) {
		return nil, fmt.Errorf("(a) is not an EDS")
	}
	a.fact("(a) A(Δ) output is an edge dominating set of size %d", eds.Count())
	if !verify.IsMaximalMatching(g, mm) {
		return nil, fmt.Errorf("(b) is not a maximal matching")
	}
	if !verify.IsEdgeDominatingSet(g, mm) {
		return nil, fmt.Errorf("(b) is not an EDS")
	}
	a.fact("(b) maximal matching of size %d is an EDS too", mm.Count())
	if !verify.IsEdgeDominatingSet(g, minEDS) {
		return nil, fmt.Errorf("(c) is not an EDS")
	}
	a.fact("(c) minimum EDS has size %d", minEDS.Count())
	if !verify.IsMaximalMatching(g, minMM) {
		return nil, fmt.Errorf("(d) is not a maximal matching")
	}
	a.fact("(d) minimum maximal matching has size %d", minMM.Count())
	if minEDS.Count() != minMM.Count() {
		return nil, fmt.Errorf("minimum EDS %d != minimum maximal matching %d", minEDS.Count(), minMM.Count())
	}
	a.fact("minimum EDS size = minimum maximal matching size (Yannakakis-Gavril)")

	opts := render.Options{
		Title: a.Title,
		Overlays: []render.Overlay{
			{Name: "(c) minimum EDS", Set: minEDS, Color: "red"},
			{Name: "(d) minimum maximal matching", Set: minMM, Color: "blue"},
			{Name: "(b) maximal matching", Set: mm, Color: "darkgreen"},
			{Name: "(a) edge dominating set", Set: eds, Color: "orange"},
		},
	}
	a.DOT = render.DOT(g, opts)
	a.Text = render.Text(g, opts)
	return a, nil
}

// figure2 — a port-numbered simple graph H and a port-numbered
// multigraph M (reconstruction; see the package comment).
func figure2() (*Artifact, error) {
	a := &Artifact{ID: 2, Title: "Figure 2: port-numbered graphs H (simple) and M (multigraph)"}
	// H: the Section 5 example properties.
	bh := graph.NewBuilder(4)
	bh.MustConnect(0, 1, 2, 2)
	bh.MustConnect(0, 2, 1, 1)
	bh.MustConnect(1, 2, 3, 2)
	bh.MustConnect(2, 1, 3, 1)
	h := bh.MustBuild()
	labels := []string{"a", "b", "c", "d"}
	if _, _, ok := core.DistinguishablePort(h, 0); ok {
		return nil, fmt.Errorf("node a unexpectedly has a uniquely labelled edge")
	}
	a.fact("H: node a has no uniquely labelled edges")
	if i, _, ok := core.DistinguishablePort(h, 1); !ok || h.P(1, i).Node != 0 {
		return nil, fmt.Errorf("distinguishable neighbour of b is not a")
	}
	a.fact("H: a is the distinguishable neighbour of b")
	if i, _, ok := core.DistinguishablePort(h, 2); !ok || h.P(2, i).Node != 3 {
		return nil, fmt.Errorf("distinguishable neighbour of c is not d")
	}
	a.fact("H: d is the distinguishable neighbour of c")

	// M: the paper's exact multigraph — V = {s,t}, deg(s)=3, deg(t)=4,
	// p: (s,1)<->(t,2), (s,2)<->(t,1), (s,3) fixed point, (t,3)<->(t,4).
	bm := graph.NewBuilder(2)
	bm.MustConnect(0, 1, 1, 2)
	bm.MustConnect(0, 2, 1, 1)
	bm.MustConnect(0, 3, 0, 3)
	bm.MustConnect(1, 3, 1, 4)
	m := bm.MustBuild()
	if m.Deg(0) != 3 || m.Deg(1) != 4 {
		return nil, fmt.Errorf("M degrees wrong")
	}
	a.fact("M: d(s) = 3 with a directed loop, d(t) = 4 with an undirected loop")

	optsH := render.Options{Title: "H", NodeLabels: labels, Ports: true}
	optsM := render.Options{Title: "M", NodeLabels: []string{"s", "t"}, Ports: true}
	a.DOT = render.DOT(h, optsH) + "\n" + render.DOT(m, optsM)
	a.Text = render.Text(h, optsH) + "\n" + render.Text(m, optsM)
	return a, nil
}

// figure3 — a simple covering graph C of a multigraph M, plus the
// execution-equivalence consequence: every algorithm produces identical
// outputs on a fibre.
func figure3() (*Artifact, error) {
	a := &Artifact{ID: 3, Title: "Figure 3: a covering graph C of a multigraph M"}
	// M: two nodes (grey, white), each with an undirected loop (ports
	// 1-2) and a shared edge (port 3 on both). 3-regular.
	bm := graph.NewBuilder(2)
	bm.MustConnect(0, 1, 0, 2)
	bm.MustConnect(1, 1, 1, 2)
	bm.MustConnect(0, 3, 1, 3)
	m := bm.MustBuild()
	// C: a triangular prism — grey fibre {g0,g1,g2} on a directed
	// 3-cycle of (1,2) ports, white fibre likewise, spokes on port 3.
	bc := graph.NewBuilder(6)
	for i := 0; i < 3; i++ {
		bc.MustConnect(i, 1, (i+1)%3, 2)     // grey cycle
		bc.MustConnect(3+i, 1, 3+(i+1)%3, 2) // white cycle
		bc.MustConnect(i, 3, 3+i, 3)         // spokes
	}
	c := bc.MustBuild()
	f := []int{0, 0, 0, 1, 1, 1}
	if err := cover.Verify(c, m, f); err != nil {
		return nil, fmt.Errorf("covering map invalid: %w", err)
	}
	a.fact("f is a covering map from C (simple, 6 nodes) onto M (2 nodes with loops)")
	if !c.IsSimple() {
		return nil, fmt.Errorf("C is not simple")
	}
	a.fact("C is simple although M has loops")

	// Execution equivalence (Section 2.3) for an actual algorithm.
	alg := core.NewGeneral(3)
	rc, err := sim.RunSequential(c, alg)
	if err != nil {
		return nil, err
	}
	rm, err := sim.RunSequential(m, alg)
	if err != nil {
		return nil, err
	}
	for v := 0; v < c.N(); v++ {
		if fmt.Sprint(rc.Outputs[v]) != fmt.Sprint(rm.Outputs[f[v]]) {
			return nil, fmt.Errorf("outputs differ on fibre: node %d", v)
		}
	}
	a.fact("running %s: every node of C outputs exactly what its image in M outputs", alg.Name())

	labels := []string{"g0", "g1", "g2", "w0", "w1", "w2"}
	optsC := render.Options{Title: "C (covering graph)", NodeLabels: labels, Ports: true, Classes: f}
	optsM := render.Options{Title: "M (base multigraph)", NodeLabels: []string{"g", "w"}, Ports: true, Classes: []int{0, 1}}
	a.DOT = render.DOT(c, optsC) + "\n" + render.DOT(m, optsM)
	a.Text = render.Text(c, optsC) + "\n" + render.Text(m, optsM)
	return a, nil
}

// factorOverlays extracts the 2-factor colour classes of a pair-port-
// numbered graph: factor i = edges joining port 2i-1 to port 2i.
func factorOverlays(g *graph.Graph, k int) []render.Overlay {
	palette := []string{"red", "blue", "darkgreen", "orange", "purple", "brown"}
	overlays := make([]render.Overlay, 0, k)
	for i := 1; i <= k; i++ {
		s := graph.NewEdgeSet(g.M())
		for idx, e := range g.Edges() {
			lo, hi := e.A.Num, e.B.Num
			if lo > hi {
				lo, hi = hi, lo
			}
			if lo == 2*i-1 && hi == 2*i {
				s.Add(idx)
			}
		}
		overlays = append(overlays, render.Overlay{
			Name:  fmt.Sprintf("factor G(%d)", i),
			Set:   s,
			Color: palette[(i-1)%len(palette)],
		})
	}
	return overlays
}

// figure4 — the Theorem 1 construction for d = 6: the graph, its optimal
// set S, its 2-factorisation, and the covering map onto the one-node
// multigraph.
func figure4() (*Artifact, error) {
	const d = 6
	a := &Artifact{ID: 4, Title: "Figure 4: the Theorem 1 graph for d = 6"}
	c, err := lowerbound.Even(d)
	if err != nil {
		return nil, err
	}
	if err := cover.Verify(c.G, c.Quotient, c.Map); err != nil {
		return nil, err
	}
	a.fact("G is %d-regular on %d nodes and covers the 1-node multigraph M", d, c.G.N())
	a.fact("optimal edge dominating set S has %d edges", c.Opt.Count())

	overlays := factorOverlays(c.G, d/2)
	for _, ov := range overlays {
		deg := graph.DegreeIn(c.G, ov.Set)
		for v := 0; v < c.G.N(); v++ {
			if deg[v] != 2 {
				return nil, fmt.Errorf("%s is not a 2-factor at node %d", ov.Name, v)
			}
		}
	}
	a.fact("ports (2i-1, 2i) decompose G into %d spanning 2-factors", d/2)

	ds, _, err := sim.RunToEdgeSet(c.G, core.PortOne{})
	if err != nil {
		return nil, err
	}
	if !ds.Equal(overlays[0].Set) {
		return nil, fmt.Errorf("PortOne output is not exactly factor G(1)")
	}
	a.fact("the Theorem 3 algorithm selects exactly factor G(1): %d edges vs optimum %d (ratio %d/%d = 4-2/d)",
		ds.Count(), c.Opt.Count(), ds.Count(), c.Opt.Count())

	labels := make([]string, c.G.N())
	for i := 0; i < d; i++ {
		labels[i] = fmt.Sprintf("a%d", i+1)
	}
	for j := 0; j < d-1; j++ {
		labels[d+j] = fmt.Sprintf("b%d", j+1)
	}
	opts := render.Options{
		Title:      a.Title,
		NodeLabels: labels,
		Ports:      true,
		Overlays:   append([]render.Overlay{{Name: "optimum S", Set: c.Opt, Color: "black"}}, overlays...),
	}
	a.DOT = render.DOT(c.G, opts)
	a.Text = render.Text(c.G, opts)
	return a, nil
}

// figure5 — the component H(ℓ) for d = 5.
func figure5() (*Artifact, error) {
	const d = 5
	a := &Artifact{ID: 5, Title: "Figure 5: the component H(ℓ) for d = 5"}
	h, err := lowerbound.Component(d)
	if err != nil {
		return nil, err
	}
	k := (d - 1) / 2
	if got, ok := h.Regular(); !ok || got != 2*k {
		return nil, fmt.Errorf("H(ℓ) is not %d-regular", 2*k)
	}
	a.fact("H(ℓ) is %d-regular on %d nodes (star R + matching S + crown T)", 2*k, h.N())
	sSet := graph.NewEdgeSet(h.M())
	for t := 0; t < k; t++ {
		i := h.PortBetween(2*t, 2*t+1)
		if i == 0 {
			return nil, fmt.Errorf("matching edge {a%d,a%d} missing", 2*t+1, 2*t+2)
		}
		sSet.Add(h.EdgeAt(2*t, i))
	}
	a.fact("S(ℓ) is a %d-edge matching on the a-nodes", sSet.Count())

	labels := make([]string, h.N())
	for i := 0; i < 2*k; i++ {
		labels[i] = fmt.Sprintf("a%d", i+1)
		labels[2*k+i] = fmt.Sprintf("b%d", i+1)
	}
	labels[4*k] = "c"
	opts := render.Options{
		Title:      a.Title,
		NodeLabels: labels,
		Ports:      true,
		Overlays:   append([]render.Overlay{{Name: "S(ℓ)", Set: sSet, Color: "black"}}, factorOverlays(h, k)...),
	}
	a.DOT = render.DOT(h, opts)
	a.Text = render.Text(h, opts)
	return a, nil
}

// oddLabels builds human labels for the Theorem 2 construction.
func oddLabels(d int) []string {
	k := (d - 1) / 2
	labels := make([]string, d*(2*d-1)+d+2*k)
	idx := 0
	for ell := 1; ell <= d; ell++ {
		for i := 1; i <= 2*k; i++ {
			labels[idx] = fmt.Sprintf("a%d,%d", ell, i)
			idx++
		}
		for i := 1; i <= 2*k; i++ {
			labels[idx] = fmt.Sprintf("b%d,%d", ell, i)
			idx++
		}
		labels[idx] = fmt.Sprintf("c%d", ell)
		idx++
	}
	for ell := 1; ell <= d; ell++ {
		labels[idx] = fmt.Sprintf("p%d", ell)
		idx++
	}
	for i := 1; i <= 2*k; i++ {
		labels[idx] = fmt.Sprintf("q%d", i)
		idx++
	}
	return labels
}

// figure6 — the full Theorem 2 construction for d = 5 with its optimum.
func figure6() (*Artifact, error) {
	const d = 5
	a := &Artifact{ID: 6, Title: "Figure 6: the Theorem 2 graph for d = 5"}
	c, err := lowerbound.Odd(d)
	if err != nil {
		return nil, err
	}
	a.fact("G is %d-regular on %d nodes with %d edges", d, c.G.N(), c.G.M())
	a.fact("optimal edge dominating set D* = Y ∪ ⋃S(ℓ) has %d edges", c.Opt.Count())
	ds, _, err := sim.RunToEdgeSet(c.G, core.RegularOdd{})
	if err != nil {
		return nil, err
	}
	a.fact("the Theorem 4 algorithm outputs %d edges: ratio %d/%d = 4-6/(d+1)",
		ds.Count(), ds.Count(), c.Opt.Count())
	opts := render.Options{
		Title:      a.Title,
		NodeLabels: oddLabels(d),
		Classes:    c.Map,
		Overlays: []render.Overlay{
			{Name: "optimum D*", Set: c.Opt, Color: "black"},
			{Name: "Theorem 4 output D", Set: ds, Color: "red"},
		},
	}
	a.DOT = render.DOT(c.G, opts)
	a.Text = render.Text(c.G, opts)
	return a, nil
}

// figure7 — the quotient multigraph M of the Theorem 2 construction.
func figure7() (*Artifact, error) {
	const d = 5
	a := &Artifact{ID: 7, Title: "Figure 7: the quotient multigraph M for d = 5"}
	c, err := lowerbound.Odd(d)
	if err != nil {
		return nil, err
	}
	if err := cover.Verify(c.G, c.Quotient, c.Map); err != nil {
		return nil, err
	}
	a.fact("the Theorem 2 graph covers M: %d fibres x_ℓ of size 2d-1 and one fibre y of size d+2k",
		d)
	labels := make([]string, d+1)
	classes := make([]int, d+1)
	for ell := 0; ell < d; ell++ {
		labels[ell] = fmt.Sprintf("x%d", ell+1)
		classes[ell] = ell
	}
	labels[d] = "y"
	classes[d] = d
	opts := render.Options{Title: a.Title, NodeLabels: labels, Ports: true, Classes: classes}
	a.DOT = render.DOT(c.Quotient, opts)
	a.Text = render.Text(c.Quotient, opts)
	return a, nil
}

// figure8 — a 3-regular example: distinguishable neighbours, the nine
// matchings M_G(i,j), and phases I and II of the Theorem 4 algorithm.
func figure8() (*Artifact, error) {
	a := &Artifact{ID: 8, Title: "Figure 8: distinguishable neighbours and M_G(i,j) on a 3-regular graph"}
	rng := rand.New(rand.NewSource(11))
	g := gen.RelabelPorts(rng, gen.Petersen())

	// (a) every node has a distinguishable neighbour (3 is odd).
	for v := 0; v < g.N(); v++ {
		if _, _, ok := core.DistinguishablePort(g, v); !ok {
			return nil, fmt.Errorf("node %d has no distinguishable neighbour despite odd degree", v)
		}
	}
	a.fact("(a) every node of the 3-regular graph has a distinguishable neighbour (Lemma 1)")

	// (b) the matchings M_G(i,j).
	total := 0
	for i := 1; i <= 3; i++ {
		for j := 1; j <= 3; j++ {
			m := core.MatchingM(g, i, j)
			if !verify.IsMatching(g, m) {
				return nil, fmt.Errorf("M_G(%d,%d) is not a matching", i, j)
			}
			total += m.Count()
		}
	}
	a.fact("(b) all nine M_G(i,j) are matchings (Lemma 2), %d memberships in total", total)

	// (c)+(d) the two phases.
	phase1, _, err := sim.RunToEdgeSet(g, core.RegularOdd{SkipPruning: true})
	if err != nil {
		return nil, err
	}
	if !verify.IsEdgeCover(g, phase1) || !verify.IsForest(g, phase1) {
		return nil, fmt.Errorf("phase I output is not a spanning forest edge cover")
	}
	a.fact("(c) phase I builds a spanning forest that covers every node (%d edges)", phase1.Count())
	phase2, _, err := sim.RunToEdgeSet(g, core.RegularOdd{})
	if err != nil {
		return nil, err
	}
	if !verify.IsStarForest(g, phase2) || !verify.IsEdgeCover(g, phase2) {
		return nil, fmt.Errorf("phase II output is not a star-forest edge cover")
	}
	a.fact("(d) phase II prunes it to a star forest (%d edges), still an edge cover", phase2.Count())

	opts := render.Options{
		Title: a.Title,
		Ports: true,
		Overlays: []render.Overlay{
			{Name: "phase II output (star forest)", Set: phase2, Color: "red"},
			{Name: "phase I output (forest edge cover)", Set: phase1, Color: "blue"},
		},
	}
	a.DOT = render.DOT(g, opts)
	a.Text = render.Text(g, opts)
	return a, nil
}

// figure9 — the Theorem 5 phase decomposition with the cost accounting of
// the analysis.
func figure9() (*Artifact, error) {
	a := &Artifact{ID: 9, Title: "Figure 9: Theorem 5 decomposition M, P and the cost accounting"}
	rng := rand.New(rand.NewSource(7))
	g := gen.RandomBoundedDegree(rng, 14, 5, 0.45)
	delta := g.MaxDegree()
	res, err := local.General(g, delta)
	if err != nil {
		return nil, err
	}
	if !verify.IsMatching(g, res.M) {
		return nil, fmt.Errorf("M is not a matching")
	}
	if !verify.IsKMatching(g, res.P, 2) {
		return nil, fmt.Errorf("P is not a 2-matching")
	}
	if !res.M.Disjoint(res.P) {
		return nil, fmt.Errorf("M and P are not disjoint")
	}
	a.fact("M is a matching (%d edges), P a node-disjoint 2-matching (%d edges)", res.M.Count(), res.P.Count())
	if !verify.IsEdgeDominatingSet(g, res.D) {
		return nil, fmt.Errorf("D = M ∪ P is not an EDS")
	}
	a.fact("D = M ∪ P dominates all %d edges", g.M())

	dstar := verify.MinimumMaximalMatching(g)
	acc, err := verify.Account(g, res.D, dstar)
	if err != nil {
		return nil, err
	}
	a.fact("internal-node costs: I_x counts for 2c(v)=0..4 are %v with Σx·I_x = 2|D| = %d", acc.I, 2*acc.SizeD)
	normalised := delta
	if normalised%2 == 0 {
		normalised++
	}
	if normalised >= 3 {
		if err := acc.CheckTheorem5Inequality(normalised); err != nil {
			return nil, err
		}
		a.fact("the Section 7.7 double-counting inequality holds for Δ = %d", normalised)
	}
	classes := make([]int, g.N())
	for v := range classes {
		if acc.Internal[v] {
			classes[v] = 1
		}
	}
	opts := render.Options{
		Title:   a.Title,
		Classes: classes,
		Overlays: []render.Overlay{
			{Name: "matching M", Set: res.M, Color: "red"},
			{Name: "2-matching P", Set: res.P, Color: "blue"},
			{Name: "minimum maximal matching D*", Set: dstar, Color: "black"},
		},
	}
	a.DOT = render.DOT(g, opts)
	a.Text = render.Text(g, opts)
	return a, nil
}
