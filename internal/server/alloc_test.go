//go:build !race

package server

import (
	"bytes"
	"net/http/httptest"
	"runtime/debug"
	"testing"

	"eds/internal/gen"
)

// TestCachedReplayAllocationBudget bounds the per-request allocation
// cost of a cached /v1/run replay. A hit never touches an engine, the
// admission queue, or the response builder; what remains is the HTTP
// plumbing, the body read, the graph decode (flat CSR arrays — a
// handful of allocations regardless of size), and the canonical
// re-serialisation for the key. The budget is deliberately far below
// what a single engine run on this graph would allocate (one node per
// vertex alone would be 2000 allocations), so a regression that sneaks
// the engine back onto the hit path fails loudly.
func TestCachedReplayAllocationBudget(t *testing.T) {
	old := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(old)

	s := New(Config{})
	h := s.Handler()
	body := graphBytes(t, gen.Cycle(2000))

	do := func() (code int, cache string) {
		req := httptest.NewRequest("POST", "/v1/run?alg=auto&engine=sharded", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Header().Get("X-Cache")
	}
	if code, _ := do(); code != 200 {
		t.Fatalf("priming request: status %d", code)
	}

	var code int
	var cache string
	allocs := testing.AllocsPerRun(20, func() {
		code, cache = do()
	})
	if code != 200 || cache != "hit" {
		t.Fatalf("replay: status %d, X-Cache %q, want 200/hit", code, cache)
	}
	const budget = 512
	if allocs > budget {
		t.Errorf("cached replay allocates %.0f objects per request, budget %d", allocs, budget)
	}
}
