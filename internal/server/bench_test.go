// Gated benchmarks for the request batcher: the flight-group
// bookkeeping that every /v1/run crosses, and a whole batched run
// through the handler stack. Their allocs/op live in
// BENCH_baseline.json and are enforced by cmd/edsbench in CI — the
// batcher must not quietly start allocating per follower.
package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"eds/internal/gen"
)

// BenchmarkFlightJoinFinish is the batcher's bookkeeping in isolation:
// one leader and seven followers joining one flight, the leader
// finishing, every follower reading the shared outcome. Joins are
// serialized so the measurement is deterministic — the per-op
// allocations are the flight struct, its done channel, and the map
// slot, all independent of the batch size.
func BenchmarkFlightJoinFinish(b *testing.B) {
	fg := newFlightGroup()
	const followers = 7
	body := []byte(`{"ok":true}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, leader := fg.join("bench-key")
		if !leader {
			b.Fatal("stale flight left behind by a previous iteration")
		}
		flights := make([]*flight, followers)
		for j := range flights {
			ff, lead := fg.join("bench-key")
			if lead {
				b.Fatal("follower became leader while the flight was live")
			}
			flights[j] = ff
		}
		fg.finish("bench-key", f, flightResult{code: http.StatusOK, body: body})
		for _, ff := range flights {
			<-ff.done
			if ff.res.code != http.StatusOK {
				b.Fatal("follower read the wrong outcome")
			}
		}
		if f.size.Load() != followers+1 {
			b.Fatalf("batch size = %d, want %d", f.size.Load(), followers+1)
		}
	}
}

// BenchmarkBatchedRun pushes four identical concurrent requests through
// the full handler stack — middleware, parse, flight window, one engine
// run, response fan-out — with the cache disabled so every iteration
// batches instead of replaying. allocs/op is the cost of one batched
// engine run plus four served requests.
func BenchmarkBatchedRun(b *testing.B) {
	s := New(Config{Workers: 4, CacheEntries: -1, BatchWindow: 2 * time.Millisecond})
	body := graphBytes(b, gen.Cycle(16))
	const clients = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < clients; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(string(body)))
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Errorf("status = %d", rec.Code)
				}
			}()
		}
		wg.Wait()
	}
}
