package graph

import (
	"fmt"
	"math"
)

// Flat CSR-style routing view of the involution, consumed by engines that
// index ports globally instead of through (node, port) pairs.
//
// Ports are numbered globally in node order: port (v, i) has global index
// PortOffsets()[v] + i - 1, and the ports of node v occupy the half-open
// range [PortOffsets()[v], PortOffsets()[v+1]). The routing table maps
// every global port index to the global index of its involution partner,
// so a flat outbox written in global port order is routed into a flat
// inbox with a single gather: inbox[j] = outbox[RoutingTable()[j]].
// Because p is an involution the table is a self-inverse permutation;
// directed loops are its fixed points.
//
// Both slices are computed once per graph and cached; callers must treat
// them as read-only.

// NumPorts returns the total number of ports, i.e. the sum of all node
// degrees (the length of the routing table).
func (g *Graph) NumPorts() int {
	g.buildRoutingOnce()
	return len(g.route)
}

// PortOffsets returns the per-node offsets into the global port space:
// a slice of length N()+1 where entry v is the global index of port
// (v, 1) and entry N() is the total port count. The caller must not
// modify the returned slice.
func (g *Graph) PortOffsets() []int32 {
	g.buildRoutingOnce()
	return g.portOff
}

// RoutingTable returns the flat involution: entry j is the global port
// index of P(v, i) where j is the global index of port (v, i). The table
// is a self-inverse permutation of [0, NumPorts()). The caller must not
// modify the returned slice.
func (g *Graph) RoutingTable() []int32 {
	g.buildRoutingOnce()
	return g.route
}

func (g *Graph) buildRoutingOnce() {
	g.routeOnce.Do(func() {
		n := len(g.conn)
		total := 0
		for v := 0; v < n; v++ {
			total += len(g.conn[v])
		}
		// The flat view indexes ports with int32; fail loudly rather
		// than let offsets wrap on graphs past that scale.
		if total > math.MaxInt32 {
			panic(fmt.Sprintf("graph: %d ports exceed the routing table's int32 index space", total))
		}
		off := make([]int32, n+1)
		pos := int32(0)
		for v := 0; v < n; v++ {
			off[v] = pos
			pos += int32(len(g.conn[v]))
		}
		off[n] = pos
		route := make([]int32, total)
		for v := range g.conn {
			base := off[v]
			for i, q := range g.conn[v] {
				route[base+int32(i)] = off[q.Node] + int32(q.Num-1)
			}
		}
		g.portOff, g.route = off, route
	})
}
