package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"eds/internal/lint"
	"eds/internal/lint/analysis"
	"eds/internal/lint/analysistest"
	"eds/internal/lint/checker"
	"eds/internal/lint/loader"
)

func moduleDir(t *testing.T) string {
	t.Helper()
	dir, err := loader.ModuleDir(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	return dir
}

func fixture(mod, name string) string {
	return filepath.Join(mod, "internal", "lint", "testdata", "src", name)
}

// runFixture applies one analyzer to its fixture package and demands at
// least one caught violation: a fixture that stops reporting means the
// analyzer has gone blind, not that the repo got cleaner.
func runFixture(t *testing.T, a *analysis.Analyzer, name string) {
	t.Helper()
	mod := moduleDir(t)
	findings := analysistest.Run(t, mod, fixture(mod, name), a)
	if len(findings) == 0 {
		t.Fatalf("%s reported nothing on its violation fixture", a.Name)
	}
}

func TestAlgDeterminism(t *testing.T) { runFixture(t, lint.AlgDeterminism, "algdet") }
func TestOutboxAlias(t *testing.T)    { runFixture(t, lint.OutboxAlias, "outboxalias") }
func TestArenaAlias(t *testing.T)     { runFixture(t, lint.ArenaAlias, "arenaalias") }
func TestRoundCtx(t *testing.T)       { runFixture(t, lint.RoundCtx, "roundctx") }
func TestEngineKey(t *testing.T)      { runFixture(t, lint.EngineKey, "enginekey") }

// TestSuppression checks the //lint:ignore mechanism end to end: the
// justified violation stays silent, the bare one is reported.
func TestSuppression(t *testing.T) {
	mod := moduleDir(t)
	findings := analysistest.Run(t, mod, fixture(mod, "suppress"), lint.RoundCtx)
	if len(findings) != 1 {
		t.Fatalf("want exactly the unsuppressed finding, got %d: %v", len(findings), findings)
	}
}

// TestAnalyzerMetadata pins the suite's shape: unique names (they are
// the suppression keys) and non-empty docs (they are the -list output).
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 5 {
		t.Errorf("want the 5 edsvet analyzers, got %d", len(seen))
	}
}

// TestRepoClean is the meta-test behind the CI gate: the full suite
// over every package of this module — test files included — must come
// back empty, so any new finding fails the build until it is fixed or
// carries a justified //lint:ignore.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped under -short")
	}
	mod := moduleDir(t)
	pkgs, err := loader.LoadTests(mod, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded (%d): loader lost coverage", len(pkgs))
	}
	// The point of LoadTests is that _test.go files are in scope: the
	// sim package must come back with its test files merged in, and its
	// external test package must be a unit of its own. Silent fallback
	// to sources-only would pass the clean check while linting nothing
	// new.
	var simHasTests, simExternal bool
	for _, pkg := range pkgs {
		switch pkg.ImportPath {
		case "eds/internal/sim":
			for _, f := range pkg.Files {
				name := pkg.Fset.Position(f.Pos()).Filename
				if strings.HasSuffix(name, "_test.go") {
					simHasTests = true
				}
			}
		case "eds/internal/sim_test":
			simExternal = true
		}
	}
	if !simHasTests {
		t.Errorf("eds/internal/sim loaded without its in-package test files")
	}
	if !simExternal {
		t.Errorf("external test package eds/internal/sim_test not loaded")
	}
	findings, err := checker.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("edsvet finding on clean repo: %s", f)
	}
}
