package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eds/internal/graph"
)

func TestFamilies(t *testing.T) {
	tests := []struct {
		name      string
		g         *graph.Graph
		n, m      int
		regular   int // -1 means irregular
		connected bool
	}{
		{"Cycle(5)", Cycle(5), 5, 5, 2, true},
		{"Path(6)", Path(6), 6, 5, -1, true},
		{"Path(1)", Path(1), 1, 0, 0, true},
		{"Complete(5)", Complete(5), 5, 10, 4, true},
		{"CompleteBipartite(3,4)", CompleteBipartite(3, 4), 7, 12, -1, true},
		{"CompleteBipartite(4,4)", CompleteBipartite(4, 4), 8, 16, 4, true},
		{"Crown(4)", Crown(4), 8, 12, 3, true},
		{"Star(5)", Star(5), 6, 5, -1, true},
		{"PerfectMatching(4)", PerfectMatching(4), 8, 4, 1, false},
		{"Hypercube(3)", Hypercube(3), 8, 12, 3, true},
		{"Torus(3,4)", Torus(3, 4), 12, 24, 4, true},
		{"Petersen", Petersen(), 10, 15, 3, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if !tc.g.IsSimple() {
				t.Error("not simple")
			}
			if got := tc.g.N(); got != tc.n {
				t.Errorf("N = %d, want %d", got, tc.n)
			}
			if got := tc.g.M(); got != tc.m {
				t.Errorf("M = %d, want %d", got, tc.m)
			}
			d, ok := tc.g.Regular()
			if tc.regular >= 0 {
				if !ok || d != tc.regular {
					t.Errorf("Regular = (%d,%v), want (%d,true)", d, ok, tc.regular)
				}
			} else if ok && tc.g.N() > 1 {
				t.Errorf("Regular = (%d,true), want irregular", d)
			}
			if got := graph.Connected(tc.g); got != tc.connected {
				t.Errorf("connected = %v, want %v", got, tc.connected)
			}
		})
	}
}

func TestCrownHasNoMatchingEdges(t *testing.T) {
	// The crown is K_{n,n} minus the perfect matching {i, n+i}.
	g := Crown(5)
	for i := 0; i < 5; i++ {
		if g.HasEdgeBetween(i, 5+i) {
			t.Errorf("crown contains forbidden matching edge {%d,%d}", i, 5+i)
		}
	}
}

func TestRandomRegularQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(5)
		n := d + 1 + rng.Intn(12)
		if n*d%2 != 0 {
			n++
		}
		g, err := RandomRegular(rng, n, d)
		if err != nil {
			return false
		}
		if err := g.Validate(); err != nil {
			return false
		}
		got, ok := g.Regular()
		return ok && got == d && g.IsSimple()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRandomRegularRejectsBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomRegular(rng, 4, 4); err == nil {
		t.Error("d >= n accepted")
	}
	if _, err := RandomRegular(rng, 5, 3); err == nil {
		t.Error("odd n*d accepted")
	}
}

func TestRandomBoundedDegreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		maxDeg := 1 + rng.Intn(6)
		n := 2 + rng.Intn(20)
		g := RandomBoundedDegree(rng, n, maxDeg, 0.5)
		if err := g.Validate(); err != nil {
			return false
		}
		return g.IsSimple() && g.MaxDegree() <= maxDeg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandomTreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		g := RandomTree(rng, n)
		if err := g.Validate(); err != nil {
			return false
		}
		return g.M() == n-1 && g.IsSimple() && graph.Connected(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRelabelPortsPreservesStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := MustRandomRegular(rng, 10, 3)
		h := RelabelPorts(rng, g)
		if err := h.Validate(); err != nil {
			return false
		}
		if h.N() != g.N() || h.M() != g.M() {
			return false
		}
		// Same underlying multiset of neighbour relations per node.
		for v := 0; v < g.N(); v++ {
			if h.Deg(v) != g.Deg(v) {
				return false
			}
			a, b := g.Neighbours(v), h.Neighbours(v)
			ca, cb := map[int]int{}, map[int]int{}
			for i := range a {
				ca[a[i]]++
				cb[b[i]]++
			}
			for k, n := range ca {
				if cb[k] != n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
