package core

import (
	"eds/internal/sim"
)

// PortOne is the Theorem 3 algorithm: output all edges that are connected
// to a port with port number 1. It runs in exactly one communication
// round and achieves factor 4 - 2/d on d-regular graphs, which is optimal
// for even d (Theorem 1).
//
// The selected set D covers every node (each node's port-1 edge is in D),
// so D is an edge cover and therefore an edge dominating set. Since each
// node contributes at most one port-1 edge, |D| <= |V|.
type PortOne struct{}

var _ sim.Algorithm = PortOne{}

// Name implements sim.Algorithm.
func (PortOne) Name() string { return "portone" }

// Rounds returns the round count of the algorithm: always 1.
func (PortOne) Rounds(int) int { return 1 }

// NewNode implements sim.Algorithm.
func (PortOne) NewNode(degree int) sim.Node {
	chosen := make([]bool, degree)
	n := &scriptNode{deg: degree}
	n.steps = []step{{
		send: func(buf []sim.Message) {
			if degree >= 1 {
				buf[0] = msgMark{}
			}
		},
		recv: func(inbox []sim.Message) {
			if degree >= 1 {
				chosen[0] = true
			}
			for idx, m := range inbox {
				if _, ok := m.(msgMark); ok {
					chosen[idx] = true
				}
			}
		},
	}}
	n.output = func() []int { return chosenPorts(chosen) }
	return n
}

// AllEdges is the trivial algorithm that selects every edge, with no
// communication at all. For graphs of maximum degree 1 it is exactly
// optimal (the Δ = 1 row of Table 1): every edge of a perfect matching
// must be in any edge dominating set.
type AllEdges struct{}

var _ sim.Algorithm = AllEdges{}

// Name implements sim.Algorithm.
func (AllEdges) Name() string { return "alledges" }

// Rounds returns the round count of the algorithm: always 0.
func (AllEdges) Rounds(int) int { return 0 }

// NewNode implements sim.Algorithm.
func (AllEdges) NewNode(degree int) sim.Node {
	n := &scriptNode{deg: degree}
	n.output = func() []int {
		out := make([]int, degree)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	return n
}

// chosenPorts converts a per-port flag vector into a 1-based port list.
func chosenPorts(chosen []bool) []int {
	out := make([]int, 0, len(chosen))
	for idx, c := range chosen {
		if c {
			out = append(out, idx+1)
		}
	}
	return out
}
