package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"eds/internal/core"
	"eds/internal/gen"
	"eds/internal/sim"
)

// ScalingRow is one data point of the Ext-C study: round counts as a
// function of n and d, demonstrating that the algorithms are strictly
// local (rounds depend on d only, never on n).
type ScalingRow struct {
	Algorithm string
	D, N      int
	Rounds    int
	Scheduled int
	Messages  int
}

// RoundScaling runs the appropriate regular-graph algorithm on random
// d-regular graphs of increasing size and records the observed rounds.
func RoundScaling(seed int64, d int, sizes []int) ([]ScalingRow, error) {
	rng := rand.New(rand.NewSource(seed))
	var alg sim.Algorithm
	var scheduled int
	if d%2 == 0 {
		a := core.PortOne{}
		alg, scheduled = a, a.Rounds(d)
	} else {
		a := core.RegularOdd{}
		alg, scheduled = a, a.Rounds(d)
	}
	rows := make([]ScalingRow, 0, len(sizes))
	for _, n := range sizes {
		if n*d%2 != 0 {
			n++
		}
		g, err := gen.RandomRegular(rng, n, d)
		if err != nil {
			return nil, err
		}
		// Any engine returns the same rows; RunAuto picks the fast one.
		res, err := sim.RunAuto(g, alg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalingRow{
			Algorithm: alg.Name(),
			D:         d,
			N:         n,
			Rounds:    res.Rounds,
			Scheduled: scheduled,
			Messages:  res.Messages,
		})
	}
	return rows, nil
}

// EngineRow is one data point of the engine-scaling study: the same
// workload executed by each simulation engine, with the wall-clock time
// it took. Rounds and Messages are engine-invariant (the equivalence
// suite in internal/sim guarantees it), so the study reports them once
// per row only as a sanity check.
type EngineRow struct {
	Engine   string
	D, N     int
	Rounds   int
	Messages int
	Elapsed  time.Duration
	// Setup and RoundTime split Elapsed via sim.WithTimings: node
	// construction versus the round loop. The remainder is output
	// collection. The split shows where an engine's time goes — the
	// sharded engine parallelizes all three phases.
	Setup     time.Duration
	RoundTime time.Duration
}

// EngineScaling times every named engine on the same random d-regular
// graph of each size, verifying along the way that rounds and message
// counts agree across engines. Engine names: sequential, concurrent,
// sharded.
func EngineScaling(seed int64, d int, sizes []int, engines []string) ([]EngineRow, error) {
	rng := rand.New(rand.NewSource(seed))
	var alg sim.Algorithm
	if d%2 == 0 {
		alg = core.PortOne{}
	} else {
		alg = core.RegularOdd{}
	}
	var rows []EngineRow
	for _, n := range sizes {
		if n*d%2 != 0 {
			n++
		}
		g, err := gen.RandomRegular(rng, n, d)
		if err != nil {
			return nil, err
		}
		// Build the flat routing view up front so the sharded engine's
		// row times the rounds, not the one-time CSR construction.
		g.RoutingTable()
		var ref *sim.Result
		for _, name := range engines {
			run, ok := sim.Engines()[name]
			if !ok {
				return nil, fmt.Errorf("harness: unknown engine %q", name)
			}
			var split sim.Timings
			start := time.Now()
			res, err := run(g, alg, sim.WithTimings(&split))
			elapsed := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("harness: engine %s on n=%d: %w", name, n, err)
			}
			if ref == nil {
				ref = res
			} else if res.Rounds != ref.Rounds || res.Messages != ref.Messages {
				return nil, fmt.Errorf("harness: engine %s diverges on n=%d: rounds %d/%d, messages %d/%d",
					name, n, res.Rounds, ref.Rounds, res.Messages, ref.Messages)
			}
			rows = append(rows, EngineRow{
				Engine:    name,
				D:         d,
				N:         n,
				Rounds:    res.Rounds,
				Messages:  res.Messages,
				Elapsed:   elapsed,
				Setup:     split.Setup,
				RoundTime: split.Rounds,
			})
		}
	}
	return rows, nil
}

// FormatEngineScaling renders engine rows as an aligned table.
func FormatEngineScaling(rows []EngineRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %4s %8s %8s %10s %12s %12s %12s\n", "engine", "d", "n", "rounds", "messages", "elapsed", "setup", "rounds-time")
	sb.WriteString(strings.Repeat("-", 86) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %4d %8d %8d %10d %12s %12s %12s\n", r.Engine, r.D, r.N, r.Rounds, r.Messages, r.Elapsed, r.Setup, r.RoundTime)
	}
	return sb.String()
}

// FormatScaling renders scaling rows as an aligned table.
func FormatScaling(rows []ScalingRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %4s %7s %8s %10s %10s\n", "algorithm", "d", "n", "rounds", "scheduled", "messages")
	sb.WriteString(strings.Repeat("-", 68) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %4d %7d %8d %10d %10d\n", r.Algorithm, r.D, r.N, r.Rounds, r.Scheduled, r.Messages)
	}
	return sb.String()
}
