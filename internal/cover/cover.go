// Package cover implements covering maps between port-numbered graphs
// (Section 2.3 of the paper).
//
// A covering map f: V_H -> V_G preserves degrees and connections. Its key
// consequence — the engine behind all of the paper's lower bounds — is
// that a deterministic distributed algorithm cannot distinguish a node v
// of H from the node f(v) of G: both produce identical outputs. The
// companion test in internal/sim checks this lemma empirically for every
// algorithm in the repository.
package cover

import (
	"fmt"

	"eds/internal/graph"
)

// Verify checks that f (a map from nodes of h to nodes of g) is a covering
// map from h to g: surjective, degree-preserving, and connection-
// preserving. It returns nil when all three conditions hold.
func Verify(h, g *graph.Graph, f []int) error {
	if len(f) != h.N() {
		return fmt.Errorf("cover: map has %d entries for %d nodes", len(f), h.N())
	}
	hit := make([]bool, g.N())
	for v, fv := range f {
		if fv < 0 || fv >= g.N() {
			return fmt.Errorf("cover: f(%d)=%d out of range [0,%d)", v, fv, g.N())
		}
		hit[fv] = true
		if h.Deg(v) != g.Deg(fv) {
			return fmt.Errorf("cover: degree not preserved at node %d: %d vs %d", v, h.Deg(v), g.Deg(fv))
		}
	}
	for v := range hit {
		if !hit[v] {
			return fmt.Errorf("cover: not surjective: node %d of the base graph is not covered", v)
		}
	}
	for v := 0; v < h.N(); v++ {
		for i := 1; i <= h.Deg(v); i++ {
			q := h.P(v, i)
			want := graph.Port{Node: f[q.Node], Num: q.Num}
			if got := g.P(f[v], i); got != want {
				return fmt.Errorf("cover: connection not preserved: p_H(%d,%d)=%v but p_G(%d,%d)=%v, want %v",
					v, i, q, f[v], i, got, want)
			}
		}
	}
	return nil
}

// BipartiteDoubleCover returns the bipartite double cover H' of g together
// with the covering map from H' back onto g. Node v of g becomes the two
// nodes 2v (white copy) and 2v+1 (black copy); every edge {u,v} of g with
// ports (i, j) becomes the two edges joining opposite-colour copies with
// the same port numbers. The double cover of a connected non-bipartite
// graph is connected; of a bipartite graph, two disjoint copies.
//
// Phase III of the paper's Theorem 5 algorithm is exactly a maximal
// matching computed on this double cover and mapped back (Polishchuk and
// Suomela 2009).
func BipartiteDoubleCover(g *graph.Graph) (*graph.Graph, []int) {
	b := graph.NewBuilder(2 * g.N())
	for _, e := range g.Edges() {
		// Directed loops map to a single edge between the two copies;
		// everything else doubles.
		if e.IsDirectedLoop() {
			b.MustConnect(2*e.A.Node, e.A.Num, 2*e.A.Node+1, e.A.Num)
			continue
		}
		b.MustConnect(2*e.A.Node, e.A.Num, 2*e.B.Node+1, e.B.Num)
		b.MustConnect(2*e.A.Node+1, e.A.Num, 2*e.B.Node, e.B.Num)
	}
	f := make([]int, 2*g.N())
	for v := 0; v < g.N(); v++ {
		f[2*v] = v
		f[2*v+1] = v
	}
	return b.MustBuild(), f
}

// Identity returns the identity covering map of g onto itself.
func Identity(g *graph.Graph) []int {
	f := make([]int, g.N())
	for v := range f {
		f[v] = v
	}
	return f
}

// Compose returns the composition g∘f of covering maps (apply f, then g).
func Compose(f, g []int) []int {
	out := make([]int, len(f))
	for v, fv := range f {
		out[v] = g[fv]
	}
	return out
}
