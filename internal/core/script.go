package core

import (
	"eds/internal/sim"
)

// step is one synchronous round of a node's protocol: send writes the
// outgoing messages into a degree-length buffer that arrives all-nil
// (nil entries are empty messages; a nil send is a silent round), recv
// consumes the round's inbox. The buffer is engine-owned — send must not
// retain it or any subslice past its return (the outboxalias analyzer
// enforces this mechanically).
type step struct {
	send func(buf []sim.Message)
	recv func(inbox []sim.Message)
}

// scriptNode drives a fixed sequence of steps, one per round. Because the
// paper's algorithms have deterministic round schedules that depend only
// on the node's degree (and the family parameter Δ), a protocol is fully
// described by its step list; the node stops when the list is exhausted.
type scriptNode struct {
	deg    int
	steps  []step
	pc     int
	output func() []int
}

var (
	_ sim.Node         = (*scriptNode)(nil)
	_ sim.BufferedNode = (*scriptNode)(nil)
)

// SendInto implements sim.BufferedNode: the engines hand scriptNode its
// outbox window directly, so a steady-state round of every scripted
// algorithm allocates nothing.
func (s *scriptNode) SendInto(round int, buf []sim.Message) {
	if send := s.steps[s.pc].send; send != nil {
		send(buf)
	}
}

// Send implements the legacy allocation path; the engines prefer
// SendInto and only call this through the fallback for plain sim.Nodes.
func (s *scriptNode) Send(round int) []sim.Message {
	msgs := make([]sim.Message, s.deg)
	s.SendInto(round, msgs)
	return msgs
}

func (s *scriptNode) Receive(round int, inbox []sim.Message) {
	if recv := s.steps[s.pc].recv; recv != nil {
		recv(inbox)
	}
	s.pc++
}

func (s *scriptNode) Done() bool { return s.pc >= len(s.steps) }

func (s *scriptNode) Output() []int {
	if s.output == nil {
		return nil
	}
	return s.output()
}

// silent returns a no-op step, used to keep heterogeneous-degree nodes
// aligned on a common global round schedule.
func silent() step { return step{} }
