// Command edsd is the edge-dominating-set daemon: a long-running HTTP
// service that executes the paper's distributed algorithms on graphs
// posted by clients, with admission control, per-request deadlines, a
// result cache, request batching, streaming responses, and graceful
// shutdown.
//
// Usage:
//
//	edsd -addr :8080
//	edsd -addr :8080 -workers 16 -queue 128 -cache 1024 -timeout 10s
//
// Run as a fleet: give every replica the same -peers list and its own
// -self. Each graph digest is then owned by exactly one replica
// (rendezvous hashing); the others fetch its result over the internal
// fill protocol instead of recomputing, and fall back to local compute
// when the owner is down or draining:
//
//	edsd -addr :8080 -self http://10.0.0.1:8080 \
//	     -peers http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080 \
//	     -batch-window 5ms
//
// Run a graph:
//
//	edsrun -graph cycle:12 ... writes the same wire format this accepts:
//	curl --data-binary @graph.txt 'localhost:8080/v1/run?alg=auto&engine=auto'
//	curl 'localhost:8080/v1/run?edges=1&stream=1' --data-binary @graph.txt   # NDJSON edge stream
//
// Operational endpoints: GET /livez (process liveness), GET /readyz
// (200 while accepting runs, 503 while draining; peers and load
// balancers key routing off this), GET /healthz (alias of /readyz),
// GET /statsz (request counts, cache hit rate, queue depth,
// per-algorithm latency histograms, batch sizes, stream bytes, per-peer
// fill counters, cumulative engine wall-time split). Every request
// carries an X-Request-ID — generated if absent, propagated on fill
// hops — and is logged as one structured log/slog line. With -pprof,
// net/http/pprof is mounted under /debug/pprof/ — off by default
// because it exposes heap contents.
//
// On SIGINT/SIGTERM the daemon flips /readyz, stops accepting new runs,
// keeps serving the in-flight ones until they finish or the drain
// deadline passes, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"eds/internal/cluster"
	"eds/internal/graph"
	"eds/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth beyond the workers")
	cache := flag.Int("cache", 256, "result cache entries (negative disables)")
	maxBody := flag.Int64("max-body", 32<<20, "request body cap in bytes")
	maxNodes := flag.Int("max-nodes", graph.DefaultLimits.MaxNodes, "decoded graph node cap")
	maxPorts := flag.Int("max-ports", graph.DefaultLimits.MaxPorts, "decoded graph port cap")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "largest client-requestable deadline")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain deadline for in-flight runs")
	batchWindow := flag.Duration("batch-window", 0, "how long a cache-missing run waits for identical requests to coalesce onto it (0 disables)")
	self := flag.String("self", "", "this replica's advertised base URL (enables the cluster tier together with -peers)")
	peers := flag.String("peers", "", "comma-separated base URLs of every replica, -self included")
	fillTimeout := flag.Duration("fill-timeout", 15*time.Second, "per-attempt deadline for peer fill requests")
	healthEvery := flag.Duration("health-interval", 2*time.Second, "peer readiness probe period")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	logDebug := flag.Bool("log-debug", false, "log at debug level (includes health probes)")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes heap contents; keep off on untrusted networks)")
	flag.Parse()

	level := slog.LevelInfo
	if *logDebug {
		level = slog.LevelDebug
	}
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	} else {
		handler = slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	}
	logger := slog.New(handler).With("component", "edsd")

	var cl *cluster.Cluster
	if *self != "" || *peers != "" {
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		var err error
		cl, err = cluster.New(cluster.Config{
			Self:           *self,
			Peers:          peerList,
			HealthInterval: *healthEvery,
			FillTimeout:    *fillTimeout,
			Logger:         logger,
		})
		if err != nil {
			logger.Error("cluster configuration", "err", err)
			os.Exit(2)
		}
		cl.Start()
		logger.Info("cluster tier enabled", "self", cl.Self(), "replicas", cl.Size())
	}

	s := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		MaxBodyBytes:   *maxBody,
		Limits:         graph.Limits{MaxNodes: *maxNodes, MaxPorts: *maxPorts},
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		CacheEntries:   *cache,
		BatchWindow:    *batchWindow,
		Cluster:        cl,
		Logger:         logger,
		EnablePprof:    *enablePprof,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Error("listen", "err", err)
		os.Exit(1)
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String(), "deadline", drain.String())
	}

	// Two-phase shutdown: StartDraining rejects new runs and flips
	// /readyz so load balancers and cluster peers stop routing here;
	// Shutdown then waits for in-flight handlers (and their engine runs)
	// to finish. The health prober stops with the server.
	s.StartDraining()
	if cl != nil {
		cl.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("shutdown: in-flight runs abandoned", "err", err)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}
