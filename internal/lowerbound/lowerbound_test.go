package lowerbound

import (
	"testing"

	"eds/internal/cover"
	"eds/internal/graph"
	"eds/internal/verify"
)

func TestEvenStructure(t *testing.T) {
	for _, d := range []int{2, 4, 6, 8, 10} {
		c, err := Even(d)
		if err != nil {
			t.Fatalf("Even(%d): %v", d, err)
		}
		if err := c.G.Validate(); err != nil {
			t.Fatalf("Even(%d) Validate: %v", d, err)
		}
		if got, want := c.G.N(), 2*d-1; got != want {
			t.Errorf("Even(%d): N = %d, want %d", d, got, want)
		}
		if got, ok := c.G.Regular(); !ok || got != d {
			t.Errorf("Even(%d): Regular = (%d,%v), want (%d,true)", d, got, ok, d)
		}
		if !c.G.IsSimple() {
			t.Errorf("Even(%d): not simple", d)
		}
		if got, want := c.Opt.Count(), d/2; got != want {
			t.Errorf("Even(%d): |S| = %d, want %d", d, got, want)
		}
		// The pair port numbering: port 2i-1 always faces port 2i.
		for v := 0; v < c.G.N(); v++ {
			for i := 1; i <= d; i += 2 {
				if q := c.G.P(v, i); q.Num != i+1 {
					t.Errorf("Even(%d): p(%d,%d) = %v, want peer port %d", d, v, i, q, i+1)
				}
			}
		}
	}
}

func TestEvenCoveringMap(t *testing.T) {
	for _, d := range []int{2, 4, 6, 12} {
		c := MustEven(d)
		if err := cover.Verify(c.G, c.Quotient, c.Map); err != nil {
			t.Errorf("Even(%d): covering map invalid: %v", d, err)
		}
	}
}

func TestEvenOptIsOptimal(t *testing.T) {
	// Exact solver confirms |S| = d/2 is optimal (small d only; the
	// solver is exponential).
	for _, d := range []int{2, 4, 6} {
		c := MustEven(d)
		if !verify.IsEdgeDominatingSet(c.G, c.Opt) {
			t.Fatalf("Even(%d): S is not an EDS", d)
		}
		exact := verify.MinimumMaximalMatching(c.G)
		if exact.Count() != c.Opt.Count() {
			t.Errorf("Even(%d): |S| = %d but optimum = %d", d, c.Opt.Count(), exact.Count())
		}
	}
}

func TestEvenRejectsOddD(t *testing.T) {
	if _, err := Even(3); err == nil {
		t.Error("Even(3) accepted")
	}
	if _, err := Even(0); err == nil {
		t.Error("Even(0) accepted")
	}
}

func TestOddStructure(t *testing.T) {
	for _, d := range []int{1, 3, 5, 7, 9} {
		c, err := Odd(d)
		if err != nil {
			t.Fatalf("Odd(%d): %v", d, err)
		}
		if err := c.G.Validate(); err != nil {
			t.Fatalf("Odd(%d) Validate: %v", d, err)
		}
		k := (d - 1) / 2
		wantN := d*(2*d-1) + d + 2*k
		if got := c.G.N(); got != wantN {
			t.Errorf("Odd(%d): N = %d, want %d", d, got, wantN)
		}
		if got, ok := c.G.Regular(); !ok || got != d {
			t.Errorf("Odd(%d): Regular = (%d,%v), want (%d,true)", d, got, ok, d)
		}
		if !c.G.IsSimple() {
			t.Errorf("Odd(%d): not simple", d)
		}
		if got, want := c.Opt.Count(), (k+1)*d; got != want {
			t.Errorf("Odd(%d): |D*| = %d, want %d", d, got, want)
		}
		if !verify.IsEdgeDominatingSet(c.G, c.Opt) {
			t.Errorf("Odd(%d): D* is not an EDS", d)
		}
	}
}

func TestOddCoveringMap(t *testing.T) {
	for _, d := range []int{1, 3, 5, 7} {
		c := MustOdd(d)
		if err := cover.Verify(c.G, c.Quotient, c.Map); err != nil {
			t.Errorf("Odd(%d): covering map invalid: %v", d, err)
		}
	}
}

func TestOddOptIsOptimal(t *testing.T) {
	// Exact check is only tractable for d <= 3 (d = 3 has 21 nodes and
	// ~31 edges).
	for _, d := range []int{1, 3} {
		c := MustOdd(d)
		exact := verify.MinimumMaximalMatching(c.G)
		if exact.Count() != c.Opt.Count() {
			t.Errorf("Odd(%d): |D*| = %d but optimum = %d", d, c.Opt.Count(), exact.Count())
		}
	}
}

func TestOddEveryEdgeDominatedByExactlyOneOptEdge(t *testing.T) {
	// Section 4.2: each edge not in D* is adjacent to exactly one edge of
	// D*.
	c := MustOdd(5)
	optDeg := graph.DegreeIn(c.G, c.Opt)
	for idx, e := range c.G.Edges() {
		if c.Opt.Has(idx) {
			continue
		}
		adj := optDeg[e.A.Node] + optDeg[e.B.Node]
		if adj != 1 {
			t.Errorf("edge %v adjacent to %d optimum edges, want exactly 1", e, adj)
		}
	}
}

func TestOddRejectsEvenD(t *testing.T) {
	if _, err := Odd(2); err == nil {
		t.Error("Odd(2) accepted")
	}
	if _, err := Odd(-1); err == nil {
		t.Error("Odd(-1) accepted")
	}
}

func TestComponentStructure(t *testing.T) {
	// H(ℓ) is 2k-regular on 4k+1 nodes with the pair numbering.
	for _, d := range []int{3, 5, 7} {
		h, err := Component(d)
		if err != nil {
			t.Fatalf("Component(%d): %v", d, err)
		}
		k := (d - 1) / 2
		if got, want := h.N(), 4*k+1; got != want {
			t.Errorf("Component(%d): N = %d, want %d", d, got, want)
		}
		if got, ok := h.Regular(); !ok || got != 2*k {
			t.Errorf("Component(%d): Regular = (%d,%v), want (%d,true)", d, got, ok, 2*k)
		}
	}
}

func TestOddExternalWiring(t *testing.T) {
	// Every edge between a hub u ∈ P∪Q and a component node v ∈ H(ℓ)
	// joins port ℓ of u to port d of v (Section 4.1).
	d := 5
	c := MustOdd(d)
	l := oddLayout{d: d, k: (d - 1) / 2}
	hubStart := l.p(1)
	for _, e := range c.G.Edges() {
		aHub := e.A.Node >= hubStart
		bHub := e.B.Node >= hubStart
		if aHub == bHub {
			continue // internal to a component, or impossible hub-hub
		}
		hub, comp := e.A, e.B
		if bHub {
			hub, comp = e.B, e.A
		}
		ell := c.Map[comp.Node] + 1
		if hub.Num != ell {
			t.Errorf("hub edge %v: hub port %d, want component index %d", e, hub.Num, ell)
		}
		if comp.Num != d {
			t.Errorf("hub edge %v: component port %d, want %d", e, comp.Num, d)
		}
	}
	// And there are no hub-hub edges at all.
	for _, e := range c.G.Edges() {
		if e.A.Node >= hubStart && e.B.Node >= hubStart {
			t.Errorf("unexpected hub-hub edge %v", e)
		}
	}
}
