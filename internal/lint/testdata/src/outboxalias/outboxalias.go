// Package outboxalias is the outboxalias fixture: round-hook callbacks
// and Receive-style functions that retain engine-owned buffer views in
// every way the analyzer recognises, next to lawful copying code. On
// the sequential engine these bugs are invisible (its matrix rows are
// stable for a whole run); the sharded engine recycles the flat outbox
// every round, so retention corrupts whatever inspects the data later —
// after the equivalence comparison has already passed.
package outboxalias

import "eds/internal/sim"

// latest is a package-level sink; storing a view here keeps it past the
// barrier.
var latest [][]sim.Message

type recorder struct {
	rows []([]sim.Message)
	last []sim.Message
}

func (r *recorder) hook(round int, sent [][]sim.Message) {
	r.last = sent[0]                 // want `stored in a field`
	r.rows = append(r.rows, sent[1]) // want `appended to another slice`
	latest = sent                    // want `stored outside the callback`
	row := sent[2]
	r.last = row // want `stored in a field`
}

func leakyReturn(sent [][]sim.Message) []sim.Message {
	return sent[0] // want `returned from the callback`
}

func leakyChannel(ch chan []sim.Message, inbox []sim.Message) {
	ch <- inbox // want `sent on a channel`
}

func leakyGoroutine(sent [][]sim.Message) {
	go func() { // want `captured by a goroutine`
		_ = len(sent[0])
	}()
}

func leakyContainer(table map[int][]sim.Message, round int, sent [][]sim.Message) {
	table[round] = sent[0] // want `stored in a container element`
}

// leakyBufferedNode plants the SendInto half of the invariant: the buf
// handed to a BufferedNode is a window into the engine's pooled flat
// outbox, rewritten every round and returned to a sync.Pool when the
// run ends. Stashing it gives the node a view of whatever the *next*
// run writes there.
type leakyBufferedNode struct {
	stash []sim.Message
	deg   int
}

func (n *leakyBufferedNode) SendInto(round int, buf []sim.Message) {
	n.stash = buf // want `stored in a field`
}

func leakyBufferedClosure(out chan<- []sim.Message) func(round int, buf []sim.Message) {
	return func(round int, buf []sim.Message) {
		out <- buf // want `sent on a channel`
	}
}

// goodBufferedNode writes into the buffer and keeps nothing: the whole
// point of the SendInto contract.
type goodBufferedNode struct {
	deg int
}

func (n *goodBufferedNode) SendInto(round int, buf []sim.Message) {
	for i := 0; i < n.deg; i++ {
		buf[i] = nil
	}
}

// goodHook demonstrates the lawful patterns: reading elements, copying
// rows, and aggregating — none of which alias engine memory.
func goodHook(round int, sent [][]sim.Message) {
	counts := make([]int, len(sent))
	for v, row := range sent {
		for _, m := range row {
			if m != nil {
				counts[v]++
			}
		}
	}
	// Copying the elements of a row is fine: the messages themselves are
	// not recycled, only the slice backing store is.
	snapshot := append([]sim.Message(nil), sent[0]...)
	_ = snapshot
	// Deep-copying the matrix is the sanctioned way to retain it.
	kept := make([][]sim.Message, len(sent))
	for v := range sent {
		kept[v] = append([]sim.Message(nil), sent[v]...)
	}
	latest = kept
}
