package verify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eds/internal/gen"
	"eds/internal/graph"
)

func pathSet(t *testing.T, g *graph.Graph, pairs ...[2]int) *graph.EdgeSet {
	t.Helper()
	s, err := graph.EdgeSetFromPairs(g, pairs)
	if err != nil {
		t.Fatalf("EdgeSetFromPairs: %v", err)
	}
	return s
}

func TestFeasibilityPredicatesOnPath(t *testing.T) {
	// P6: 0-1-2-3-4-5.
	g := gen.Path(6)
	middle := pathSet(t, g, [2]int{1, 2}, [2]int{3, 4})
	ends := pathSet(t, g, [2]int{0, 1}, [2]int{4, 5})
	all := pathSet(t, g, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 4}, [2]int{4, 5})

	if !IsEdgeDominatingSet(g, middle) {
		t.Error("middle edges should dominate P6")
	}
	if IsEdgeDominatingSet(g, ends) {
		t.Error("end edges do not dominate the middle edge of P6")
	}
	if !IsMatching(g, middle) || !IsMaximalMatching(g, middle) {
		t.Error("middle edges should be a maximal matching")
	}
	if IsMaximalMatching(g, ends) {
		t.Error("end edges are not maximal (edge {2,3} is free)")
	}
	if IsMatching(g, all) {
		t.Error("all edges of a path are not a matching")
	}
	if !IsKMatching(g, all, 2) {
		t.Error("a path is a 2-matching")
	}
	if IsEdgeCover(g, middle) {
		t.Error("middle edges do not cover nodes 0 and 5")
	}
	if !IsEdgeCover(g, all) {
		t.Error("all edges cover everything")
	}
	if !IsForest(g, all) {
		t.Error("a path is a forest")
	}
	if IsStarForest(g, all) {
		t.Error("P6's edge set contains a path of length 3")
	}
	if !IsStarForest(g, ends) {
		t.Error("two disjoint edges form a star forest")
	}
}

func TestIsForestDetectsCycle(t *testing.T) {
	g := gen.Cycle(4)
	all := allEdgeSet(g)
	if IsForest(g, all) {
		t.Error("C4 is not a forest")
	}
	three := all.Clone()
	three.Remove(0)
	if !IsForest(g, three) {
		t.Error("C4 minus an edge is a forest")
	}
}

func TestStarForestStars(t *testing.T) {
	g := gen.Star(5)
	if !IsStarForest(g, allEdgeSet(g)) {
		t.Error("a star is a star forest")
	}
}

func TestExactSolversKnownValues(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"P2", gen.Path(2), 1},
		{"P4", gen.Path(4), 1}, // the middle edge dominates
		{"P5", gen.Path(5), 2},
		{"C4", gen.Cycle(4), 2},
		{"C5", gen.Cycle(5), 2},
		{"C7", gen.Cycle(7), 3}, // ceil(7/3)
		{"K4", gen.Complete(4), 2},
		{"K5", gen.Complete(5), 2},
		{"Star6", gen.Star(6), 1},
		{"Petersen", gen.Petersen(), 3},
		{"PerfectMatching3", gen.PerfectMatching(3), 3},
		{"K33", gen.CompleteBipartite(3, 3), 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			mmm := MinimumMaximalMatching(tc.g)
			if !IsMaximalMatching(tc.g, mmm) {
				t.Fatal("MinimumMaximalMatching result is not a maximal matching")
			}
			if got := mmm.Count(); got != tc.want {
				t.Errorf("MMM = %d, want %d", got, tc.want)
			}
			eds := MinimumEdgeDominatingSet(tc.g)
			if !IsEdgeDominatingSet(tc.g, eds) {
				t.Fatal("MinimumEdgeDominatingSet result is not an EDS")
			}
			if got := eds.Count(); got != tc.want {
				t.Errorf("minEDS = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestYannakakisGavrilEquivalenceQuick(t *testing.T) {
	// min EDS = min maximal matching on every graph (Yannakakis-Gavril).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomBoundedDegree(rng, 4+rng.Intn(7), 1+rng.Intn(4), 0.5)
		return MinimumEdgeDominatingSet(g).Count() == MinimumMaximalMatching(g).Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyMaximalMatchingQuick(t *testing.T) {
	// Greedy gives a maximal matching, and any maximal matching is at
	// most twice the minimum one (the 2-approximation of Section 1.2).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomBoundedDegree(rng, 4+rng.Intn(8), 1+rng.Intn(4), 0.5)
		mm := GreedyMaximalMatching(g)
		if !IsMaximalMatching(g, mm) {
			return false
		}
		opt := MinimumMaximalMatching(g)
		return mm.Count() <= 2*opt.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMaximalMatchingFromEDSQuick(t *testing.T) {
	// Section 1.1: from an EDS D we can always construct a maximal
	// matching no larger than D.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomBoundedDegree(rng, 4+rng.Intn(10), 1+rng.Intn(5), 0.5)
		// Build a sloppy EDS: the greedy matching plus random extras.
		d := GreedyMaximalMatching(g)
		for idx := 0; idx < g.M(); idx++ {
			if rng.Intn(3) == 0 {
				d.Add(idx)
			}
		}
		m, err := MaximalMatchingFromEDS(g, d)
		if err != nil {
			return false
		}
		return IsMaximalMatching(g, m) && m.Count() <= d.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMaximalMatchingFromEDSRejectsNonEDS(t *testing.T) {
	g := gen.Path(6)
	bad := graph.NewEdgeSet(g.M())
	bad.Add(0) // only the first edge: middle of P6 undominated
	if _, err := MaximalMatchingFromEDS(g, bad); err == nil {
		t.Error("non-EDS accepted")
	}
}

func TestValidate(t *testing.T) {
	g := gen.Cycle(5)
	if err := Validate(g, allEdgeSet(g)); err != nil {
		t.Errorf("full edge set rejected: %v", err)
	}
	if err := Validate(g, graph.NewEdgeSet(g.M())); err == nil {
		t.Error("empty set accepted for a cycle")
	}
}
