package core_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"eds/internal/core"
	"eds/internal/gen"
	"eds/internal/graph"
	"eds/internal/local"
	"eds/internal/sim"
)

// runEdgeSet executes the algorithm sequentially and returns the chosen
// edge set, failing the property on any error.
func runEdgeSet(t testing.TB, g *graph.Graph, a sim.Algorithm) (*graph.EdgeSet, *sim.Result) {
	t.Helper()
	d, res, err := sim.RunToEdgeSet(g, a)
	if err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	return d, res
}

func TestPortOneMatchesReferenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(6)
		n := d + 1 + rng.Intn(10)
		if n*d%2 != 0 {
			n++
		}
		g := gen.MustRandomRegular(rng, n, d)
		got, res, err := sim.RunToEdgeSet(g, core.PortOne{})
		if err != nil {
			return false
		}
		if res.Rounds != 1 {
			return false
		}
		return got.Equal(local.PortOne(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRegularOddMatchesReferenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := []int{1, 3, 5}[rng.Intn(3)]
		n := d + 1 + rng.Intn(10)
		if n*d%2 != 0 {
			n++
		}
		g := gen.MustRandomRegular(rng, n, d)
		for _, skip := range []bool{false, true} {
			alg := core.RegularOdd{SkipPruning: skip}
			got, res, err := sim.RunToEdgeSet(g, alg)
			if err != nil {
				return false
			}
			if res.Rounds != alg.Rounds(d) {
				return false
			}
			want, err := local.RegularOdd(g, skip)
			if err != nil {
				return false
			}
			if !got.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGeneralMatchesReferenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		switch rng.Intn(3) {
		case 0:
			g = gen.RandomBoundedDegree(rng, 5+rng.Intn(14), 2+rng.Intn(5), 0.5)
		case 1:
			g = gen.RandomTree(rng, 2+rng.Intn(18))
		default:
			d := 2 + rng.Intn(4)
			n := d + 1 + rng.Intn(8)
			if n*d%2 != 0 {
				n++
			}
			g = gen.MustRandomRegular(rng, n, d)
		}
		delta := g.MaxDegree()
		if delta < 2 {
			delta = 2
		}
		// Sometimes run with slack between the true max degree and Δ.
		if rng.Intn(3) == 0 {
			delta += 1 + rng.Intn(3)
		}
		alg := core.NewGeneral(delta)
		got, res, err := sim.RunToEdgeSet(g, alg)
		if err != nil {
			return false
		}
		if res.Rounds != alg.Rounds(0) {
			return false
		}
		want, err := local.General(g, delta)
		if err != nil {
			return false
		}
		return got.Equal(want.D)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEnginesAgreeOnRealAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	graphs := []*graph.Graph{
		gen.MustRandomRegular(rng, 12, 3),
		gen.MustRandomRegular(rng, 10, 4),
		gen.RandomBoundedDegree(rng, 14, 5, 0.4),
		gen.Petersen(),
	}
	for _, g := range graphs {
		algs := []sim.Algorithm{core.PortOne{}, core.NewGeneral(g.MaxDegree())}
		if d, ok := g.Regular(); ok && d%2 == 1 {
			algs = append(algs, core.RegularOdd{})
		}
		for _, a := range algs {
			seq, err := sim.RunSequential(g, a)
			if err != nil {
				t.Fatalf("%s sequential: %v", a.Name(), err)
			}
			con, err := sim.RunConcurrent(g, a)
			if err != nil {
				t.Fatalf("%s concurrent: %v", a.Name(), err)
			}
			if !reflect.DeepEqual(seq.Outputs, con.Outputs) {
				t.Errorf("%s: engines disagree", a.Name())
			}
		}
	}
}

func TestAllEdgesOnPerfectMatching(t *testing.T) {
	g := gen.PerfectMatching(5)
	d, res := runEdgeSet(t, g, core.AllEdges{})
	if res.Rounds != 0 {
		t.Errorf("Rounds = %d, want 0", res.Rounds)
	}
	if d.Count() != 5 {
		t.Errorf("selected %d edges, want all 5", d.Count())
	}
}

func TestGeneralNormalisesEvenDelta(t *testing.T) {
	a := core.NewGeneral(4)
	if a.Delta() != 5 {
		t.Errorf("Delta = %d, want 5 (A(2k) = A(2k+1))", a.Delta())
	}
	b := core.NewGeneral(5)
	if b.Delta() != 5 {
		t.Errorf("Delta = %d, want 5", b.Delta())
	}
}

func TestGeneralPanicsOnDeltaOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for Δ = 1")
		}
	}()
	core.NewGeneral(1)
}

func TestRegularOddOnSingleEdge(t *testing.T) {
	// d = 1: the perfect matching graph; the algorithm must select every
	// edge (ratio 1, the Δ=1 row of Table 1).
	g := gen.PerfectMatching(3)
	d, res := runEdgeSet(t, g, core.RegularOdd{})
	if d.Count() != 3 {
		t.Errorf("selected %d edges, want 3", d.Count())
	}
	if want := (core.RegularOdd{}).Rounds(1); res.Rounds != want {
		t.Errorf("Rounds = %d, want %d", res.Rounds, want)
	}
}
