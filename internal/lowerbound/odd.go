package lowerbound

import (
	"fmt"

	"eds/internal/factor"
	"eds/internal/graph"
)

// oddLayout computes the node indexing of the Theorem 2 construction for
// odd d = 2k+1: d components H(ℓ) of 2d-1 nodes each, then the hubs
// P = {p_1..p_d} and Q = {q_1..q_2k}.
type oddLayout struct {
	d, k int
}

func (l oddLayout) compBase(ell int) int { return (ell - 1) * (2*l.d - 1) } // ℓ is 1-based
func (l oddLayout) a(ell, i int) int     { return l.compBase(ell) + i - 1 } // i = 1..2k
func (l oddLayout) b(ell, i int) int     { return l.compBase(ell) + 2*l.k + i - 1 }
func (l oddLayout) c(ell int) int        { return l.compBase(ell) + 4*l.k }
func (l oddLayout) p(ell int) int        { return l.d*(2*l.d-1) + ell - 1 }
func (l oddLayout) q(i int) int          { return l.d*(2*l.d-1) + l.d + i - 1 }
func (l oddLayout) n() int               { return l.d*(2*l.d-1) + l.d + 2*l.k }

// componentEdges lists the internal edges of H(ℓ) in local indices
// 0..4k: a_{ℓ,i} = i-1, b_{ℓ,i} = 2k+i-1, c_ℓ = 4k. The edge classes are
// R(ℓ) (a star at c_ℓ), S(ℓ) (a perfect matching on A(ℓ), part of the
// optimum), and T(ℓ) (a crown: complete bipartite minus the matching
// {a_i, b_i}).
func componentEdges(k int) (all [][2]int, s [][2]int) {
	cLocal := 4 * k
	for i := 1; i <= 2*k; i++ { // R(ℓ)
		all = append(all, [2]int{cLocal, 2*k + i - 1})
	}
	for t := 1; t <= k; t++ { // S(ℓ)
		e := [2]int{2*t - 2, 2*t - 1}
		all = append(all, e)
		s = append(s, e)
	}
	for i := 1; i <= 2*k; i++ { // T(ℓ)
		for j := 1; j <= 2*k; j++ {
			if i != j {
				all = append(all, [2]int{i - 1, 2*k + j - 1})
			}
		}
	}
	return all, s
}

// Odd builds the Theorem 2 construction for odd d >= 1 (Figures 5-7 show
// d = 5). Each component H(ℓ) is 2k-regular and carries the adversarial
// pair port numbering on ports 1..2k; port d of every component node goes
// to the hubs P ∪ Q exactly as prescribed in Section 4.1. The optimum is
// D* = Y ∪ ⋃_ℓ S(ℓ) with |D*| = (k+1)d.
func Odd(d int) (*Construction, error) {
	if d < 1 || d%2 != 1 {
		return nil, fmt.Errorf("lowerbound: Odd needs an odd d >= 1, got %d", d)
	}
	k := (d - 1) / 2
	l := oddLayout{d: d, k: k}
	b := graph.NewBuilder(l.n())
	var optPairs [][2]int

	compEdges, compS := componentEdges(k)
	for ell := 1; ell <= d; ell++ {
		base := l.compBase(ell)
		if len(compEdges) > 0 {
			asg, err := factor.PairPorts(factor.Multi{N: 4*k + 1, Edges: compEdges})
			if err != nil {
				return nil, fmt.Errorf("lowerbound: factorising H(%d): %w", ell, err)
			}
			for _, a := range asg {
				if err := b.Connect(base+a.U, a.PU, base+a.V, a.PV); err != nil {
					return nil, err
				}
			}
		}
		for _, e := range compS {
			optPairs = append(optPairs, [2]int{base + e[0], base + e[1]})
		}
	}
	// External connections (each uses port d on the component side).
	for ell := 1; ell <= d; ell++ {
		// (p_ℓ, ℓ) <-> (c_ℓ, d); these edges form Y, part of the optimum.
		if err := b.Connect(l.p(ell), ell, l.c(ell), d); err != nil {
			return nil, err
		}
		optPairs = append(optPairs, [2]int{l.p(ell), l.c(ell)})
		for i := 1; i <= 2*k; i++ {
			if i != ell {
				// (p_i, ℓ) <-> (b_{ℓ,i}, d)
				if err := b.Connect(l.p(i), ell, l.b(ell, i), d); err != nil {
					return nil, err
				}
			}
			// (q_i, ℓ) <-> (a_{ℓ,i}, d)
			if err := b.Connect(l.q(i), ell, l.a(ell, i), d); err != nil {
				return nil, err
			}
		}
		// (p_d, ℓ) <-> (b_{ℓ,ℓ}, d) for ℓ <= 2k.
		if ell <= 2*k {
			if err := b.Connect(l.p(d), ell, l.b(ell, ell), d); err != nil {
				return nil, err
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	opt, err := graph.EdgeSetFromPairs(g, optPairs)
	if err != nil {
		return nil, err
	}
	// Quotient: x_1..x_d (each with k loops and one edge to y) plus y.
	qb := graph.NewBuilder(d + 1)
	for ell := 0; ell < d; ell++ {
		for i := 1; i <= k; i++ {
			qb.MustConnect(ell, 2*i-1, ell, 2*i)
		}
		qb.MustConnect(d, ell+1, ell, d)
	}
	quotient, err := qb.Build()
	if err != nil {
		return nil, err
	}
	cmap := make([]int, l.n())
	for ell := 1; ell <= d; ell++ {
		for local := 0; local < 2*d-1; local++ {
			cmap[l.compBase(ell)+local] = ell - 1
		}
	}
	for v := l.p(1); v < l.n(); v++ {
		cmap[v] = d
	}
	return &Construction{G: g, Opt: opt, Quotient: quotient, Map: cmap}, nil
}

// MustOdd is Odd but panics on error.
func MustOdd(d int) *Construction {
	c, err := Odd(d)
	if err != nil {
		panic(err)
	}
	return c
}

// Component returns the standalone 2k-regular component H(ℓ) of the Odd
// construction (ports 1..2k only, without the external port d), as
// rendered in Figure 5. Requires odd d >= 3.
func Component(d int) (*graph.Graph, error) {
	if d < 3 || d%2 != 1 {
		return nil, fmt.Errorf("lowerbound: Component needs an odd d >= 3, got %d", d)
	}
	k := (d - 1) / 2
	compEdges, _ := componentEdges(k)
	asg, err := factor.PairPorts(factor.Multi{N: 4*k + 1, Edges: compEdges})
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(4*k + 1)
	for _, a := range asg {
		if err := b.Connect(a.U, a.PU, a.V, a.PV); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
