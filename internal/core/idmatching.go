package core

import (
	"sync/atomic"

	"eds/internal/graph"
	"eds/internal/sim"
)

// IDMatching is a deterministic distributed maximal matching for networks
// *with unique node identifiers* — the model extension of Section 1.3 of
// the paper. Every maximal matching 2-approximates the minimum edge
// dominating set, so with IDs the adversarial constructions lose their
// power: the ratio collapses from 4-Θ(1/d) to at most 2 even without
// randomness. This pins the blame for the paper's lower bounds on
// anonymity rather than determinism.
//
// Protocol (repeated 2-round phases after one ID-exchange round):
//
//	status — every active node reports whether it is matched; silence
//	         (a stopped node) counts as matched.
//	point  — every unmatched node points at its smallest-ID unmatched
//	         neighbour (ties by port number); mutually pointing nodes
//	         match when the points arrive.
//
// The globally smallest-ID-pair edge among unmatched nodes is always
// mutual, so at least one edge matches per phase and the algorithm
// terminates in O(n) phases (typically far fewer). A node stops once it
// is matched and has announced it, or when no unmatched neighbours
// remain. Unlike the paper's algorithms the running time necessarily
// depends on n — that dependence is exactly what Section 1.3 discusses.
//
// Identifiers are assigned by creation order, which every engine fixes
// to the node index — the bulk construction path makes that explicit by
// assigning id = node index directly: the "IDs exist" assumption, made
// concrete.
type IDMatching struct {
	counter *atomic.Int64
}

var (
	_ sim.Algorithm     = IDMatching{}
	_ sim.BulkAlgorithm = IDMatching{}
)

// NewIDMatching returns a fresh instance (the ID counter is per
// instance; do not reuse one instance across runs).
func NewIDMatching() IDMatching {
	return IDMatching{counter: &atomic.Int64{}}
}

// Name implements sim.Algorithm.
func (IDMatching) Name() string { return "idmatching" }

// NewNode implements sim.Algorithm.
func (a IDMatching) NewNode(degree int) sim.Node {
	id := int(a.counter.Add(1)) - 1
	return &idNode{id: id, deg: degree, nbrID: make([]int, degree),
		nbrMatched: make([]bool, degree), pointedAt: -1, matchedPort: -1}
}

// BuildNodes implements sim.BulkAlgorithm: the range shares one value
// slab and the shard's arena, and every node's identifier is its node
// index — exactly the ID the creation-order counter of NewNode hands
// out when the engines construct nodes in ascending order, but safe to
// run on all shards at once.
func (a IDMatching) BuildNodes(g *graph.Graph, lo, hi int, arena *sim.StateArena, nodes []sim.Node) {
	slab := make([]idNode, hi-lo)
	for i := range slab {
		v := lo + i
		deg := g.Deg(v)
		slab[i] = idNode{id: v, deg: deg, nbrID: arenaInts(arena, deg),
			nbrMatched: arenaBools(arena, deg), pointedAt: -1, matchedPort: -1}
		nodes[i] = &slab[i]
	}
}

// msgID carries the sender's identifier.
type msgID struct{ ID int }

// msgIDStatus reports the sender's matched flag.
type msgIDStatus struct{ Matched bool }

// msgPoint is the pointing proposal.
type msgPoint struct{}

type idNode struct {
	id, deg     int
	nbrID       []int
	nbrMatched  []bool
	pointedAt   int // 0-based port pointed at this phase, -1 if none
	matchedPort int // 0-based port of the matching edge, -1 if unmatched
	announced   bool
	done        bool
	round       int
}

var (
	_ sim.Node           = (*idNode)(nil)
	_ sim.BufferedNode   = (*idNode)(nil)
	_ sim.OutputAppender = (*idNode)(nil)
)

func (n *idNode) matched() bool { return n.matchedPort >= 0 }

// hasActiveNeighbour reports whether any neighbour is still unmatched.
func (n *idNode) hasActiveNeighbour() bool {
	for _, m := range n.nbrMatched {
		if !m {
			return true
		}
	}
	return false
}

// SendInto implements sim.BufferedNode, writing the round's messages
// straight into the engine-owned buffer. Only the ID-exchange round
// boxes a payload-carrying message (msgID); the steady-state status and
// point rounds box zero- and bool-sized values, which Go interns, so
// they allocate nothing.
func (n *idNode) SendInto(round int, buf []sim.Message) {
	switch {
	case n.round == 0:
		for i := range buf {
			buf[i] = msgID{ID: n.id}
		}
	case (n.round-1)%2 == 0: // status
		for i := range buf {
			buf[i] = msgIDStatus{Matched: n.matched()}
		}
	default: // point
		n.pointedAt = -1
		if !n.matched() {
			best := -1
			for idx := 0; idx < n.deg; idx++ {
				if n.nbrMatched[idx] {
					continue
				}
				if best == -1 || n.nbrID[idx] < n.nbrID[best] {
					best = idx
				}
			}
			if best >= 0 {
				n.pointedAt = best
				buf[best] = msgPoint{}
			}
		}
	}
}

// Send implements the legacy allocation path; the engines prefer
// SendInto.
func (n *idNode) Send(round int) []sim.Message {
	msgs := make([]sim.Message, n.deg)
	n.SendInto(round, msgs)
	return msgs
}

func (n *idNode) Receive(round int, inbox []sim.Message) {
	switch {
	case n.round == 0:
		for idx, m := range inbox {
			n.nbrID[idx] = m.(msgID).ID
		}
	case (n.round-1)%2 == 0: // status
		for idx, m := range inbox {
			if s, ok := m.(msgIDStatus); ok {
				n.nbrMatched[idx] = s.Matched
			} else {
				// Silence: the neighbour has stopped, hence is matched
				// or has no prospects; either way it is unavailable.
				n.nbrMatched[idx] = true
			}
		}
		if n.matched() && n.announced {
			n.done = true
		}
		if n.matched() {
			n.announced = true
		}
		if !n.matched() && !n.hasActiveNeighbour() {
			n.done = true
		}
	default: // point + resolve: the points sent this round arrive now
		if n.pointedAt >= 0 {
			if _, ok := inbox[n.pointedAt].(msgPoint); ok {
				n.matchedPort = n.pointedAt
			}
		}
		n.pointedAt = -1
	}
	n.round++
}

func (n *idNode) Done() bool { return n.done }

func (n *idNode) Output() []int {
	if n.matchedPort >= 0 {
		return []int{n.matchedPort + 1}
	}
	return nil
}

// AppendOutput implements sim.OutputAppender.
func (n *idNode) AppendOutput(dst []int) []int {
	if n.matchedPort >= 0 {
		return append(dst, n.matchedPort+1)
	}
	return dst
}
