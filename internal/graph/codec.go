package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTo serialises the graph in a line-oriented text format:
//
//	# comments and blank lines are ignored
//	nodes <N>
//	conn <v> <i> <u> <j>    # p(v,i) = (u,j); one line per orbit
//
// The format round-trips through ReadGraph and is the interchange format
// of the edsrun tool's -graph file:PATH option and the edsd server's
// request body. The output is canonical: a fixed line order with no
// comments or extra whitespace, so byte equality of two WriteTo outputs
// is graph equality.
func WriteTo(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "nodes %d\n", g.N())
	for v := 0; v < g.N(); v++ {
		for i := 1; i <= g.Deg(v); i++ {
			q := g.P(v, i)
			self := Port{Node: v, Num: i}
			// Emit each orbit once, from its canonical end.
			if q.Less(self) {
				continue
			}
			fmt.Fprintf(bw, "conn %d %d %d %d\n", v, i, q.Node, q.Num)
		}
	}
	return bw.Flush()
}

// Limits bounds the size of graphs accepted by ReadGraphLimits. The
// codec parses untrusted network bytes (the edsd server feeds request
// bodies straight into it), so both dimensions that drive allocation are
// capped: the node count, and the total number of ports (a single
// "conn 0 999999999 ..." line would otherwise allocate gigabytes,
// because the builder grows a node's port table up to the named port).
// Non-positive fields fall back to the DefaultLimits value.
type Limits struct {
	MaxNodes int
	MaxPorts int
}

// DefaultLimits is the cap applied by ReadGraph: large enough for every
// experiment in the repo (million-node graphs), small enough that a
// hostile input cannot OOM the process.
var DefaultLimits = Limits{MaxNodes: 1 << 22, MaxPorts: 1 << 24}

// ErrTooLarge is wrapped by decode errors caused by an input exceeding
// the size limits, letting servers distinguish "too big" (413) from
// "malformed" (400).
var ErrTooLarge = errors.New("graph: input exceeds decode limits")

// ReadGraph parses the WriteTo format under DefaultLimits.
func ReadGraph(r io.Reader) (*Graph, error) {
	return ReadGraphLimits(r, DefaultLimits)
}

// ReadGraphLimits parses the WriteTo format, rejecting inputs that
// declare more than lim.MaxNodes nodes or wire more than lim.MaxPorts
// ports (errors wrapping ErrTooLarge). Parsing is strict: every numeric
// field must be a whole base-10 integer, and any line longer than the
// scanner budget (64 KiB) is an error. Allocation is proportional to the
// declared size, never to attacker-controlled port numbers beyond the
// cap.
func ReadGraphLimits(r io.Reader, lim Limits) (*Graph, error) {
	if lim.MaxNodes <= 0 {
		lim.MaxNodes = DefaultLimits.MaxNodes
	}
	if lim.MaxPorts <= 0 {
		lim.MaxPorts = DefaultLimits.MaxPorts
	}
	sc := bufio.NewScanner(r)
	var b *Builder
	var maxPortSeen []int // per node, the highest port number wired so far
	totalPorts := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "nodes":
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate nodes directive", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: bad nodes directive %q", line, text)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad nodes directive %q", line, text)
			}
			if n < 0 {
				return nil, fmt.Errorf("graph: line %d: negative node count", line)
			}
			if n > lim.MaxNodes {
				return nil, fmt.Errorf("%w: line %d: %d nodes > limit %d", ErrTooLarge, line, n, lim.MaxNodes)
			}
			b = NewBuilder(n)
			maxPortSeen = make([]int, n)
		case "conn":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: conn before nodes", line)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("graph: line %d: bad conn directive %q", line, text)
			}
			var nums [4]int
			for k, f := range fields[1:] {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad conn directive %q: %v", line, text, err)
				}
				nums[k] = v
			}
			v, i, u, j := nums[0], nums[1], nums[2], nums[3]
			// Size gate before Connect: the builder grows a node's port
			// table up to the named port number, so the growth both ends
			// would cause is accounted against the port budget first.
			if v >= 0 && v < b.N() && u >= 0 && u < b.N() && i >= 1 && j >= 1 {
				grow := 0
				if i > maxPortSeen[v] {
					grow += i - maxPortSeen[v]
				}
				high := maxPortSeen[u]
				if u == v && i > high {
					high = i
				}
				if j > high {
					grow += j - high
				}
				if totalPorts+grow > lim.MaxPorts {
					return nil, fmt.Errorf("%w: line %d: more than %d ports", ErrTooLarge, line, lim.MaxPorts)
				}
				totalPorts += grow
				if i > maxPortSeen[v] {
					maxPortSeen[v] = i
				}
				if j > maxPortSeen[u] {
					maxPortSeen[u] = j
				}
			}
			if err := b.Connect(v, i, u, j); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing nodes directive")
	}
	return b.Build()
}
