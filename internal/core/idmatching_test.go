package core_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"eds/internal/core"
	"eds/internal/gen"
	"eds/internal/lowerbound"
	"eds/internal/ratio"
	"eds/internal/sim"
	"eds/internal/verify"
)

func TestIDMatchingMaximalQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomBoundedDegree(rng, 4+rng.Intn(16), 1+rng.Intn(5), 0.5)
		mm, res, err := sim.RunToEdgeSet(g, core.NewIDMatching())
		if err != nil {
			return false
		}
		if !verify.IsMaximalMatching(g, mm) {
			return false
		}
		// Termination within the O(n) phase bound (3 rounds per phase
		// plus the ID exchange and shutdown slack).
		return res.Rounds <= 3*(g.N()+3)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIDsBreakTheAdversarialConstruction(t *testing.T) {
	// The heart of Section 1.3: on the Theorem 1 construction every
	// deterministic *anonymous* algorithm pays 4-2/d, but a deterministic
	// algorithm with unique IDs achieves a maximal matching, i.e. ratio
	// at most 2.
	for _, d := range []int{4, 6, 8} {
		c := lowerbound.MustEven(d)
		mm, _, err := sim.RunToEdgeSet(c.G, core.NewIDMatching())
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !verify.IsMaximalMatching(c.G, mm) {
			t.Fatalf("d=%d: not a maximal matching", d)
		}
		measured := ratio.New(int64(mm.Count()), int64(c.Opt.Count()))
		if !measured.LessEq(ratio.FromInt(2)) {
			t.Errorf("d=%d: ID-based matching ratio %v exceeds 2", d, measured)
		}
		forced := ratio.EvenRegularBound(d)
		if measured.Cmp(forced) >= 0 {
			t.Errorf("d=%d: IDs did not beat the anonymous bound: %v >= %v", d, measured, forced)
		}
	}
}

func TestIDMatchingEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.MustRandomRegular(rng, 12, 3)
	seq, err := sim.RunSequential(g, core.NewIDMatching())
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	con, err := sim.RunConcurrent(g, core.NewIDMatching())
	if err != nil {
		t.Fatalf("concurrent: %v", err)
	}
	if !reflect.DeepEqual(seq.Outputs, con.Outputs) {
		t.Error("engines disagree on IDMatching")
	}
}

func TestIDMatchingOnEdgeCases(t *testing.T) {
	t.Run("single edge", func(t *testing.T) {
		g := gen.Path(2)
		mm, _, err := sim.RunToEdgeSet(g, core.NewIDMatching())
		if err != nil {
			t.Fatal(err)
		}
		if mm.Count() != 1 {
			t.Errorf("got %d edges, want 1", mm.Count())
		}
	})
	t.Run("isolated nodes", func(t *testing.T) {
		g, err := sim.RunSequential(gen.PerfectMatching(1), core.NewIDMatching())
		if err != nil {
			t.Fatal(err)
		}
		_ = g
	})
	t.Run("star", func(t *testing.T) {
		g := gen.Star(6)
		mm, _, err := sim.RunToEdgeSet(g, core.NewIDMatching())
		if err != nil {
			t.Fatal(err)
		}
		if mm.Count() != 1 {
			t.Errorf("star matching size %d, want 1", mm.Count())
		}
	})
}
