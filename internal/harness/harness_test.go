package harness

import (
	"strings"
	"testing"
)

func TestTable1AllRowsTight(t *testing.T) {
	rows, err := Table1(10, 9, 9)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if !r.Tight {
			t.Errorf("%s param=%d: measured %v != paper %v", r.Family, r.Param, r.Measured, r.Paper)
		}
		if r.Rounds > r.ScheduledRounds {
			t.Errorf("%s param=%d: rounds %d exceed schedule %d", r.Family, r.Param, r.Rounds, r.ScheduledRounds)
		}
	}
	text := FormatTable1(rows)
	for _, want := range []string{"d-regular (even)", "d-regular (odd)", "max degree Δ", "yes"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
	if strings.Contains(text, " no\n") {
		t.Error("formatted table contains a non-tight row")
	}
}

func TestRandomRegularStudySmall(t *testing.T) {
	row, err := RandomRegularStudy(1, 3, 10, 5)
	if err != nil {
		t.Fatalf("RandomRegularStudy: %v", err)
	}
	if !row.Exact {
		t.Error("10-node instances should use the exact solver")
	}
	if row.WorstRatio > row.PaperBound+1e-9 {
		t.Errorf("worst ratio %.4f exceeds the paper bound %.4f", row.WorstRatio, row.PaperBound)
	}
	if row.AvgRatio < 1 {
		t.Errorf("average ratio %.4f below 1", row.AvgRatio)
	}
}

func TestRandomBoundedStudySmall(t *testing.T) {
	row, err := RandomBoundedStudy(2, 4, 10, 5)
	if err != nil {
		t.Fatalf("RandomBoundedStudy: %v", err)
	}
	if row.WorstRatio > row.PaperBound+1e-9 {
		t.Errorf("worst ratio %.4f exceeds the paper bound %.4f", row.WorstRatio, row.PaperBound)
	}
}

func TestRandomizedBaselineBeatsDeterministicBound(t *testing.T) {
	// On the Theorem 1 construction for d = 6, deterministic algorithms
	// are forced to ratio 4 - 2/6 ≈ 3.67; the randomized maximal
	// matching stays at 2 or below.
	row, err := RandomizedBaselineStudy(3, 6, 20)
	if err != nil {
		t.Fatalf("RandomizedBaselineStudy: %v", err)
	}
	if row.WorstRatio > 2+1e-9 {
		t.Errorf("randomized baseline worst ratio %.4f exceeds 2", row.WorstRatio)
	}
	if row.WorstRatio >= 4-2.0/6 {
		t.Errorf("randomized baseline did not beat the deterministic bound: %.4f", row.WorstRatio)
	}
}

func TestRandomizedBaselineRejectsOddD(t *testing.T) {
	if _, err := RandomizedBaselineStudy(1, 5, 3); err == nil {
		t.Error("odd d accepted")
	}
}

func TestRoundScalingIndependentOfN(t *testing.T) {
	for _, d := range []int{3, 4} {
		rows, err := RoundScaling(4, d, []int{16, 32, 64, 128})
		if err != nil {
			t.Fatalf("RoundScaling(d=%d): %v", d, err)
		}
		for _, r := range rows[1:] {
			if r.Rounds != rows[0].Rounds {
				t.Errorf("d=%d: rounds vary with n: %d at n=%d vs %d at n=%d",
					d, r.Rounds, r.N, rows[0].Rounds, rows[0].N)
			}
		}
		if !strings.Contains(FormatScaling(rows), rows[0].Algorithm) {
			t.Error("FormatScaling missing algorithm name")
		}
	}
}

func TestFormatStudy(t *testing.T) {
	row, err := RandomRegularStudy(5, 4, 12, 3)
	if err != nil {
		t.Fatalf("RandomRegularStudy: %v", err)
	}
	out := FormatStudy([]StudyRow{row})
	if !strings.Contains(out, "random d-regular") {
		t.Errorf("FormatStudy output missing family: %s", out)
	}
}

func TestEngineScalingAgreesAcrossEngines(t *testing.T) {
	engines := []string{"sequential", "concurrent", "sharded"}
	rows, err := EngineScaling(11, 3, []int{32, 64}, engines)
	if err != nil {
		t.Fatalf("EngineScaling: %v", err)
	}
	if len(rows) != 2*len(engines) {
		t.Fatalf("got %d rows, want %d", len(rows), 2*len(engines))
	}
	out := FormatEngineScaling(rows)
	for _, e := range engines {
		if !strings.Contains(out, e) {
			t.Errorf("FormatEngineScaling missing engine %s", e)
		}
	}
}

func TestEngineScalingRejectsUnknownEngine(t *testing.T) {
	if _, err := EngineScaling(11, 3, []int{16}, []string{"warp"}); err == nil {
		t.Error("unknown engine accepted")
	}
}
