package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestFiguresCommand builds and runs the command end to end, checking
// that the artifacts land on disk.
func TestFiguresCommand(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	dir := t.TempDir()
	cmd := exec.Command("go", "run", ".", "-fig", "4", "-out", dir)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	for _, name := range []string{"figure4.dot", "figure4.txt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}
}
