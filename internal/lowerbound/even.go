// Package lowerbound builds the paper's adversarial port-numbered graphs:
// the Theorem 1 construction for even-degree regular graphs and the
// Theorem 2 construction for odd-degree regular graphs, together with
// their quotient multigraphs and covering maps. On these inputs the
// covering-map argument forces *every* deterministic algorithm to pay the
// Table 1 ratio, so running the paper's algorithms on them reproduces the
// table exactly.
package lowerbound

import (
	"fmt"

	"eds/internal/factor"
	"eds/internal/graph"
)

// Construction packages an adversarial instance: the graph, an optimal
// edge dominating set, the quotient multigraph, and the covering map from
// the graph onto the quotient.
type Construction struct {
	// G is the adversarial d-regular port-numbered graph.
	G *graph.Graph
	// Opt is an optimal edge dominating set of G (the paper's S for even
	// d, D* for odd d).
	Opt *graph.EdgeSet
	// Quotient is the multigraph that G covers; all nodes of G in the
	// same fibre are indistinguishable to any deterministic algorithm.
	Quotient *graph.Graph
	// Map is the covering map: Map[v] is the quotient node of v.
	Map []int
}

// Even builds the Theorem 1 construction for even d >= 2 (Figure 4 shows
// d = 6): nodes A = {a_1..a_d} and B = {b_1..b_{d-1}}, edge set
// S = {{a_1,a_2}, {a_3,a_4}, ...} (the optimum) plus the complete
// bipartite graph A x B, port-numbered along a 2-factorisation so that
// the whole graph covers a single-node multigraph with d/2 loops.
func Even(d int) (*Construction, error) {
	if d < 2 || d%2 != 0 {
		return nil, fmt.Errorf("lowerbound: Even needs an even d >= 2, got %d", d)
	}
	k := d / 2
	n := 2*d - 1 // a_i = 0..d-1, b_j = d..2d-2
	edges := make([][2]int, 0, n*d/2)
	var optPairs [][2]int
	for t := 0; t < k; t++ {
		e := [2]int{2 * t, 2*t + 1}
		edges = append(edges, e)
		optPairs = append(optPairs, e)
	}
	for i := 0; i < d; i++ {
		for j := 0; j < d-1; j++ {
			edges = append(edges, [2]int{i, d + j})
		}
	}
	asg, err := factor.PairPorts(factor.Multi{N: n, Edges: edges})
	if err != nil {
		return nil, fmt.Errorf("lowerbound: factorising Theorem 1 graph: %w", err)
	}
	b := graph.NewBuilder(n)
	for _, a := range asg {
		if err := b.Connect(a.U, a.PU, a.V, a.PV); err != nil {
			return nil, err
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	opt, err := graph.EdgeSetFromPairs(g, optPairs)
	if err != nil {
		return nil, err
	}
	// Quotient: one node with k undirected loops numbered (2i-1, 2i).
	qb := graph.NewBuilder(1)
	for i := 1; i <= k; i++ {
		qb.MustConnect(0, 2*i-1, 0, 2*i)
	}
	return &Construction{
		G:        g,
		Opt:      opt,
		Quotient: qb.MustBuild(),
		Map:      make([]int, n),
	}, nil
}

// MustEven is Even but panics on error.
func MustEven(d int) *Construction {
	c, err := Even(d)
	if err != nil {
		panic(err)
	}
	return c
}
