package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// requestIDKey carries the request ID through the request context, from
// the middleware down to the fill client, so one ID follows a request
// across every replica it touches.
type requestIDKey struct{}

// requestIDFrom returns the request's ID, or "" outside the middleware.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// newRequestID returns a fresh 16-hex-character request ID.
func newRequestID() string {
	var b [8]byte
	rand.Read(b[:]) // crypto/rand.Read never fails (it panics instead, per its docs)
	return hex.EncodeToString(b[:])
}

// statusWriter records the status code and body bytes a handler wrote,
// for the request log. It forwards Flush so the streaming path keeps
// its chunked delivery through the middleware.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the endpoint mux in the observability middleware:
//
//   - X-Request-ID: taken from the client (so an ID minted by an edge
//     proxy, or by the non-owner replica that forwarded a fill, is
//     preserved) or generated here; echoed on the response and carried
//     in the context for the fill client to propagate. Following one ID
//     through each replica's request log reconstructs a request's whole
//     cross-replica path.
//   - one structured log line per request: method, path, status, bytes,
//     duration, cache disposition, and the requesting peer for fills.
//     Health probes log at Debug so an idle fleet's logs stay quiet.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		ctx := context.WithValue(r.Context(), requestIDKey{}, id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))

		level := slog.LevelInfo
		if isProbePath(r.URL.Path) {
			level = slog.LevelDebug
		}
		if !s.cfg.Logger.Enabled(ctx, level) {
			return
		}
		attrs := []slog.Attr{
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.code),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("elapsed", time.Since(start)),
		}
		if c := w.Header().Get("X-Cache"); c != "" {
			attrs = append(attrs, slog.String("cache", c))
		}
		if peer := r.Header.Get("X-Eds-Peer"); peer != "" {
			attrs = append(attrs, slog.String("fill_for", peer))
		}
		s.cfg.Logger.LogAttrs(ctx, level, "request", attrs...)
	})
}

func isProbePath(p string) bool {
	return p == "/healthz" || p == "/livez" || p == "/readyz" ||
		strings.HasPrefix(p, "/debug/pprof/")
}
