// Adversarial: watch the lower bound bite.
//
// The paper's Theorem 1 says that on a specific d-regular port-numbered
// graph, *no* deterministic anonymous algorithm can do better than
// 4 - 2/d. This example builds that graph for d = 6, runs several
// different algorithms on it, and shows that every one of them pays at
// least the forced ratio — while on a random 6-regular graph of the same
// size they all do much better. The port numbering, not the topology, is
// the adversary.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"eds"
	"eds/internal/core"
	"eds/internal/lowerbound"
	"eds/internal/sim"
	"eds/internal/verify"
)

func main() {
	log.SetFlags(0)
	const d = 6

	c := lowerbound.MustEven(d)
	fmt.Printf("Theorem 1 construction for d = %d: n = %d, optimum = %d edges\n",
		d, c.G.N(), c.Opt.Count())
	fmt.Printf("forced ratio for ANY deterministic algorithm: 4 - 2/d = %.4f\n\n", 4-2.0/d)

	algs := []sim.Algorithm{
		core.PortOne{},
		core.NewGeneral(d),
		core.NewGeneral(d + 3), // extra slack changes nothing
	}
	for _, alg := range algs {
		ds, _, err := sim.RunToEdgeSet(c.G, alg)
		if err != nil {
			log.Fatal(err)
		}
		ratio := float64(ds.Count()) / float64(c.Opt.Count())
		fmt.Printf("  %-24s |D| = %2d  ratio = %.4f (forced >= %.4f: %v)\n",
			alg.Name(), ds.Count(), ratio, 4-2.0/d, ratio >= 4-2.0/d-1e-9)
	}

	// Same algorithms, same degree, benign instance: ratios collapse.
	rng := rand.New(rand.NewSource(1))
	g, err := eds.RandomRegular(rng, c.G.N()+1, d)
	if err != nil {
		log.Fatal(err)
	}
	opt := verify.MinimumMaximalMatching(g).Count()
	fmt.Printf("\nrandom %d-regular graph with n = %d (optimum %d):\n", d, g.N(), opt)
	for _, alg := range algs {
		ds, _, err := sim.RunToEdgeSet(g, alg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s |D| = %2d  ratio = %.4f\n",
			alg.Name(), ds.Count(), float64(ds.Count())/float64(opt))
	}
	fmt.Println("\nthe adversarial port numbering makes all nodes locally identical;")
	fmt.Println("the covering-map argument then forces every algorithm to select a full 2-factor.")
}
