package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"eds/internal/lint/analysis"
)

// engineBaseline is the set of engines whose result-equivalence the
// cross-engine suite (internal/sim/engines_test.go) asserts today. The
// server's result cache deliberately excludes the engine from its key
// because of exactly this property (see cacheKey in internal/server),
// so the two facts must move together.
var engineBaseline = map[string]bool{
	"sequential": true,
	"concurrent": true,
	"sharded":    true,
}

// EngineKey closes the ROADMAP's cache-key hazard mechanically. The
// edsd result cache serves one engine's output for every engine, which
// is sound only while every registered engine is result-equivalent. A
// new entry in the engine registry (the map literal returned by
// Engines()) therefore must carry one of two markers, each naming the
// obligation its author has discharged:
//
//	"mine": RunMine, // enginekey:equivalent — covered by engines_test.go
//	"rand": RunRand, // enginekey:cache-keyed — cacheKey includes engine
//
// An unmarked new engine is reported: either add it to the equivalence
// corpus and mark it enginekey:equivalent, or extend the server's
// cacheKey with an engine component and mark it enginekey:cache-keyed.
var EngineKey = &analysis.Analyzer{
	Name: "enginekey",
	Doc:  "require new engine registrations to assert result-equivalence or opt out of result-cache sharing",
	Run:  runEngineKey,
}

func runEngineKey(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		markers := markerLines(pass, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Engines" || fd.Body == nil || !returnsEngineRegistry(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				if _, isMap := pass.TypeOf(lit).Underlying().(*types.Map); !isMap {
					return true
				}
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					basic, ok := kv.Key.(*ast.BasicLit)
					if !ok {
						continue
					}
					name, err := strconv.Unquote(basic.Value)
					if err != nil || engineBaseline[name] {
						continue
					}
					line := pass.Fset.Position(kv.Pos()).Line
					if markers[line] {
						continue
					}
					pass.Reportf(kv.Pos(), "engine %q is not in the asserted-equivalent baseline: add it to the cross-engine equivalence suite and mark the entry `// enginekey:equivalent`, or extend the server result-cache key with an engine component and mark it `// enginekey:cache-keyed` — otherwise the cache would serve another engine's results for it", name)
				}
				return true
			})
		}
	}
	return nil, nil
}

// returnsEngineRegistry reports whether fn's single result is a
// map[string]F for some function type F — the engine registry shape.
func returnsEngineRegistry(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	results := obj.Signature().Results()
	if results.Len() != 1 {
		return false
	}
	m, ok := results.At(0).Type().Underlying().(*types.Map)
	if !ok || !types.Identical(m.Key(), types.Typ[types.String]) {
		return false
	}
	_, isFunc := m.Elem().Underlying().(*types.Signature)
	return isFunc
}

// markerLines collects the lines carrying an enginekey marker comment.
func markerLines(pass *analysis.Pass, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if containsMarker(text) {
				lines[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

func containsMarker(text string) bool {
	return strings.Contains(text, "enginekey:equivalent") ||
		strings.Contains(text, "enginekey:cache-keyed")
}
