// Package roundctx is the roundctx fixture: engine-shaped functions
// (returning (*sim.Result, error)) whose round loops and error paths
// drift from the cancellation contract, next to a compliant engine.
// A non-polling engine passes every equivalence test — results are
// unaffected — and only misbehaves when a caller abandons a live run,
// which is why the invariant needs a static check.
package roundctx

import (
	"context"
	"errors"
	"fmt"

	"eds/internal/graph"
	"eds/internal/sim"
)

// ErrCanceled mirrors the shared wrapper an engine package would
// declare (the real one is sim.ErrCanceled).
var ErrCanceled = errors.New("roundctx fixture: run canceled")

// RunNoPoll advances rounds without ever consulting the context: once
// started it cannot be stopped, so server deadlines and client
// disconnects are silently ignored.
func RunNoPoll(ctx context.Context, g *graph.Graph, a sim.Algorithm) (*sim.Result, error) {
	res := &sim.Result{}
	for round := 0; round < 100; round++ { // want `never polls the run context`
		res.Rounds = round + 1
	}
	return res, nil
}

// RunRawError polls, but surfaces the naked context error: the other
// engines wrap ErrCanceled, so error parity across engines is broken.
func RunRawError(ctx context.Context, g *graph.Graph, a sim.Algorithm) (*sim.Result, error) {
	res := &sim.Result{}
	for round := 0; round < 100; round++ {
		if ctx.Err() != nil {
			return nil, ctx.Err() // want `raw context error returned`
		}
		res.Rounds = round + 1
	}
	return res, nil
}

// RunBadWrap wraps the context cause but forgets the shared sentinel,
// so errors.Is(err, sim.ErrCanceled) fails for this engine only.
func RunBadWrap(ctx context.Context, g *graph.Graph, a sim.Algorithm) (*sim.Result, error) {
	res := &sim.Result{}
	for round := 0; round < 100; round++ {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("stopped at round %d: %w", round, context.Cause(ctx)) // want `not ErrCanceled`
		}
		res.Rounds = round + 1
	}
	return res, nil
}

// RunCompliant is the lawful shape: poll every round, wrap both the
// shared sentinel and the context cause.
func RunCompliant(ctx context.Context, g *graph.Graph, a sim.Algorithm) (*sim.Result, error) {
	res := &sim.Result{}
	for round := 0; round < 100; round++ {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("%w: algorithm %q: %w", ErrCanceled, a.Name(), context.Cause(ctx))
		}
		res.Rounds = round + 1
	}
	return res, nil
}

// sumRounds is not engine-shaped: a plain round-counting loop in
// reporting code carries no cancellation obligation.
func sumRounds(traces []*sim.Result) int {
	total := 0
	for round := 0; round < len(traces); round++ {
		total += traces[round].Rounds
	}
	return total
}
