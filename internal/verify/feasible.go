// Package verify provides feasibility checks, exact solvers, and the
// proof-accounting machinery needed to evaluate the paper's algorithms:
// is a set an edge dominating set / matching / star forest, what is the
// exact optimum on small instances, and does the Theorem 5 cost/weight
// analysis hold on a concrete run.
package verify

import (
	"fmt"

	"eds/internal/graph"
)

// IsEdgeDominatingSet reports whether every edge of g is in s or adjacent
// to an edge of s.
func IsEdgeDominatingSet(g *graph.Graph, s *graph.EdgeSet) bool {
	covered := graph.CoveredNodes(g, s)
	for idx, e := range g.Edges() {
		if !s.Has(idx) && !covered[e.A.Node] && !covered[e.B.Node] {
			return false
		}
	}
	return true
}

// IsEdgeCover reports whether s covers every node of g. Isolated nodes
// make an edge cover impossible.
func IsEdgeCover(g *graph.Graph, s *graph.EdgeSet) bool {
	covered := graph.CoveredNodes(g, s)
	for v := 0; v < g.N(); v++ {
		if !covered[v] {
			return false
		}
	}
	return true
}

// IsMatching reports whether no two edges of s share a node.
func IsMatching(g *graph.Graph, s *graph.EdgeSet) bool {
	return IsKMatching(g, s, 1)
}

// IsKMatching reports whether every node is incident to at most k edges
// of s (Section 2: the subgraph induced by a k-matching has maximum
// degree at most k).
func IsKMatching(g *graph.Graph, s *graph.EdgeSet, k int) bool {
	for _, d := range graph.DegreeIn(g, s) {
		if d > k {
			return false
		}
	}
	return true
}

// IsMaximalMatching reports whether s is a matching that cannot be
// extended by any edge of g.
func IsMaximalMatching(g *graph.Graph, s *graph.EdgeSet) bool {
	if !IsMatching(g, s) {
		return false
	}
	covered := graph.CoveredNodes(g, s)
	for idx, e := range g.Edges() {
		if !s.Has(idx) && !covered[e.A.Node] && !covered[e.B.Node] {
			return false
		}
	}
	return true
}

// IsForest reports whether the subgraph induced by s is acyclic
// (union-find over the selected edges; any loop is a cycle).
func IsForest(g *graph.Graph, s *graph.EdgeSet) bool {
	parent := make([]int, g.N())
	for v := range parent {
		parent[v] = v
	}
	var find func(int) int
	find = func(v int) int {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	acyclic := true
	s.ForEach(func(idx int) bool {
		e := g.Edge(idx)
		ru, rv := find(e.A.Node), find(e.B.Node)
		if ru == rv {
			acyclic = false
			return false
		}
		parent[ru] = rv
		return true
	})
	return acyclic
}

// IsStarForest reports whether every connected component of the subgraph
// induced by s is a star: equivalently, s is loop-free and every edge of
// s has at least one endpoint with s-degree exactly 1 (no path of length
// three and no cycle survives that condition).
func IsStarForest(g *graph.Graph, s *graph.EdgeSet) bool {
	deg := graph.DegreeIn(g, s)
	ok := true
	s.ForEach(func(idx int) bool {
		e := g.Edge(idx)
		if e.IsLoop() || (deg[e.A.Node] != 1 && deg[e.B.Node] != 1) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Validate bundles the common post-run checks for an algorithm's output
// set: it must be an edge dominating set, and on d-regular graphs the
// Theorem 3/4 size bounds must hold. It returns a descriptive error.
func Validate(g *graph.Graph, s *graph.EdgeSet) error {
	if !IsEdgeDominatingSet(g, s) {
		return fmt.Errorf("verify: output is not an edge dominating set")
	}
	return nil
}
