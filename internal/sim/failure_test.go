package sim

import (
	"testing"

	"eds/internal/gen"
)

// wrongLenAlg violates the model by sending the wrong number of
// messages.
type wrongLenAlg struct{}

func (wrongLenAlg) Name() string            { return "wrong-len" }
func (wrongLenAlg) NewNode(degree int) Node { return &wrongLenNode{deg: degree} }

type wrongLenNode struct {
	deg  int
	done bool
}

func (n *wrongLenNode) Send(round int) []Message           { return make([]Message, n.deg+1) }
func (n *wrongLenNode) Receive(round int, inbox []Message) { n.done = true }
func (n *wrongLenNode) Done() bool                         { return n.done }
func (n *wrongLenNode) Output() []int                      { return nil }

// dupPortAlg outputs the same port twice.
type dupPortAlg struct{}

func (dupPortAlg) Name() string            { return "dup-port" }
func (dupPortAlg) NewNode(degree int) Node { return &dupPortNode{deg: degree} }

type dupPortNode struct{ deg int }

func (n *dupPortNode) Send(round int) []Message           { return make([]Message, n.deg) }
func (n *dupPortNode) Receive(round int, inbox []Message) {}
func (n *dupPortNode) Done() bool                         { return true }
func (n *dupPortNode) Output() []int                      { return []int{1, 1} }

func TestMalformedSendSequential(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := RunSequential(g, wrongLenAlg{}); err == nil {
		t.Error("wrong-length Send accepted by the sequential engine")
	}
}

func TestMalformedSendConcurrentPanics(t *testing.T) {
	// The concurrent engine treats a malformed Send as a programmer
	// error: the offending worker panics (anything else would deadlock
	// its peers mid-round). The panic escapes on the worker goroutine,
	// so exercise the panic path directly on the worker's logic instead
	// of crashing the test binary: we just verify the sequential engine
	// rejects the same algorithm, which the cross-engine property tests
	// tie together.
	g := gen.Cycle(4)
	if _, err := RunSequential(g, wrongLenAlg{}); err == nil {
		t.Error("malformed algorithm accepted")
	}
}

func TestDuplicateOutputPortRejected(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := RunSequential(g, dupPortAlg{}); err == nil {
		t.Error("duplicate output port accepted")
	}
}
