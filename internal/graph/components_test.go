package graph

import (
	"testing"
)

func TestComponents(t *testing.T) {
	tests := []struct {
		name  string
		g     *Graph
		count int
		same  [][2]int // node pairs in the same component
		diff  [][2]int
	}{
		{
			name:  "two triangles",
			g:     MustFromUndirected(6, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}),
			count: 2,
			same:  [][2]int{{0, 2}, {3, 5}},
			diff:  [][2]int{{0, 3}, {2, 4}},
		},
		{
			name:  "isolated nodes",
			g:     MustFromUndirected(4, [][2]int{{1, 2}}),
			count: 3,
			same:  [][2]int{{1, 2}},
			diff:  [][2]int{{0, 3}, {0, 1}},
		},
		{
			name:  "path",
			g:     MustFromUndirected(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}),
			count: 1,
			same:  [][2]int{{0, 3}},
		},
		{
			name:  "empty",
			g:     MustFromUndirected(0, nil),
			count: 0,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			ids, count := Components(tc.g)
			if count != tc.count {
				t.Fatalf("count = %d, want %d", count, tc.count)
			}
			for _, p := range tc.same {
				if ids[p[0]] != ids[p[1]] {
					t.Errorf("nodes %d and %d in different components", p[0], p[1])
				}
			}
			for _, p := range tc.diff {
				if ids[p[0]] == ids[p[1]] {
					t.Errorf("nodes %d and %d in the same component", p[0], p[1])
				}
			}
			if (count <= 1) != Connected(tc.g) {
				t.Error("Connected disagrees with Components")
			}
		})
	}
}

func TestComponentsWithLoops(t *testing.T) {
	b := NewBuilder(2)
	b.MustConnect(0, 1, 0, 2) // undirected loop at 0
	b.MustConnect(1, 1, 1, 1) // directed loop at 1
	g := b.MustBuild()
	_, count := Components(g)
	if count != 2 {
		t.Errorf("count = %d, want 2 (loops do not connect anything)", count)
	}
}
