package cluster

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func newTestCluster(t *testing.T, self string, peers []string, mutate func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{Self: self, Peers: peers}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1"}
	if _, err := New(Config{Self: "", Peers: peers}); err == nil {
		t.Error("empty Self accepted")
	}
	if _, err := New(Config{Self: "http://a:1"}); err == nil {
		t.Error("empty Peers accepted")
	}
	if _, err := New(Config{Self: "http://c:1", Peers: peers}); err == nil {
		t.Error("Self outside Peers accepted")
	}
	if _, err := New(Config{Self: "http://a:1", Peers: []string{"http://a:1", "nonsense"}}); err == nil {
		t.Error("relative peer URL accepted")
	}
	if _, err := New(Config{Self: "http://a:1", Peers: []string{"http://a:1", "http://b:1", "http://b:1"}}); err == nil {
		t.Error("duplicate peer accepted")
	}
	// Trailing slashes normalise away instead of splitting identity.
	c := newTestCluster(t, "http://a:1/", []string{"http://a:1", "http://b:1/"}, nil)
	if c.Size() != 2 {
		t.Errorf("Size = %d, want 2", c.Size())
	}
}

func digestOf(s string) []byte {
	d := sha256.Sum256([]byte(s))
	return d[:]
}

// TestRendezvousDeterministicAcrossReplicas pins the coordination-free
// ownership contract: every replica, given the same membership, assigns
// every digest to the same owner regardless of which replica asks.
func TestRendezvousDeterministicAcrossReplicas(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	clusters := make([]*Cluster, len(peers))
	for i, self := range peers {
		clusters[i] = newTestCluster(t, self, peers, nil)
	}
	for i := 0; i < 200; i++ {
		d := digestOf(fmt.Sprint("graph-", i))
		owner0, _ := clusters[0].Owner(d)
		for _, c := range clusters[1:] {
			owner, self := c.Owner(d)
			if owner != owner0 {
				t.Fatalf("digest %d: replica %s says owner %s, replica %s says %s",
					i, clusters[0].self, owner0, c.self, owner)
			}
			if self != (owner == c.self) {
				t.Fatalf("digest %d: self flag inconsistent with owner", i)
			}
		}
	}
}

// TestRendezvousBalanceAndMinimalReshuffle checks that ownership spreads
// across the fleet and that losing one replica only moves the digests it
// owned.
func TestRendezvousBalanceAndMinimalReshuffle(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	c := newTestCluster(t, peers[0], peers, nil)

	const n = 3000
	owned := map[string]int{}
	before := make([]string, n)
	for i := 0; i < n; i++ {
		owner, _ := c.Owner(digestOf(fmt.Sprint("graph-", i)))
		owned[owner]++
		before[i] = owner
	}
	for _, p := range peers {
		if owned[p] < n/6 {
			t.Errorf("replica %s owns %d of %d digests; distribution is badly skewed: %v", p, owned[p], n, owned)
		}
	}

	// Peer b goes down: its digests must move, everyone else's must not.
	c.peers["http://b:1"].markDown(errors.New("down"))
	for i := 0; i < n; i++ {
		after, _ := c.Owner(digestOf(fmt.Sprint("graph-", i)))
		if before[i] == "http://b:1" {
			if after == "http://b:1" {
				t.Fatalf("digest %d still owned by the down peer", i)
			}
		} else if after != before[i] {
			t.Fatalf("digest %d moved %s → %s although its owner stayed up", i, before[i], after)
		}
	}

	// All peers down: self owns everything (degradation, not error).
	c.peers["http://c:1"].markDown(errors.New("down"))
	for i := 0; i < 50; i++ {
		owner, self := c.Owner(digestOf(fmt.Sprint("graph-", i)))
		if !self || owner != c.self {
			t.Fatalf("digest %d: with all peers down owner = %s, want self", i, owner)
		}
	}
}

func TestFillRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// First attempt: kill the connection mid-request to force a
			// transport error, not an HTTP status.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("recorder not hijackable")
				return
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		if r.URL.Path != "/internal/v1/fill" {
			t.Errorf("path = %q", r.URL.Path)
		}
		if r.Header.Get("X-Eds-Peer") == "" || r.Header.Get("X-Request-ID") != "req-1" {
			t.Errorf("fill headers missing: peer=%q id=%q", r.Header.Get("X-Eds-Peer"), r.Header.Get("X-Request-ID"))
		}
		body, _ := io.ReadAll(r.Body)
		if string(body) != "nodes 1\n" {
			t.Errorf("body = %q", body)
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	c := newTestCluster(t, "http://self:1", []string{"http://self:1", ts.URL}, func(cfg *Config) {
		cfg.Backoff = time.Millisecond
	})
	resp, err := c.Fill(context.Background(), ts.URL, "req-1", "alg=auto", []byte("nodes 1\n"))
	if err != nil {
		t.Fatalf("Fill: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	out, _ := io.ReadAll(resp.Body)
	if string(out) != "ok" {
		t.Errorf("body = %q", out)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2 (one failure, one retry)", got)
	}
	if p := c.peers[strings.TrimSuffix(ts.URL, "/")]; !p.Ready() {
		t.Error("peer not marked ready after a successful fill")
	}
}

func TestFillUnreachableMarksPeerDown(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close() // connection refused from here on

	c := newTestCluster(t, "http://self:1", []string{"http://self:1", url}, func(cfg *Config) {
		cfg.Backoff = time.Millisecond
		cfg.MaxRetries = 2
	})
	_, err := c.Fill(context.Background(), url, "", "", []byte("x"))
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("err = %v, want ErrPeerUnavailable", err)
	}
	if c.peers[url].Ready() {
		t.Error("unreachable peer still marked ready")
	}
	if owner, self := c.Owner(digestOf("anything")); !self {
		t.Errorf("owner = %s after peer death, want self", owner)
	}
}

func TestFillDrainingOwnerIsUnavailable(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := newTestCluster(t, "http://self:1", []string{"http://self:1", ts.URL}, nil)
	_, err := c.Fill(context.Background(), ts.URL, "", "", nil)
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("err = %v, want ErrPeerUnavailable", err)
	}
	if c.peers[ts.URL].Ready() {
		t.Error("draining peer still marked ready")
	}
}

func TestFillDeterministicErrorIsRelayedNotRetried(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad graph"}`, http.StatusBadRequest)
	}))
	defer ts.Close()
	c := newTestCluster(t, "http://self:1", []string{"http://self:1", ts.URL}, nil)
	resp, err := c.Fill(context.Background(), ts.URL, "", "", nil)
	if err != nil {
		t.Fatalf("Fill: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400 relayed", resp.StatusCode)
	}
	if calls.Load() != 1 {
		t.Errorf("HTTP error retried: %d calls", calls.Load())
	}
	if !c.peers[ts.URL].Ready() {
		t.Error("peer marked down for a deterministic client error")
	}
}

// TestHealthProbeFlipsReadiness drives the active probe loop: a peer
// answering /readyz 503 is excluded from ownership and re-included when
// it recovers.
func TestHealthProbeFlipsReadiness(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %q, want /readyz", r.URL.Path)
		}
		if ready.Load() {
			w.Write([]byte("ok"))
		} else {
			http.Error(w, "draining", http.StatusServiceUnavailable)
		}
	}))
	defer ts.Close()

	c := newTestCluster(t, "http://self:1", []string{"http://self:1", ts.URL}, func(cfg *Config) {
		cfg.HealthInterval = 5 * time.Millisecond
	})
	c.Start()
	defer c.Stop()

	waitFor(t, func() bool { return c.peers[ts.URL].Ready() })
	ready.Store(false)
	waitFor(t, func() bool { return !c.peers[ts.URL].Ready() })
	st := c.Snapshot()
	if len(st) != 1 || st[0].Ready || st[0].LastErr == "" {
		t.Errorf("snapshot = %+v, want one unready peer with a cause", st)
	}
	ready.Store(true)
	waitFor(t, func() bool { return c.peers[ts.URL].Ready() })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
