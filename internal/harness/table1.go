// Package harness regenerates the paper's evaluation artifacts: Table 1
// (tight approximation ratios, measured as exact rationals on the
// adversarial constructions), the round-complexity series, and the
// random-graph comparison studies used in EXPERIMENTS.md.
package harness

import (
	"fmt"
	"strings"

	"eds/internal/core"
	"eds/internal/graph"
	"eds/internal/lowerbound"
	"eds/internal/ratio"
	"eds/internal/sim"
	"eds/internal/verify"
)

// Table1Row is one regenerated row of Table 1: an algorithm executed on
// the matching adversarial instance, with the measured ratio compared to
// the paper's closed-form bound.
type Table1Row struct {
	// Family is "d-regular" or "max degree Δ".
	Family string
	// Param is d or Δ.
	Param int
	// Algorithm is the name of the executed algorithm.
	Algorithm string
	// Nodes and Edges describe the adversarial instance.
	Nodes, Edges int
	// SizeD is the algorithm's output size, SizeOpt the instance optimum.
	SizeD, SizeOpt int
	// Measured = SizeD/SizeOpt exactly; Paper is the Table 1 bound.
	Measured, Paper ratio.R
	// Tight reports Measured == Paper.
	Tight bool
	// Rounds is the observed round count; ScheduledRounds the algorithm's
	// declared schedule length.
	Rounds, ScheduledRounds int
	// Messages is the total number of non-empty messages.
	Messages int
}

// runRow executes alg on the instance and assembles a row.
func runRow(family string, param int, g *graph.Graph, opt *graph.EdgeSet,
	alg sim.Algorithm, scheduled int, paper ratio.R) (Table1Row, error) {
	d, res, err := sim.RunToEdgeSet(g, alg)
	if err != nil {
		return Table1Row{}, fmt.Errorf("harness: %s on %s d=%d: %w", alg.Name(), family, param, err)
	}
	if !verify.IsEdgeDominatingSet(g, d) {
		return Table1Row{}, fmt.Errorf("harness: %s on %s d=%d: output infeasible", alg.Name(), family, param)
	}
	measured := ratio.New(int64(d.Count()), int64(opt.Count()))
	return Table1Row{
		Family:          family,
		Param:           param,
		Algorithm:       alg.Name(),
		Nodes:           g.N(),
		Edges:           g.M(),
		SizeD:           d.Count(),
		SizeOpt:         opt.Count(),
		Measured:        measured,
		Paper:           paper,
		Tight:           measured.Equal(paper),
		Rounds:          res.Rounds,
		ScheduledRounds: scheduled,
		Messages:        res.Messages,
	}, nil
}

// EvenRegularRow reproduces the "d even" row of Table 1 for one d:
// Theorem 3's algorithm on the Theorem 1 construction.
func EvenRegularRow(d int) (Table1Row, error) {
	c, err := lowerbound.Even(d)
	if err != nil {
		return Table1Row{}, err
	}
	alg := core.PortOne{}
	return runRow("d-regular (even)", d, c.G, c.Opt, alg, alg.Rounds(d), ratio.EvenRegularBound(d))
}

// OddRegularRow reproduces the "d odd" row for one d: Theorem 4's
// algorithm on the Theorem 2 construction.
func OddRegularRow(d int) (Table1Row, error) {
	c, err := lowerbound.Odd(d)
	if err != nil {
		return Table1Row{}, err
	}
	alg := core.RegularOdd{}
	return runRow("d-regular (odd)", d, c.G, c.Opt, alg, alg.Rounds(d), ratio.OddRegularBound(d))
}

// DeltaOneRow reproduces the Δ = 1 row: the trivial algorithm on a
// perfect matching.
func DeltaOneRow(edges int) (Table1Row, error) {
	g := genPerfectMatching(edges)
	opt := graph.NewEdgeSet(g.M())
	for i := 0; i < g.M(); i++ {
		opt.Add(i)
	}
	alg := core.AllEdges{}
	return runRow("max degree Δ", 1, g, opt, alg, alg.Rounds(1), ratio.FromInt(1))
}

// genPerfectMatching avoids importing gen here (it would be fine, but the
// construction is two lines).
func genPerfectMatching(k int) *graph.Graph {
	edges := make([][2]int, 0, k)
	for i := 0; i < k; i++ {
		edges = append(edges, [2]int{2 * i, 2*i + 1})
	}
	return graph.MustFromUndirected(2*k, edges)
}

// BoundedDegreeRow reproduces the "max degree Δ" rows for Δ >= 2:
// Theorem 5's A(Δ) on the Corollary 1 instance (the Theorem 1 graph with
// d = 2k, k = ⌊Δ/2⌋).
func BoundedDegreeRow(delta int) (Table1Row, error) {
	if delta < 2 {
		return DeltaOneRow(8)
	}
	k := delta / 2
	c, err := lowerbound.Even(2 * k)
	if err != nil {
		return Table1Row{}, err
	}
	alg := core.NewGeneral(delta)
	return runRow("max degree Δ", delta, c.G, c.Opt, alg, alg.Rounds(delta), ratio.BoundedDegreeBound(delta))
}

// Table1 regenerates the full table for d = 2..maxEven (even),
// d = 1..maxOdd (odd), Δ = 1..maxDelta.
func Table1(maxEven, maxOdd, maxDelta int) ([]Table1Row, error) {
	var rows []Table1Row
	for d := 2; d <= maxEven; d += 2 {
		row, err := EvenRegularRow(d)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for d := 1; d <= maxOdd; d += 2 {
		row, err := OddRegularRow(d)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for delta := 1; delta <= maxDelta; delta++ {
		row, err := BoundedDegreeRow(delta)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders rows as an aligned text table mirroring the
// paper's Table 1, with the measured columns added.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %5s  %-22s %6s %6s %5s %5s  %-9s %-9s %-6s %7s %9s\n",
		"family", "param", "algorithm", "nodes", "edges", "|D|", "|D*|",
		"measured", "paper", "tight", "rounds", "messages")
	sb.WriteString(strings.Repeat("-", 122) + "\n")
	for _, r := range rows {
		tight := "no"
		if r.Tight {
			tight = "yes"
		}
		fmt.Fprintf(&sb, "%-18s %5d  %-22s %6d %6d %5d %5d  %-9s %-9s %-6s %7d %9d\n",
			r.Family, r.Param, r.Algorithm, r.Nodes, r.Edges, r.SizeD, r.SizeOpt,
			r.Measured.String(), r.Paper.String(), tight, r.Rounds, r.Messages)
	}
	return sb.String()
}
