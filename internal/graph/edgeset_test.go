package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEdgeSetBasics(t *testing.T) {
	s := NewEdgeSet(130) // spans three words
	for _, i := range []int{0, 63, 64, 127, 129} {
		s.Add(i)
	}
	if got, want := s.Count(), 5; got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	if !s.Has(64) || s.Has(1) {
		t.Error("membership wrong after Add")
	}
	s.Remove(64)
	if s.Has(64) {
		t.Error("Has(64) after Remove")
	}
	got := s.Indices()
	want := []int{0, 63, 127, 129}
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

func TestEdgeSetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range index")
		}
	}()
	NewEdgeSet(10).Add(10)
}

func TestEdgeSetAlgebraQuick(t *testing.T) {
	// Union/Subtract/Intersect agree with per-element semantics.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(200)
		a, b := NewEdgeSet(m), NewEdgeSet(m)
		inA := make([]bool, m)
		inB := make([]bool, m)
		for i := 0; i < m; i++ {
			if rng.Intn(2) == 0 {
				a.Add(i)
				inA[i] = true
			}
			if rng.Intn(2) == 0 {
				b.Add(i)
				inB[i] = true
			}
		}
		u := a.Clone()
		u.Union(b)
		d := a.Clone()
		d.Subtract(b)
		x := a.Clone()
		x.Intersect(b)
		for i := 0; i < m; i++ {
			if u.Has(i) != (inA[i] || inB[i]) {
				return false
			}
			if d.Has(i) != (inA[i] && !inB[i]) {
				return false
			}
			if x.Has(i) != (inA[i] && inB[i]) {
				return false
			}
		}
		if a.Disjoint(b) != x.Empty() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCoveredNodesAndDegreeIn(t *testing.T) {
	g := MustFromUndirected(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	s := NewEdgeSet(g.M())
	s.Add(g.EdgeAt(0, g.PortBetween(0, 1)))
	s.Add(g.EdgeAt(1, g.PortBetween(1, 2)))
	covered := CoveredNodes(g, s)
	wantCovered := []bool{true, true, true, false, false}
	for v, want := range wantCovered {
		if covered[v] != want {
			t.Errorf("covered[%d] = %v, want %v", v, covered[v], want)
		}
	}
	deg := DegreeIn(g, s)
	wantDeg := []int{1, 2, 1, 0, 0}
	for v, want := range wantDeg {
		if deg[v] != want {
			t.Errorf("deg[%d] = %d, want %d", v, deg[v], want)
		}
	}
}

func TestEdgeSetFromPairs(t *testing.T) {
	g := MustFromUndirected(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	s, err := EdgeSetFromPairs(g, [][2]int{{1, 0}, {2, 3}})
	if err != nil {
		t.Fatalf("EdgeSetFromPairs: %v", err)
	}
	if got := s.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	pairs := SortedPairs(g, s)
	want := [][2]int{{0, 1}, {2, 3}}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("SortedPairs = %v, want %v", pairs, want)
		}
	}
	if _, err := EdgeSetFromPairs(g, [][2]int{{0, 3}}); err == nil {
		t.Error("missing edge accepted")
	}
}

func TestEdgeSetForEachEarlyStop(t *testing.T) {
	s := NewEdgeSetOf(100, 3, 50, 80)
	var visited []int
	s.ForEach(func(i int) bool {
		visited = append(visited, i)
		return len(visited) < 2
	})
	if len(visited) != 2 || visited[0] != 3 || visited[1] != 50 {
		t.Errorf("visited = %v, want [3 50]", visited)
	}
}
