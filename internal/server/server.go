// Package server implements edsd, the HTTP serving layer over the
// simulation engines: clients POST a port-numbered graph in the
// internal/graph wire format together with an algorithm/engine spec and
// receive the execution's statistics and solution summary as JSON.
//
// The server is built for sustained traffic, not one-shot runs:
//
//   - admission control: a bounded worker pool with a bounded wait
//     queue; requests beyond both bounds are rejected immediately with
//     429 instead of piling up;
//   - per-request deadlines: every run carries a context with a
//     deadline (client-chosen via ?timeout=, capped by the server); the
//     engines poll it at round barriers (sim.WithContext), so a
//     timed-out run stops computing and returns 504;
//   - result cache: an LRU keyed by the canonical graph digest plus the
//     resolved algorithm, so identical requests are served byte-for-byte
//     identically without re-running the engine;
//   - request batching: identical in-flight requests coalesce onto one
//     engine run (singleflight), and an optional batch window delays the
//     leader so identical requests arriving within the window join the
//     same run instead of racing it;
//   - cluster tier: with a cluster.Cluster configured, each graph digest
//     is owned by exactly one replica (rendezvous hashing); non-owners
//     fetch results over POST /internal/v1/fill instead of recomputing,
//     and degrade to local compute when the owner is unreachable;
//   - streaming: ?edges=1&stream=1 answers in chunked NDJSON (a summary
//     line followed by one line per edge), so a million-edge dominating
//     set never materialises as one JSON body in memory;
//   - input hardening: request bodies are size-capped (413), and the
//     graph decoder enforces node/port limits (graph.ReadGraphLimits)
//     so hostile inputs cannot OOM the process — on the public endpoint
//     and the internal fill endpoint alike;
//   - observability: X-Request-ID generation/propagation with
//     structured request logging (log/slog), /livez for liveness,
//     /readyz for readiness, /statsz for request counts, cache hit
//     rate, queue depth, per-algorithm latency histograms, per-peer
//     fill counters, batch sizes, and stream bytes;
//   - graceful shutdown: StartDraining flips /readyz to 503 (telling
//     load balancers and cluster peers to stop routing here) and
//     rejects new runs while in-flight runs complete (http.Server's
//     Shutdown supplies the connection-level drain).
//
// Endpoints:
//
//	POST /v1/run?alg=S&engine=E&shards=P&timeout=D&edges=1&stream=1   body: graph
//	POST /internal/v1/fill?...   same contract, peer-to-peer (never re-forwards)
//	GET  /healthz   (readiness, kept for compatibility)
//	GET  /livez
//	GET  /readyz
//	GET  /statsz
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"eds/internal/cluster"
	"eds/internal/graph"
	"eds/internal/ratio"
	"eds/internal/sim"
	"eds/internal/spec"
	"eds/internal/verify"
)

// StatusClientClosedRequest is the de-facto status (nginx's 499) for a
// run abandoned because the client went away before it finished.
const StatusClientClosedRequest = 499

// Config tunes the server. Zero fields take the documented defaults.
type Config struct {
	// Workers is the number of runs executed concurrently (default:
	// GOMAXPROCS).
	Workers int
	// QueueDepth is the number of admitted requests allowed to wait for
	// a worker beyond the Workers in flight (default 64). Requests
	// beyond Workers+QueueDepth are answered 429.
	QueueDepth int
	// MaxBodyBytes caps the request body; larger bodies get 413
	// (default 32 MiB).
	MaxBodyBytes int64
	// Limits bounds the decoded graph; inputs beyond it get 413
	// (default graph.DefaultLimits).
	Limits graph.Limits
	// DefaultTimeout is the per-request deadline when the client sends
	// no ?timeout= (default 30s). MaxTimeout caps what a client may ask
	// for (default 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// CacheEntries is the LRU result-cache capacity (default 256; < 0
	// disables the cache).
	CacheEntries int
	// BatchWindow is how long the leader of a fresh cache miss waits
	// before starting its engine run, so identical requests arriving
	// within the window coalesce onto that one run instead of finding
	// the cache still cold a moment apart. 0 (the default) disables the
	// wait; duplicates arriving while a run is in flight still coalesce
	// through the singleflight. With a cluster configured the window
	// batches fleet-wide: every replica routes a digest's misses to the
	// same owner, whose window collects them all.
	BatchWindow time.Duration
	// Cluster, when non-nil, enables the multi-replica tier: graph
	// digests are owned by exactly one replica, non-owners fill from the
	// owner, and this server answers /internal/v1/fill for its peers.
	Cluster *cluster.Cluster
	// Logger receives one structured line per request (default:
	// discard). Health-probe endpoints log at Debug, everything else at
	// Info.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof's handlers under /debug/pprof/.
	// Off by default: the profiling endpoints expose heap contents and
	// let any client start CPU profiles, so they are opt-in (edsd's
	// -pprof flag) and belong behind the operational port only.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.BatchWindow < 0 {
		c.BatchWindow = 0
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Server serves the edsd API. Create one with New and mount Handler on
// an http.Server (cmd/edsd) or an httptest.Server (tests).
type Server struct {
	cfg     Config
	sem     chan struct{} // worker slots
	queue   chan struct{} // bounded wait queue
	cache   *resultCache
	flights *flightGroup
	st      *stats
	mux     *http.ServeMux
	root    http.Handler // mux wrapped in the request-ID/logging middleware

	draining chan struct{} // closed by StartDraining

	// runEngine executes a parsed request on an engine and reports the
	// run's setup/rounds/outputs wall-time split; tests substitute it to
	// script slow or failing runs deterministically.
	runEngine func(ctx context.Context, engine string, shards int, g *graph.Graph, a sim.Algorithm) (*sim.Result, sim.Timings, error)
}

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.Workers),
		queue:     make(chan struct{}, cfg.QueueDepth),
		cache:     newResultCache(cfg.CacheEntries),
		flights:   newFlightGroup(),
		st:        newStats(),
		draining:  make(chan struct{}),
		runEngine: defaultRunEngine,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /internal/v1/fill", s.handleFill)
	s.mux.HandleFunc("GET /healthz", s.handleReadyz) // compatibility alias for readiness
	s.mux.HandleFunc("GET /livez", s.handleLivez)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	if cfg.EnablePprof {
		// Explicit mounts instead of the package's init-time
		// DefaultServeMux registration: the server never serves
		// DefaultServeMux, so importing net/http/pprof alone exposes
		// nothing — the endpoints exist exactly when this branch runs.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.root = s.instrument(s.mux)
	return s
}

// Handler returns the root handler for the edsd API: the endpoint mux
// wrapped in the request-ID and logging middleware.
func (s *Server) Handler() http.Handler { return s.root }

// StartDraining puts the server into shutdown mode: /readyz (and its
// /healthz alias) turns 503 — telling load balancers and cluster peers
// to stop routing here — and new runs are rejected with 503, while runs
// already admitted keep executing. /livez stays 200: the process is
// healthy, just leaving. Safe to call more than once. Pair it with
// http.Server.Shutdown, which waits for the in-flight handlers to
// return.
func (s *Server) StartDraining() {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

func defaultRunEngine(ctx context.Context, engine string, shards int, g *graph.Graph, a sim.Algorithm) (*sim.Result, sim.Timings, error) {
	var split sim.Timings
	opts := []sim.Option{sim.WithContext(ctx), sim.WithShards(shards), sim.WithTimings(&split)}
	if engine == "auto" {
		res, err := sim.RunAuto(g, a, opts...)
		return res, split, err
	}
	run, ok := sim.Engines()[engine]
	if !ok {
		return nil, split, fmt.Errorf("server: unknown engine %q", engine)
	}
	res, err := run(g, a, opts...)
	return res, split, err
}

// RunResponse is the JSON body of a successful POST /v1/run. In
// streaming mode it is the first NDJSON line, with EdgeList omitted and
// Edges announcing how many edge lines follow.
type RunResponse struct {
	Algorithm  string   `json:"algorithm"`
	N          int      `json:"n"`
	M          int      `json:"m"`
	Rounds     int      `json:"rounds"`
	Messages   int      `json:"messages"`
	Edges      int      `json:"edges"`
	Dominating bool     `json:"dominating"`
	Bound      string   `json:"bound,omitempty"`
	EdgeList   [][2]int `json:"edge_list,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	body, _ := json.Marshal(errorResponse{Error: fmt.Sprintf(format, args...)})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(body, '\n'))
	s.st.recordStatus(code)
}

// runRequest is one parsed and validated /v1/run request.
type runRequest struct {
	algSpec      string
	engine       string
	shards       int
	timeout      time.Duration
	includeEdges bool
	stream       bool
}

func (s *Server) parseRunRequest(r *http.Request) (runRequest, error) {
	q := r.URL.Query()
	req := runRequest{
		algSpec: q.Get("alg"),
		engine:  q.Get("engine"),
		timeout: s.cfg.DefaultTimeout,
	}
	if req.algSpec == "" {
		req.algSpec = "auto"
	}
	if req.engine == "" {
		req.engine = "auto"
	}
	if _, ok := sim.Engines()[req.engine]; !ok && req.engine != "auto" {
		return req, fmt.Errorf("unknown engine %q", req.engine)
	}
	if v := q.Get("shards"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil {
			return req, fmt.Errorf("bad shards %q: %v", v, err)
		}
		req.shards = p
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return req, fmt.Errorf("bad timeout %q: %v", v, err)
		}
		if d <= 0 {
			return req, fmt.Errorf("timeout %q must be positive", v)
		}
		req.timeout = d
	}
	if req.timeout > s.cfg.MaxTimeout {
		req.timeout = s.cfg.MaxTimeout
	}
	if v := q.Get("edges"); v != "" && v != "0" && v != "false" {
		req.includeEdges = true
	}
	if v := q.Get("stream"); v != "" && v != "0" && v != "false" {
		if !req.includeEdges {
			return req, errors.New("stream=1 requires edges=1 (only the edge list is worth streaming)")
		}
		req.stream = true
	}
	return req, nil
}

// The result cache is probed at two levels:
//
//	raw key       — sha256 of the request body bytes plus the literal
//	                ?alg= spec and response shape. Probed before any
//	                decoding, so a byte-identical replay is served with a
//	                bounded allocation cost independent of graph size
//	                (the alloc regression test pins the budget).
//	canonical key — graph.Digest of the decoded graph's flat structure
//	                plus the resolved algorithm name. Two wire forms of
//	                the same graph (comments, whitespace, reordered conn
//	                lines) decode to identical port-offset and routing
//	                arrays, so they collide here as they should, as do
//	                alg=auto and its explicit resolution. The same digest
//	                is what the cluster tier rendezvous-hashes to pick the
//	                graph's owner, so cache identity and ownership can
//	                never disagree.
//
// Engine and shard count are deliberately excluded from both keys: every
// engine returns identical results, which the cross-engine equivalence
// suite enforces.
func cacheKey(sum [sha256.Size]byte, algName string, includeEdges bool) string {
	return fmt.Sprintf("%x|%s|%v", sum, algName, includeEdges)
}

// acquire admits the request into the worker pool, waiting in the
// bounded queue if all workers are busy. It returns a release function,
// or an HTTP status when the request cannot run: 429 when the queue is
// full, 504/499 when the deadline expires or the client leaves while
// queued.
func (s *Server) acquire(ctx context.Context) (release func(), status int) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0
	default:
	}
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, http.StatusTooManyRequests
	}
	defer func() { <-s.queue }()
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0
	case <-ctx.Done():
		if errors.Is(context.Cause(ctx), context.DeadlineExceeded) {
			return nil, http.StatusGatewayTimeout
		}
		return nil, StatusClientClosedRequest
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.serveRun(w, r, false)
}

// handleFill is the peer-to-peer side of the cluster tier: a non-owner
// replica that missed its cache asks this replica — the digest's owner —
// for the result. The handler is deliberately the same code path as the
// public endpoint minus routing: the same body cap, the same
// graph.ReadGraphLimits, the same cache keys, the same admission queue
// and flight group (so fills, local clients, and the batch window all
// coalesce onto one engine run). It never forwards: whatever this
// replica believes about ownership, a fill is answered locally, which
// makes routing loops impossible even when replicas' health views
// disagree.
func (s *Server) handleFill(w http.ResponseWriter, r *http.Request) {
	if peer := r.Header.Get("X-Eds-Peer"); peer != "" {
		s.st.recordFillServed(peer)
	}
	s.serveRun(w, r, true)
}

// serveRun is the shared request path. isFill marks a peer fill, which
// is never re-forwarded and may not stream.
func (s *Server) serveRun(w http.ResponseWriter, r *http.Request, isFill bool) {
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	req, err := s.parseRunRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.stream && isFill {
		// Streams are served by the replica the client is talking to
		// (their bodies are not cacheable, so ownership buys nothing);
		// peers have no business requesting one.
		s.writeError(w, http.StatusBadRequest, "stream=1 is not valid on the fill endpoint")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", s.cfg.MaxBodyBytes)
			return
		}
		s.writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}

	// First-level cache probe on the raw bytes: a byte-identical replay
	// is served without decoding or canonicalising anything. Streaming
	// requests bypass the cache — their value is exactly that no
	// complete body ever exists to cache.
	rawKey := cacheKey(sha256.Sum256(body), req.algSpec, req.includeEdges)
	if !req.stream {
		if cached, ok := s.cache.get(rawKey); ok {
			s.st.recordCache(true)
			s.serveCached(w, cached)
			return
		}
	}

	g, err := graph.ReadGraphLimits(bytes.NewReader(body), s.cfg.Limits)
	if err != nil {
		if errors.Is(err, graph.ErrTooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
			return
		}
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	alg, bound, err := spec.Algorithm(req.algSpec, g)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Second-level probe on the canonical structure: a different wire
	// form (or a different spec resolving to the same algorithm) of an
	// already-served graph hits here; the raw key is backfilled so the
	// next byte-identical replay takes the cheap path.
	digest := graph.Digest(g)
	key := cacheKey(digest, alg.Name(), req.includeEdges)
	if !req.stream {
		if cached, ok := s.cache.get(key); ok {
			s.st.recordCache(true)
			s.cache.put(rawKey, cached)
			s.serveCached(w, cached)
			return
		}
		s.st.recordCache(false)
	}

	// The deadline starts before admission: time spent waiting for a
	// worker, for the batch window, for an identical in-flight run, or
	// for the owner's fill response all counts against the request's
	// budget.
	ctx, cancel := context.WithTimeout(r.Context(), req.timeout)
	defer cancel()

	if req.stream {
		s.streamRun(ctx, w, req, g, alg, bound)
		return
	}

	// Cluster routing: a cache miss for a digest owned elsewhere is
	// filled from the owner instead of recomputed. Fills themselves
	// never re-forward, and any failure degrades to local compute.
	if s.cfg.Cluster != nil && !isFill {
		if owner, self := s.cfg.Cluster.Owner(digest[:]); !self {
			if s.forwardFill(ctx, w, r, owner, body, key, rawKey) {
				return
			}
			s.st.recordFallback(owner)
		}
	}

	s.serveLocal(ctx, w, req, g, alg, bound, key, rawKey)
}

// serveCached writes a cache hit.
func (s *Server) serveCached(w http.ResponseWriter, cached []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "hit")
	w.Write(cached)
	s.st.recordStatus(http.StatusOK)
}

// forwardFill asks the owner replica for this request's result and
// relays the answer. It reports whether the response was written; false
// means the owner was unavailable and the caller must compute locally.
func (s *Server) forwardFill(ctx context.Context, w http.ResponseWriter, r *http.Request, owner string, body []byte, key, rawKey string) bool {
	s.st.recordFillSent(owner)
	resp, err := s.cfg.Cluster.Fill(ctx, owner, requestIDFrom(r.Context()), r.URL.RawQuery, body)
	if err != nil {
		s.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "fill fallback",
			slog.String("id", requestIDFrom(r.Context())),
			slog.String("owner", owner),
			slog.String("cause", err.Error()))
		return false
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		s.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "fill fallback",
			slog.String("id", requestIDFrom(r.Context())),
			slog.String("owner", owner),
			slog.String("cause", "reading fill body: "+err.Error()))
		return false
	}
	s.st.recordFillRelayed(owner)
	if resp.StatusCode == http.StatusOK {
		// The owner's answer becomes a local cache entry under both
		// keys, so this replica serves every repeat itself — the
		// groupcache property: one compute, N caches.
		s.cache.put(key, respBody)
		s.cache.put(rawKey, respBody)
	}
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.Header().Set("X-Cache", "fill")
	w.Header().Set("X-Eds-Owner", owner)
	if oc := resp.Header.Get("X-Cache"); oc != "" {
		w.Header().Set("X-Fill-Cache", oc)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(respBody)
	s.st.recordStatus(resp.StatusCode)
	return true
}

// serveLocal runs the request on this replica, coalescing identical
// requests through the flight group.
//
// Singleflight on the cache key: the first request for this exact
// graph/algorithm/shape leads and runs the engine; duplicates that
// arrive while it is in flight wait for its outcome instead of
// occupying worker slots of their own. Followers whose leader ended
// privately (canceled, timed out, not admitted) loop and take the
// lead themselves.
func (s *Server) serveLocal(ctx context.Context, w http.ResponseWriter, req runRequest, g *graph.Graph, alg sim.Algorithm, bound *ratio.R, key, rawKey string) {
	for {
		f, leader := s.flights.join(key)
		if leader {
			s.leadRun(ctx, w, req, g, alg, bound, key, rawKey, f)
			return
		}
		select {
		case <-f.done:
			res := f.res
			if res.code == 0 {
				continue
			}
			s.st.recordCoalesced()
			if res.code == http.StatusOK {
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("X-Cache", "coalesced")
				w.Write(res.body)
				s.st.recordStatus(http.StatusOK)
				return
			}
			s.writeError(w, res.code, "%s", res.msg)
			return
		case <-ctx.Done():
			if errors.Is(context.Cause(ctx), context.DeadlineExceeded) {
				s.writeError(w, http.StatusGatewayTimeout, "request timed out waiting for an identical in-flight run")
				return
			}
			s.writeError(w, StatusClientClosedRequest, "client canceled while waiting for an identical in-flight run")
			return
		}
	}
}

// leadRun executes a run as the flight leader: it owes the flight
// exactly one finish on every exit path. Outcomes that depend only on
// the graph and algorithm (success, round limit, malformed send) are
// published for the followers; outcomes private to this request's
// budget (deadline, client gone, admission failure) publish a retry
// marker instead.
func (s *Server) leadRun(ctx context.Context, w http.ResponseWriter, req runRequest, g *graph.Graph, alg sim.Algorithm, bound *ratio.R, key, rawKey string, f *flight) {
	// The batch window: a fresh leader waits briefly before running, so
	// identical requests that are about to arrive — from local clients
	// or, via owner routing, from every replica in the fleet — join this
	// flight instead of finding a cold cache a moment apart. The wait
	// spends the leader's own deadline budget; expiry is a private
	// outcome, so waiting followers retry with their own budgets.
	if s.cfg.BatchWindow > 0 {
		t := time.NewTimer(s.cfg.BatchWindow)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			s.flights.finish(key, f, flightResult{})
			if errors.Is(context.Cause(ctx), context.DeadlineExceeded) {
				s.writeError(w, http.StatusGatewayTimeout, "request timed out in the batch window")
				return
			}
			s.writeError(w, StatusClientClosedRequest, "client canceled in the batch window")
			return
		}
	}

	release, code := s.acquire(ctx)
	if code != 0 {
		s.flights.finish(key, f, flightResult{})
		s.writeError(w, code, "request not admitted (%d workers busy, queue of %d full or deadline passed)",
			s.cfg.Workers, s.cfg.QueueDepth)
		return
	}
	defer release()

	start := time.Now()
	res, split, err := s.runEngine(ctx, req.engine, req.shards, g, alg)
	if err != nil {
		if errors.Is(err, sim.ErrCanceled) {
			s.flights.finish(key, f, flightResult{})
			if errors.Is(err, context.DeadlineExceeded) {
				s.writeError(w, http.StatusGatewayTimeout, "run exceeded its %s deadline", req.timeout)
				return
			}
			s.writeError(w, StatusClientClosedRequest, "client canceled the run")
			return
		}
		// Round limits, malformed algorithm behaviour: deterministic for
		// this graph and algorithm, so the followers share the failure.
		msg := err.Error()
		s.flights.finish(key, f, flightResult{code: http.StatusInternalServerError, msg: msg})
		s.writeError(w, http.StatusInternalServerError, "%s", msg)
		return
	}
	s.st.recordLatency(alg.Name(), time.Since(start))
	s.st.recordPhases(split)

	respBody, err := buildResponse(g, alg.Name(), bound, res, req.includeEdges)
	if err != nil {
		msg := err.Error()
		s.flights.finish(key, f, flightResult{code: http.StatusInternalServerError, msg: msg})
		s.writeError(w, http.StatusInternalServerError, "%s", msg)
		return
	}
	s.cache.put(key, respBody)
	s.cache.put(rawKey, respBody)
	s.flights.finish(key, f, flightResult{code: http.StatusOK, body: respBody})
	// The flight is closed to joiners once finish removed the key, so
	// its size — leader plus every coalesced follower and fill — is now
	// stable: that is this run's batch yield.
	s.st.recordBatch(f.size.Load())
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "miss")
	w.Write(respBody)
	s.st.recordStatus(http.StatusOK)
}

func buildResponse(g *graph.Graph, algName string, bound *ratio.R, res *sim.Result, includeEdges bool) ([]byte, error) {
	d, err := sim.EdgeSet(g, res.Outputs)
	if err != nil {
		return nil, fmt.Errorf("collecting edge set: %w", err)
	}
	resp := RunResponse{
		Algorithm:  algName,
		N:          g.N(),
		M:          g.M(),
		Rounds:     res.Rounds,
		Messages:   res.Messages,
		Edges:      d.Count(),
		Dominating: verify.IsEdgeDominatingSet(g, d),
	}
	if bound != nil {
		resp.Bound = bound.String()
	}
	if includeEdges {
		resp.EdgeList = make([][2]int, 0, d.Count())
		for _, idx := range d.Indices() {
			e := g.Edge(idx)
			resp.EdgeList = append(resp.EdgeList, [2]int{e.U(), e.V()})
		}
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// handleLivez is the liveness probe: 200 for as long as the process can
// serve HTTP at all, draining included. Restart-deciders watch this;
// routing-deciders watch /readyz.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("ok\n"))
}

// handleReadyz is the readiness probe: 200 while the server accepts new
// runs, 503 once StartDraining flipped it. Load balancers and cluster
// peers (the health prober in internal/cluster) key routing off this,
// so a draining replica stops receiving fills before it starts
// rejecting them.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// statszResponse is the JSON body of GET /statsz.
type statszResponse struct {
	Requests struct {
		Total    int64            `json:"total"`
		ByStatus map[string]int64 `json:"by_status"`
	} `json:"requests"`
	Cache struct {
		Hits      int64   `json:"hits"`
		Misses    int64   `json:"misses"`
		HitRate   float64 `json:"hit_rate"`
		Size      int     `json:"size"`
		Coalesced int64   `json:"coalesced"`
	} `json:"cache"`
	Queue struct {
		Workers  int `json:"workers"`
		InFlight int `json:"in_flight"`
		Depth    int `json:"depth"`
		Capacity int `json:"capacity"`
	} `json:"queue"`
	LatencyMs map[string]histogramSnapshot `json:"latency_ms"`
	// EngineTime is the cumulative wall-time split of every completed
	// run, as reported by sim.WithTimings: setup (node construction and
	// state initialisation), the round loop, and output collection. The
	// ratio tells an operator whether the serving mix is dominated by run
	// construction or by protocol rounds; Runs counts this replica's
	// engine executions, which the cluster e2e suite sums fleet-wide to
	// prove each graph ran exactly once.
	EngineTime struct {
		Runs      int64   `json:"runs"`
		SetupMs   float64 `json:"setup_ms"`
		RoundsMs  float64 `json:"rounds_ms"`
		OutputsMs float64 `json:"outputs_ms"`
	} `json:"engine_time"`
	// Batch distributes how many requests each engine run served; with
	// a batch window (and, fleet-wide, owner routing) the mass moves off
	// the size-1 bucket.
	Batch struct {
		WindowMs float64           `json:"window_ms"`
		Sizes    histogramSnapshot `json:"sizes"`
	} `json:"batch"`
	// Stream counts chunked NDJSON responses and their body bytes.
	Stream struct {
		Responses int64             `json:"responses"`
		Bytes     int64             `json:"bytes"`
		Sizes     histogramSnapshot `json:"sizes"`
	} `json:"stream"`
	// Cluster reports the fleet view when the cluster tier is on: this
	// replica's identity plus, per peer, health and fill traffic in both
	// roles.
	Cluster  *clusterStatsz `json:"cluster,omitempty"`
	Draining bool           `json:"draining"`
}

type clusterStatsz struct {
	Self  string                    `json:"self"`
	Peers map[string]peerStatszView `json:"peers"`
}

type peerStatszView struct {
	Ready   bool   `json:"ready"`
	LastErr string `json:"last_err,omitempty"`
	peerCounters
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	var resp statszResponse
	snap := s.st.snapshot()
	resp.Requests.Total = snap.requests
	resp.Requests.ByStatus = snap.byStatus
	resp.Cache.Hits = snap.hits
	resp.Cache.Misses = snap.misses
	resp.Cache.Coalesced = snap.coalesced
	if snap.hits+snap.misses > 0 {
		resp.Cache.HitRate = float64(snap.hits) / float64(snap.hits+snap.misses)
	}
	resp.Cache.Size = s.cache.len()
	resp.Queue.Workers = s.cfg.Workers
	resp.Queue.InFlight = len(s.sem)
	resp.Queue.Depth = len(s.queue)
	resp.Queue.Capacity = s.cfg.QueueDepth
	resp.LatencyMs = snap.perAlg
	resp.EngineTime.Runs = snap.runs
	resp.EngineTime.SetupMs = float64(snap.phases.Setup) / float64(time.Millisecond)
	resp.EngineTime.RoundsMs = float64(snap.phases.Rounds) / float64(time.Millisecond)
	resp.EngineTime.OutputsMs = float64(snap.phases.Outputs) / float64(time.Millisecond)
	resp.Batch.WindowMs = float64(s.cfg.BatchWindow) / float64(time.Millisecond)
	resp.Batch.Sizes = snap.batchSizes
	resp.Stream.Responses = snap.streamResponses
	resp.Stream.Bytes = snap.streamBytes
	resp.Stream.Sizes = snap.streamSizes
	if c := s.cfg.Cluster; c != nil {
		cs := &clusterStatsz{Self: c.Self(), Peers: map[string]peerStatszView{}}
		for _, ps := range c.Snapshot() {
			cs.Peers[ps.URL] = peerStatszView{Ready: ps.Ready, LastErr: ps.LastErr, peerCounters: snap.peers[ps.URL]}
		}
		// Counters can exist for URLs the cluster no longer reports
		// (e.g. a fill served for a peer before its first probe); keep
		// them visible.
		for base, pc := range snap.peers {
			if _, ok := cs.Peers[base]; !ok {
				cs.Peers[base] = peerStatszView{Ready: false, peerCounters: pc}
			}
		}
		resp.Cluster = cs
	}
	resp.Draining = s.isDraining()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
