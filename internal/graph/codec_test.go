package graph

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCodecRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSimpleGraph(rng, 2+rng.Intn(12), rng.Float64())
		var sb strings.Builder
		if err := WriteTo(&sb, g); err != nil {
			return false
		}
		h, err := ReadGraph(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return g.Equal(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCodecRoundTripMultigraph(t *testing.T) {
	b := NewBuilder(2)
	b.MustConnect(0, 1, 1, 2)
	b.MustConnect(0, 2, 1, 1)
	b.MustConnect(0, 3, 0, 3) // directed loop
	b.MustConnect(1, 3, 1, 4) // undirected loop
	g := b.MustBuild()
	var sb strings.Builder
	if err := WriteTo(&sb, g); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	h, err := ReadGraph(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if !g.Equal(h) {
		t.Errorf("round trip changed the graph:\n%s", sb.String())
	}
}

func TestReadGraphErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"conn before nodes", "conn 0 1 1 1\nnodes 2"},
		{"duplicate nodes", "nodes 2\nnodes 3"},
		{"bad nodes", "nodes x"},
		{"negative nodes", "nodes -1"},
		{"short conn", "nodes 2\nconn 0 1 1"},
		{"out of range", "nodes 2\nconn 0 1 5 1"},
		{"double wire", "nodes 3\nconn 0 1 1 1\nconn 0 1 2 1"},
		{"hole in ports", "nodes 2\nconn 0 2 1 1"},
		{"unknown directive", "nodes 1\nfrobnicate"},
		{"nodes without count", "nodes"},
		{"nodes with trailing junk", "nodes 2 extra"},
		{"non-integer nodes", "nodes 2x"},
		{"non-integer conn field", "nodes 2\nconn 0 1 1 1x"},
		{"nodes overflow", "nodes 99999999999999999999"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadGraph(strings.NewReader(tc.input)); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

// TestReadGraphLimits checks the decode caps: a hostile input may not
// force allocation past MaxNodes or MaxPorts, and the rejection is
// distinguishable (ErrTooLarge) from a malformed input.
func TestReadGraphLimits(t *testing.T) {
	lim := Limits{MaxNodes: 4, MaxPorts: 6}
	t.Run("too many nodes", func(t *testing.T) {
		_, err := ReadGraphLimits(strings.NewReader("nodes 5\n"), lim)
		if !errors.Is(err, ErrTooLarge) {
			t.Errorf("err = %v, want ErrTooLarge", err)
		}
	})
	t.Run("huge port number", func(t *testing.T) {
		_, err := ReadGraphLimits(strings.NewReader("nodes 2\nconn 0 1000000 1 1\n"), lim)
		if !errors.Is(err, ErrTooLarge) {
			t.Errorf("err = %v, want ErrTooLarge", err)
		}
	})
	t.Run("port budget across lines", func(t *testing.T) {
		// Each line wires 2 ports; the fourth line exceeds the 6-port cap.
		input := "nodes 4\nconn 0 1 1 1\nconn 0 2 2 1\nconn 0 3 3 1\nconn 1 2 2 2\n"
		_, err := ReadGraphLimits(strings.NewReader(input), lim)
		if !errors.Is(err, ErrTooLarge) {
			t.Errorf("err = %v, want ErrTooLarge", err)
		}
	})
	t.Run("within limits", func(t *testing.T) {
		g, err := ReadGraphLimits(strings.NewReader("nodes 4\nconn 0 1 1 1\nconn 2 1 3 1\n"), lim)
		if err != nil {
			t.Fatalf("ReadGraphLimits: %v", err)
		}
		if g.N() != 4 || g.M() != 2 {
			t.Errorf("got n=%d m=%d", g.N(), g.M())
		}
	})
	t.Run("default limits reject absurd sizes", func(t *testing.T) {
		_, err := ReadGraph(strings.NewReader("nodes 1000000000\n"))
		if !errors.Is(err, ErrTooLarge) {
			t.Errorf("err = %v, want ErrTooLarge", err)
		}
	})
	t.Run("malformed is not ErrTooLarge", func(t *testing.T) {
		_, err := ReadGraphLimits(strings.NewReader("nodes x\n"), lim)
		if err == nil || errors.Is(err, ErrTooLarge) {
			t.Errorf("err = %v, want a plain parse error", err)
		}
	})
}

func TestReadGraphCommentsAndWhitespace(t *testing.T) {
	input := `
# a comment
nodes 2

conn 0 1 1 1
`
	g, err := ReadGraph(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if g.N() != 2 || g.M() != 1 {
		t.Errorf("got n=%d m=%d", g.N(), g.M())
	}
}
