// Package spec parses the textual graph and algorithm specifications
// shared by the command-line tools (edsrun) and the serving layer
// (internal/server, cmd/edsd): compact strings like "regular:n=20,d=3"
// or "general:7" that name a graph family or an algorithm with its
// parameters. Keeping the grammar in one package guarantees the CLI and
// the server accept exactly the same specs.
package spec

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"eds/internal/core"
	"eds/internal/gen"
	"eds/internal/graph"
	"eds/internal/lowerbound"
	"eds/internal/ratio"
	"eds/internal/sim"
)

// Graph builds the graph described by spec. For the lower-bound families
// it also returns the known optimal edge dominating set.
//
// Families: cycle:N, path:N, complete:N, hypercube:DIM, torus:RxC,
// petersen, matching:K, regular:n=N,d=D, bounded:n=N,delta=D, tree:N,
// evenlb:d=D, oddlb:d=D, file:PATH.
func Graph(spec string, seed int64) (*graph.Graph, *graph.EdgeSet, error) {
	name, arg, _ := strings.Cut(spec, ":")
	if name == "file" {
		f, err := os.Open(arg)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		g, err := graph.ReadGraph(f)
		if err != nil {
			return nil, nil, fmt.Errorf("reading %s: %w", arg, err)
		}
		return g, nil, nil
	}
	params, err := parseParams(arg)
	if err != nil {
		return nil, nil, fmt.Errorf("graph %q: %w", spec, err)
	}
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "cycle":
		return gen.Cycle(params.single(12)), nil, nil
	case "path":
		return gen.Path(params.single(12)), nil, nil
	case "complete":
		return gen.Complete(params.single(6)), nil, nil
	case "hypercube":
		return gen.Hypercube(params.single(4)), nil, nil
	case "torus":
		r, c := params.pair(4, 4)
		return gen.Torus(r, c), nil, nil
	case "petersen":
		return gen.Petersen(), nil, nil
	case "matching":
		return gen.PerfectMatching(params.single(6)), nil, nil
	case "tree":
		return gen.RandomTree(rng, params.single(20)), nil, nil
	case "regular":
		g, err := gen.RandomRegular(rng, params.get("n", 20), params.get("d", 3))
		return g, nil, err
	case "bounded":
		return gen.RandomBoundedDegree(rng, params.get("n", 20), params.get("delta", 4), 0.5), nil, nil
	case "evenlb":
		c, err := lowerbound.Even(params.get("d", 6))
		if err != nil {
			return nil, nil, err
		}
		return c.G, c.Opt, nil
	case "oddlb":
		c, err := lowerbound.Odd(params.get("d", 5))
		if err != nil {
			return nil, nil, err
		}
		return c.G, c.Opt, nil
	default:
		return nil, nil, fmt.Errorf("unknown graph family %q", name)
	}
}

// Algorithm resolves the algorithm spec against the graph, returning the
// worst-case guarantee when one applies.
//
// Specs: auto, portone, regularodd, regularodd-nopruning, general
// (uses the graph's max degree), general:DELTA, alledges, idmatching.
func Algorithm(spec string, g *graph.Graph) (sim.Algorithm, *ratio.R, error) {
	name, arg, _ := strings.Cut(spec, ":")
	bound := func(r ratio.R) *ratio.R { return &r }
	switch name {
	case "auto":
		if g.MaxDegree() <= 1 {
			return core.AllEdges{}, bound(ratio.FromInt(1)), nil
		}
		if d, ok := g.Regular(); ok {
			if d%2 == 0 {
				return core.PortOne{}, bound(ratio.EvenRegularBound(d)), nil
			}
			return core.RegularOdd{}, bound(ratio.OddRegularBound(d)), nil
		}
		return core.NewGeneral(g.MaxDegree()), bound(ratio.BoundedDegreeBound(g.MaxDegree())), nil
	case "portone":
		if d, ok := g.Regular(); ok {
			return core.PortOne{}, bound(ratio.EvenRegularBound(d)), nil
		}
		return core.PortOne{}, nil, nil
	case "regularodd":
		if d, ok := g.Regular(); ok && d%2 == 1 {
			return core.RegularOdd{}, bound(ratio.OddRegularBound(d)), nil
		}
		return nil, nil, fmt.Errorf("regularodd needs an odd-regular graph")
	case "regularodd-nopruning":
		if d, ok := g.Regular(); ok && d%2 == 1 {
			return core.RegularOdd{SkipPruning: true}, bound(ratio.EvenRegularBound(d)), nil
		}
		return nil, nil, fmt.Errorf("regularodd-nopruning needs an odd-regular graph")
	case "general":
		delta := g.MaxDegree()
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil {
				return nil, nil, fmt.Errorf("general:%s: %w", arg, err)
			}
			delta = v
		}
		if delta < g.MaxDegree() {
			return nil, nil, fmt.Errorf("general: Δ=%d below the graph's max degree %d", delta, g.MaxDegree())
		}
		if delta < 2 {
			return core.AllEdges{}, bound(ratio.FromInt(1)), nil
		}
		return core.NewGeneral(delta), bound(ratio.BoundedDegreeBound(delta)), nil
	case "alledges":
		return core.AllEdges{}, nil, nil
	case "idmatching":
		// Model extension: unique IDs. Any maximal matching is a
		// 2-approximation.
		return core.NewIDMatching(), bound(ratio.FromInt(2)), nil
	default:
		return nil, nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

// params holds parsed key=value or positional-integer arguments.
type params struct {
	positional []int
	named      map[string]int
}

func parseParams(arg string) (params, error) {
	p := params{named: map[string]int{}}
	if arg == "" {
		return p, nil
	}
	for _, part := range strings.FieldsFunc(arg, func(r rune) bool { return r == ',' || r == 'x' }) {
		if key, val, ok := strings.Cut(part, "="); ok {
			v, err := strconv.Atoi(val)
			if err != nil {
				return p, fmt.Errorf("bad parameter %q: %w", part, err)
			}
			p.named[key] = v
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return p, fmt.Errorf("bad parameter %q: %w", part, err)
		}
		p.positional = append(p.positional, v)
	}
	return p, nil
}

func (p params) single(def int) int {
	if len(p.positional) > 0 {
		return p.positional[0]
	}
	return def
}

func (p params) pair(defA, defB int) (int, int) {
	a, b := defA, defB
	if len(p.positional) > 0 {
		a = p.positional[0]
	}
	if len(p.positional) > 1 {
		b = p.positional[1]
	}
	return a, b
}

func (p params) get(key string, def int) int {
	if v, ok := p.named[key]; ok {
		return v
	}
	return def
}
