package factor

import (
	"fmt"

	"eds/internal/graph"
)

// FromGraph extracts the structural multigraph (node count + edge list) of
// a port-numbered graph, forgetting the port numbering. Directed loops are
// rejected: they have no sensible degree-2 reading and never occur in the
// constructions that need factorising.
func FromGraph(g *graph.Graph) (Multi, error) {
	edges := make([][2]int, 0, g.M())
	for _, e := range g.Edges() {
		if e.IsDirectedLoop() {
			return Multi{}, fmt.Errorf("factor: graph contains a directed loop at node %d", e.U())
		}
		edges = append(edges, [2]int{e.U(), e.V()})
	}
	return Multi{N: g.N(), Edges: edges}, nil
}

// WithPairPorts re-port-numbers a 2k-regular graph with the adversarial
// pair numbering of PairPorts, preserving the underlying structure. This
// is the numbering under which all nodes of the Theorem 1 construction are
// indistinguishable.
func WithPairPorts(g *graph.Graph) (*graph.Graph, error) {
	m, err := FromGraph(g)
	if err != nil {
		return nil, err
	}
	asg, err := PairPorts(m)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(m.N)
	for _, a := range asg {
		if err := b.Connect(a.U, a.PU, a.V, a.PV); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
