package graph

import (
	"testing"
)

// FuzzBuilder feeds arbitrary connect sequences to the builder: whatever
// subset of operations succeeds must still produce a valid involution,
// and Build must never return a structurally broken graph.
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 1, 2, 2, 1})
	f.Add([]byte{0, 1, 0, 1})             // directed loop
	f.Add([]byte{0, 1, 0, 2, 1, 1, 1, 2}) // undirected loops
	f.Add([]byte{3, 9, 2, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 5
		b := NewBuilder(n)
		wired := 0
		for i := 0; i+3 < len(data); i += 4 {
			u := int(data[i]) % n
			pi := 1 + int(data[i+1])%6
			v := int(data[i+2]) % n
			pj := 1 + int(data[i+3])%6
			if err := b.Connect(u, pi, v, pj); err == nil {
				wired++
			}
		}
		g, err := b.Build()
		if err != nil {
			// Holes in the port space are legitimate build failures.
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("built graph fails validation: %v", err)
		}
		total := 0
		for v := 0; v < g.N(); v++ {
			total += g.Deg(v)
		}
		// Handshake: every edge has two port endpoints except directed
		// loops, which have one.
		directed := 0
		for _, e := range g.Edges() {
			if e.IsDirectedLoop() {
				directed++
			}
		}
		if total != 2*(g.M()-directed)+directed {
			t.Fatalf("handshake violated: ports %d, edges %d (%d directed loops)", total, g.M(), directed)
		}
	})
}

// FuzzEdgeSetOps checks the bitset against a map-based model.
func FuzzEdgeSetOps(f *testing.F) {
	f.Add([]byte{1, 0, 2, 1, 1, 63, 0, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		const m = 130
		s := NewEdgeSet(m)
		model := map[int]bool{}
		for i := 0; i+1 < len(data); i += 2 {
			idx := int(data[i+1]) % m
			if data[i]%2 == 0 {
				s.Add(idx)
				model[idx] = true
			} else {
				s.Remove(idx)
				delete(model, idx)
			}
		}
		if s.Count() != len(model) {
			t.Fatalf("Count = %d, model %d", s.Count(), len(model))
		}
		for idx := 0; idx < m; idx++ {
			if s.Has(idx) != model[idx] {
				t.Fatalf("Has(%d) = %v, model %v", idx, s.Has(idx), model[idx])
			}
		}
	})
}
