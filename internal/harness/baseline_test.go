package harness

import (
	"strings"
	"testing"
)

func TestBaselineComparison(t *testing.T) {
	row, err := BaselineComparison(1, 12, 4, 6)
	if err != nil {
		t.Fatalf("BaselineComparison: %v", err)
	}
	if !row.ExactAll {
		t.Fatal("12-node instances should be within the exact budget")
	}
	// Sandwich: exact <= each heuristic; greedy-EDS <= greedy-MM is not
	// a theorem but the distributed result must be feasible and at least
	// the optimum.
	if row.Exact > row.Distributed || row.Exact > row.GreedyMM || row.Exact > row.GreedyEDS {
		t.Errorf("exact total %d exceeds a heuristic: %+v", row.Exact, row)
	}
	out := FormatBaseline([]BaselineRow{row})
	if !strings.Contains(out, "distributed") || !strings.Contains(out, "greedy-eds") {
		t.Errorf("FormatBaseline missing headers:\n%s", out)
	}
}
