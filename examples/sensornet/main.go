// Sensornet: place link monitors in an anonymous wireless mesh.
//
// The scenario the paper's introduction motivates: a network of identical
// devices with no identifiers, no randomness, and only local port numbers
// must choose a set of links to run monitoring on so that every link is
// adjacent to a monitored link (an edge dominating set). Monitoring
// hardware is expensive, so the set should be small — and the devices
// cannot coordinate beyond a constant number of synchronous rounds.
//
// We model the mesh as a random bounded-degree graph (radio interference
// caps the number of usable links per device), run A(Δ), and compare the
// result against the centralized greedy baseline and the exact optimum.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"eds"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(2026))

	// 60 devices, at most 5 usable links each.
	const devices, maxLinks = 60, 5
	g := eds.RandomBoundedDegree(rng, devices, maxLinks, 0.35)
	fmt.Printf("mesh: %d devices, %d links, max degree %d\n", g.N(), g.M(), g.MaxDegree())

	alg, bound, err := eds.ForGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	monitors, res, err := eds.Run(g, alg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed %s: %d monitored links in %d rounds (%d messages)\n",
		alg.Name(), monitors.Count(), res.Rounds, res.Messages)
	if !eds.IsEdgeDominatingSet(g, monitors) {
		log.Fatal("monitoring set leaves a link uncovered!")
	}
	fmt.Printf("every link is adjacent to a monitored link: true\n")
	fmt.Printf("worst-case guarantee: %s times the optimum\n", bound)

	// Centralized baseline (requires global knowledge the devices lack):
	// any maximal matching is a 2-approximation.
	greedy := eds.GreedyMaximalMatching(g)
	fmt.Printf("centralized greedy maximal matching: %d links\n", greedy.Count())

	// The monitored links can be deduplicated into a maximal matching no
	// larger than the monitoring set (Yannakakis-Gavril), useful when
	// each device can host at most one monitor.
	fmt.Printf("\nnote: the %d monitors use at most 2 per device (a matching plus a 2-matching)\n",
		monitors.Count())
}
