package graph

// Components labels the connected components of g: the result maps each
// node to a component id in 0..k-1, ids assigned in order of the
// smallest node of each component.
func Components(g *Graph) (ids []int, count int) {
	ids = make([]int, g.N())
	for v := range ids {
		ids[v] = -1
	}
	for start := 0; start < g.N(); start++ {
		if ids[start] >= 0 {
			continue
		}
		ids[start] = count
		stack := []int{start}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for i := 1; i <= g.Deg(v); i++ {
				u := g.P(v, i).Node
				if ids[u] < 0 {
					ids[u] = count
					stack = append(stack, u)
				}
			}
		}
		count++
	}
	return ids, count
}

// Connected reports whether g has at most one connected component.
func Connected(g *Graph) bool {
	_, count := Components(g)
	return count <= 1
}
