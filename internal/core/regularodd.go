package core

import (
	"eds/internal/graph"
	"eds/internal/sim"
)

// RegularOdd is the Theorem 4 algorithm for d-regular graphs with odd d:
//
//	Phase I  — for each pair (i,j) in row-major order, process the
//	           distinguishable edges of M_G(i,j) in parallel: add e to D
//	           unless both endpoints are already covered by D. This builds
//	           a spanning forest that is also an edge cover (Lemma 1
//	           guarantees every odd-degree node has a distinguishable
//	           edge).
//	Phase II — for each pair (i,j) again, remove e ∈ D ∩ M_G(i,j) when
//	           both endpoints remain covered by D \ {e}. Afterwards D is a
//	           forest of node-disjoint stars, hence |D| <= d|V|/(d+1).
//
// The approximation factor is 4 - 6/(d+1), optimal by Theorem 2. The
// round schedule is 1 + 4d² (label exchange plus two rounds per pair per
// phase), derived purely from the node's own degree.
//
// SkipPruning disables phase II; the result is still a feasible edge
// cover but only guarantees |D| <= |V|, i.e. factor 4 - 2/d. It exists to
// measure what the pruning phase buys (the Ext-A ablation).
type RegularOdd struct {
	SkipPruning bool
}

var (
	_ sim.Algorithm     = RegularOdd{}
	_ sim.BulkAlgorithm = RegularOdd{}
)

// Name implements sim.Algorithm.
func (a RegularOdd) Name() string {
	if a.SkipPruning {
		return "regularodd-nopruning"
	}
	return "regularodd"
}

// Rounds returns the round count on a d-regular graph.
func (a RegularOdd) Rounds(d int) int {
	if a.SkipPruning {
		return 1 + 2*d*d
	}
	return 1 + 4*d*d
}

// NewNode implements sim.Algorithm.
func (a RegularOdd) NewNode(degree int) sim.Node {
	return newProgNode(regularOddProgram(a.Name(), degree, a.SkipPruning), degree)
}

// BuildNodes implements sim.BulkAlgorithm: the whole node range shares
// one value slab and the shard's arena, with one compiled program per
// degree class.
func (a RegularOdd) BuildNodes(g *graph.Graph, lo, hi int, arena *sim.StateArena, nodes []sim.Node) {
	name, skip := a.Name(), a.SkipPruning
	buildProgNodes(g, lo, hi, arena, nodes, func(deg int) *program[pairState] {
		return regularOddProgram(name, deg, skip)
	})
}

// regularOddProgram compiles (once per degree) the Theorem 4 schedule:
// label exchange, then two rounds per (i,j) pair for phase I, and — with
// pruning — two more per pair for phase II. The schedule is derived
// purely from the node's own degree, so degree is the cache key.
func regularOddProgram(kind string, degree int, skipPruning bool) *program[pairState] {
	return cachedProgram(kind, degree, func() *program[pairState] {
		self := func(st *pairState) *pairState { return st }
		p := &program[pairState]{
			init: func(st *pairState, deg int, arena *sim.StateArena) {
				st.init(deg, arena)
			},
			output: func(st *pairState, _ int, dst []int) []int {
				return appendChosen(dst, st.inSet)
			},
		}
		p.steps = append(p.steps, labelExchangeStep(self))
		for i := 1; i <= degree; i++ {
			for j := 1; j <= degree; j++ {
				p.steps = append(p.steps, phaseIAddSteps(self, i, j, addUnlessBothCovered)...)
			}
		}
		if !skipPruning {
			for i := 1; i <= degree; i++ {
				for j := 1; j <= degree; j++ {
					p.steps = append(p.steps, phaseIIPruneSteps(self, i, j)...)
				}
			}
		}
		return p
	})
}
