package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eds/internal/core"
	"eds/internal/gen"
	"eds/internal/graph"
	"eds/internal/local"
	"eds/internal/sim"
	"eds/internal/verify"
)

// coverFromOutputs extracts the vertex cover from a VertexCover3 run:
// nodes with non-empty output.
func coverFromOutputs(outputs [][]int) []bool {
	cover := make([]bool, len(outputs))
	for v, out := range outputs {
		cover[v] = len(out) > 0
	}
	return cover
}

func TestVertexCover3Quick(t *testing.T) {
	// Feasibility, the 3-approximation bound, the 2-matching structure,
	// and agreement with the centralized reference.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		switch rng.Intn(3) {
		case 0:
			g = gen.RandomBoundedDegree(rng, 5+rng.Intn(12), 2+rng.Intn(4), 0.5)
		case 1:
			g = gen.RandomTree(rng, 3+rng.Intn(14))
		default:
			g = gen.MustRandomRegular(rng, 8+2*rng.Intn(4), 3)
		}
		if g.M() == 0 {
			return true
		}
		delta := g.MaxDegree()
		alg := core.VertexCover3{Delta: delta}
		res, err := sim.RunSequential(g, alg)
		if err != nil {
			return false
		}
		if res.Rounds > alg.Rounds(delta) {
			return false
		}
		// The selected edges form a 2-matching.
		p, err := sim.EdgeSet(g, res.Outputs)
		if err != nil {
			return false
		}
		if !verify.IsKMatching(g, p, 2) {
			return false
		}
		cover := coverFromOutputs(res.Outputs)
		if !verify.IsVertexCover(g, cover) {
			return false
		}
		// Reference agreement.
		want := local.VertexCover3(g, delta)
		for v := range cover {
			if cover[v] != want[v] {
				return false
			}
		}
		// 3-approximation against the exact optimum.
		opt := verify.MinimumVertexCover(g)
		optSize, coverSize := 0, 0
		for v := range opt {
			if opt[v] {
				optSize++
			}
			if cover[v] {
				coverSize++
			}
		}
		return coverSize <= 3*optSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVertexCover3OnCycle(t *testing.T) {
	// On an even cycle the minimum vertex cover is n/2; the local
	// algorithm must stay within factor 3.
	g := gen.Cycle(12)
	alg := core.VertexCover3{Delta: 2}
	res, err := sim.RunSequential(g, alg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	cover := coverFromOutputs(res.Outputs)
	if !verify.IsVertexCover(g, cover) {
		t.Fatal("not a vertex cover")
	}
	size := 0
	for _, in := range cover {
		if in {
			size++
		}
	}
	if size > 3*6 {
		t.Errorf("cover size %d exceeds 3x optimum 6", size)
	}
}

func TestMinimumVertexCoverKnownValues(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"P2", gen.Path(2), 1},
		{"P5", gen.Path(5), 2},
		{"C5", gen.Cycle(5), 3},
		{"C6", gen.Cycle(6), 3},
		{"K4", gen.Complete(4), 3},
		{"Star5", gen.Star(5), 1},
		{"Petersen", gen.Petersen(), 6},
		{"K33", gen.CompleteBipartite(3, 3), 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cover := verify.MinimumVertexCover(tc.g)
			if !verify.IsVertexCover(tc.g, cover) {
				t.Fatal("result is not a vertex cover")
			}
			size := 0
			for _, in := range cover {
				if in {
					size++
				}
			}
			if size != tc.want {
				t.Errorf("min VC = %d, want %d", size, tc.want)
			}
		})
	}
}

func TestKoenigOnBipartiteQuick(t *testing.T) {
	// König: in bipartite graphs, min vertex cover = maximum matching.
	// Cross-validates the VC solver against the blossom algorithm.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := 2+rng.Intn(4), 2+rng.Intn(4)
		var edges [][2]int
		for u := 0; u < a; u++ {
			for v := 0; v < b; v++ {
				if rng.Intn(2) == 0 {
					edges = append(edges, [2]int{u, a + v})
				}
			}
		}
		g := graph.MustFromUndirected(a+b, edges)
		cover := verify.MinimumVertexCover(g)
		size := 0
		for _, in := range cover {
			if in {
				size++
			}
		}
		return size == verify.MaximumMatching(g).Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
