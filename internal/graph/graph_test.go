package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperH builds a simple graph with the properties the paper states for
// the graph H of Figure 2 (Section 5): node a has no uniquely labelled
// edges, a is the distinguishable neighbour of b, and d is the
// distinguishable neighbour of c.
//
//	p(a,1)=(c,2), p(a,2)=(b,1), p(b,2)=(d,2), p(c,1)=(d,1).
func paperH(t testing.TB) *Graph {
	t.Helper()
	const a, b, c, d = 0, 1, 2, 3
	bl := NewBuilder(4)
	bl.MustConnect(a, 1, c, 2)
	bl.MustConnect(a, 2, b, 1)
	bl.MustConnect(b, 2, d, 2)
	bl.MustConnect(c, 1, d, 1)
	return bl.MustBuild()
}

// paperM builds the multigraph M from Figure 2: nodes s (deg 3) and t
// (deg 4); p maps (s,1)↔(t,2), (s,2)↔(t,1), (s,3)↦(s,3), (t,3)↔(t,4).
func paperM(t testing.TB) *Graph {
	t.Helper()
	const s, tt = 0, 1
	bl := NewBuilder(2)
	bl.MustConnect(s, 1, tt, 2)
	bl.MustConnect(s, 2, tt, 1)
	bl.MustConnect(s, 3, s, 3) // directed loop
	bl.MustConnect(tt, 3, tt, 4)
	return bl.MustBuild()
}

func TestPaperFigure2SimpleGraph(t *testing.T) {
	g := paperH(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := g.N(), 4; got != want {
		t.Errorf("N = %d, want %d", got, want)
	}
	if got, want := g.M(), 4; got != want {
		t.Errorf("M = %d, want %d", got, want)
	}
	if !g.IsSimple() {
		t.Error("IsSimple = false, want true")
	}
	wantDeg := []int{2, 2, 2, 2}
	for v, want := range wantDeg {
		if got := g.Deg(v); got != want {
			t.Errorf("Deg(%d) = %d, want %d", v, got, want)
		}
	}
	if got := g.P(0, 1); got != (Port{Node: 2, Num: 2}) {
		t.Errorf("P(a,1) = %v, want (2,2)", got)
	}
	if d, ok := g.Regular(); !ok || d != 2 {
		t.Errorf("Regular = (%d,%v), want (2,true)", d, ok)
	}
}

func TestPaperFigure2Multigraph(t *testing.T) {
	g := paperM(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := g.N(), 2; got != want {
		t.Errorf("N = %d, want %d", got, want)
	}
	// Edges: two parallel s-t edges, one directed loop at s, one
	// undirected loop at t.
	if got, want := g.M(), 4; got != want {
		t.Errorf("M = %d, want %d", got, want)
	}
	if g.IsSimple() {
		t.Error("IsSimple = true, want false")
	}
	if got, want := g.Deg(0), 3; got != want {
		t.Errorf("Deg(s) = %d, want %d", got, want)
	}
	if got, want := g.Deg(1), 4; got != want {
		t.Errorf("Deg(t) = %d, want %d", got, want)
	}
	loops, directed := 0, 0
	for _, e := range g.Edges() {
		if e.IsLoop() {
			loops++
		}
		if e.IsDirectedLoop() {
			directed++
		}
	}
	if loops != 2 || directed != 1 {
		t.Errorf("loops = %d (directed %d), want 2 (1 directed)", loops, directed)
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name string
		fn   func(b *Builder) error
	}{
		{"node out of range", func(b *Builder) error { return b.Connect(5, 1, 0, 1) }},
		{"port zero", func(b *Builder) error { return b.Connect(0, 0, 1, 1) }},
		{"double wire", func(b *Builder) error {
			if err := b.Connect(0, 1, 1, 1); err != nil {
				return err
			}
			return b.Connect(0, 1, 2, 1)
		}},
		{"peer port taken", func(b *Builder) error {
			if err := b.Connect(0, 1, 1, 1); err != nil {
				return err
			}
			return b.Connect(2, 1, 1, 1)
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.fn(NewBuilder(3)); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestBuildRejectsUnconnectedPort(t *testing.T) {
	b := NewBuilder(2)
	b.MustConnect(0, 2, 1, 1) // leaves port (0,1) unassigned
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded with a hole in the port space")
	}
}

func TestFromUndirected(t *testing.T) {
	g, err := FromUndirected(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatalf("FromUndirected: %v", err)
	}
	if d, ok := g.Regular(); !ok || d != 2 {
		t.Errorf("Regular = (%d,%v), want (2,true)", d, ok)
	}
	if _, err := FromUndirected(3, [][2]int{{0, 0}}); err == nil {
		t.Error("loop accepted")
	}
	if _, err := FromUndirected(3, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Error("parallel edge accepted")
	}
}

func TestEdgeAccessors(t *testing.T) {
	g := paperH(t)
	for v := 0; v < g.N(); v++ {
		for i := 1; i <= g.Deg(v); i++ {
			e := g.Edge(g.EdgeAt(v, i))
			if !e.Covers(v) {
				t.Errorf("EdgeAt(%d,%d) = %v does not cover %d", v, i, e, v)
			}
			q := g.P(v, i)
			if e.Other(v) != q.Node {
				t.Errorf("Other(%d) = %d, want %d", v, e.Other(v), q.Node)
			}
		}
	}
	if g.PortBetween(0, 3) != 0 {
		t.Error("PortBetween(a,d) should be 0 (no edge)")
	}
	if !g.HasEdgeBetween(2, 3) {
		t.Error("HasEdgeBetween(c,d) = false")
	}
}

// randomSimpleGraph builds a random simple graph for property tests.
func randomSimpleGraph(rng *rand.Rand, n int, prob float64) *Graph {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < prob {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return MustFromUndirected(n, edges)
}

func TestInvolutionPropertyQuick(t *testing.T) {
	// For any random simple graph, p must be a self-inverse bijection and
	// the edge index must map both ports of an edge to the same index.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSimpleGraph(rng, 2+rng.Intn(14), rng.Float64())
		if err := g.Validate(); err != nil {
			return false
		}
		for v := 0; v < g.N(); v++ {
			for i := 1; i <= g.Deg(v); i++ {
				q := g.P(v, i)
				if g.P(q.Node, q.Num) != (Port{Node: v, Num: i}) {
					return false
				}
				if g.EdgeAt(v, i) != g.EdgeAt(q.Node, q.Num) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHandshakeLemmaQuick(t *testing.T) {
	// Sum of degrees = 2 * (#non-directed-loop edges) + (#directed loops)
	// ... with undirected loops contributing 2 ports of the same node.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSimpleGraph(rng, 2+rng.Intn(14), rng.Float64())
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Deg(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIncidentEdgesDeduplicatesLoops(t *testing.T) {
	b := NewBuilder(1)
	b.MustConnect(0, 1, 0, 2) // undirected loop occupying two ports
	g := b.MustBuild()
	if got := g.IncidentEdges(0); len(got) != 1 {
		t.Errorf("IncidentEdges = %v, want exactly one edge", got)
	}
}

func TestGraphEqual(t *testing.T) {
	g := paperH(t)
	h := paperH(t)
	if !g.Equal(h) {
		t.Error("identical constructions not Equal")
	}
	b := NewBuilder(4)
	b.MustConnect(0, 1, 1, 1) // different wiring
	b.MustConnect(0, 2, 2, 1)
	b.MustConnect(0, 3, 1, 2)
	b.MustConnect(2, 2, 3, 1)
	if g.Equal(b.MustBuild()) {
		t.Error("different wirings reported Equal")
	}
}
