// Cross-engine equivalence suite: the paper's algorithms executed on a
// corpus of port-numbered graph families must produce identical Results
// from every engine — the sequential reference, the goroutine-per-node
// channel engine, and the sharded flat-buffer engine — including error
// cases. This is the contract that lets the fast engine stand in for the
// reference on large graphs.
//
// The file lives in package sim_test because it drives the real
// algorithms from internal/core, which itself imports sim.
package sim_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"eds/internal/core"
	"eds/internal/gen"
	"eds/internal/graph"
	"eds/internal/sim"
)

type engine struct {
	name string
	run  func(*graph.Graph, sim.Algorithm, ...sim.Option) (*sim.Result, error)
}

func engines() []engine {
	return []engine{
		{"sequential", sim.RunSequential},
		{"concurrent", sim.RunConcurrent},
		{"sharded", sim.RunSharded},
	}
}

type namedGraph struct {
	name string
	g    *graph.Graph
}

// equivalenceCorpus is the graph corpus of the suite: the deterministic
// classic families plus seeded random regular / bounded-degree graphs and
// a multigraph with loops and parallel edges.
func equivalenceCorpus(t testing.TB) []namedGraph {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	gs := []namedGraph{
		{"Cycle/9", gen.Cycle(9)},
		{"Path/12", gen.Path(12)},
		{"Complete/7", gen.Complete(7)},
		{"Hypercube/3", gen.Hypercube(3)},
		{"Torus/3x4", gen.Torus(3, 4)},
		{"RandomRegular/n=20,d=3", gen.MustRandomRegular(rng, 20, 3)},
		{"RandomRegular/n=16,d=4", gen.MustRandomRegular(rng, 16, 4)},
		{"RandomBoundedDegree/n=24,delta=4", gen.RandomBoundedDegree(rng, 24, 4, 0.4)},
		{"Multigraph/loops", multigraph()},
	}
	return gs
}

// multigraph exercises undirected loops, a directed loop, and parallel
// edges in one instance.
func multigraph() *graph.Graph {
	b := graph.NewBuilder(3)
	b.MustConnect(0, 1, 0, 2) // undirected loop
	b.MustConnect(0, 3, 0, 3) // directed loop
	b.MustConnect(0, 4, 1, 1)
	b.MustConnect(0, 5, 1, 2) // parallel edge
	b.MustConnect(1, 3, 2, 1)
	b.MustConnect(2, 2, 2, 3) // undirected loop on 2
	return b.MustBuild()
}

// algorithmsFor returns the paper's full algorithm set instantiated for
// the graph. Algorithms run even on families outside their guarantee
// (e.g. RegularOdd on an irregular graph): the output need not be a good
// edge dominating set, but every engine must still compute the same one.
func algorithmsFor(g *graph.Graph) []sim.Algorithm {
	delta := g.MaxDegree()
	if delta < 2 {
		delta = 2
	}
	return []sim.Algorithm{
		core.PortOne{},
		core.RegularOdd{},
		core.NewGeneral(delta),
		core.AllEdges{},
	}
}

// TestCrossEngineEquivalence runs every algorithm on every corpus graph
// with all three engines and demands identical Outputs, Rounds, Messages
// — or identical errors.
func TestCrossEngineEquivalence(t *testing.T) {
	for _, ng := range equivalenceCorpus(t) {
		for _, alg := range algorithmsFor(ng.g) {
			t.Run(ng.name+"/"+alg.Name(), func(t *testing.T) {
				ref, refErr := sim.RunSequential(ng.g, alg)
				for _, e := range engines()[1:] {
					res, err := e.run(ng.g, alg)
					if (err == nil) != (refErr == nil) {
						t.Fatalf("%s: err = %v, sequential err = %v", e.name, err, refErr)
					}
					if err != nil {
						if err.Error() != refErr.Error() {
							t.Fatalf("%s: err %q, sequential err %q", e.name, err, refErr)
						}
						continue
					}
					if !reflect.DeepEqual(res.Outputs, ref.Outputs) {
						t.Errorf("%s: Outputs diverge from sequential", e.name)
					}
					if res.Rounds != ref.Rounds {
						t.Errorf("%s: Rounds = %d, sequential %d", e.name, res.Rounds, ref.Rounds)
					}
					if res.Messages != ref.Messages {
						t.Errorf("%s: Messages = %d, sequential %d", e.name, res.Messages, ref.Messages)
					}
				}
			})
		}
	}
}

// TestShardCountInvariance fixes the workload and sweeps the shard count:
// 1, 2, NumCPU, and one shard per node must all reproduce the sequential
// result exactly. Run under -race this also proves phase isolation.
func TestShardCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gen.MustRandomRegular(rng, 30, 3)
	counts := []int{1, 2, runtime.NumCPU(), g.N()}
	for _, alg := range algorithmsFor(g) {
		ref, err := sim.RunSequential(g, alg)
		if err != nil {
			t.Fatalf("sequential %s: %v", alg.Name(), err)
		}
		for _, p := range counts {
			res, err := sim.RunSharded(g, alg, sim.WithShards(p))
			if err != nil {
				t.Fatalf("sharded %s shards=%d: %v", alg.Name(), p, err)
			}
			if !reflect.DeepEqual(res.Outputs, ref.Outputs) ||
				res.Rounds != ref.Rounds || res.Messages != ref.Messages {
				t.Errorf("%s: shards=%d diverges from sequential", alg.Name(), p)
			}
		}
	}
}

// TestTraceCrossEngineEquivalence runs every corpus workload with a
// trace attached on both hook-capable engines and demands the identical
// round-by-round profile. This is the contract that lets -profile and
// the figures pipeline use the sharded engine on graphs too large for
// the sequential reference.
func TestTraceCrossEngineEquivalence(t *testing.T) {
	for _, ng := range equivalenceCorpus(t) {
		for _, alg := range algorithmsFor(ng.g) {
			t.Run(ng.name+"/"+alg.Name(), func(t *testing.T) {
				seqTrace, seqOpt := sim.NewTrace()
				if _, err := sim.RunSequential(ng.g, alg, seqOpt); err != nil {
					t.Fatalf("sequential: %v", err)
				}
				shTrace, shOpt := sim.NewTrace()
				if _, err := sim.RunSharded(ng.g, alg, shOpt, sim.WithShards(runtime.NumCPU())); err != nil {
					t.Fatalf("sharded: %v", err)
				}
				if !reflect.DeepEqual(seqTrace.Rounds, shTrace.Rounds) {
					t.Errorf("traces diverge:\nsequential: %v\nsharded:    %v", seqTrace.Rounds, shTrace.Rounds)
				}
			})
		}
	}
}

// TestAutoHonoursHookAboveThreshold pins the fix for the silent
// fallback: RunAuto above AutoShardedThreshold used to reroute hooked
// runs to the sequential engine because the sharded engine dropped the
// hook. Now the sharded engine drives the hook itself, so an auto run on
// a large graph must produce the full trace.
func TestAutoHonoursHookAboveThreshold(t *testing.T) {
	n := sim.AutoShardedPorts // cycle: 2n ports, comfortably above the cutover
	g := gen.Cycle(n)
	tr, opt := sim.NewTrace()
	res, err := sim.RunAuto(g, core.PortOne{}, opt)
	if err != nil {
		t.Fatalf("RunAuto: %v", err)
	}
	if len(tr.Rounds) != res.Rounds {
		t.Fatalf("trace has %d rounds, result says %d", len(tr.Rounds), res.Rounds)
	}
	if tr.TotalMessages() != res.Messages {
		t.Fatalf("trace counted %d messages, result says %d", tr.TotalMessages(), res.Messages)
	}
	// Cross-check against the sequential reference on the same graph.
	refTrace, refOpt := sim.NewTrace()
	if _, err := sim.RunSequential(g, core.PortOne{}, refOpt); err != nil {
		t.Fatalf("sequential: %v", err)
	}
	if !reflect.DeepEqual(refTrace.Rounds, tr.Rounds) {
		t.Errorf("auto trace diverges from sequential reference")
	}
}

// cancelSendAlg never terminates on its own but cancels the attached
// context from Send at a fixed round — a deterministic mid-run
// cancellation point that exists identically in every engine.
type cancelSendAlg struct {
	cancel  context.CancelFunc
	atRound int
}

func (a cancelSendAlg) Name() string { return "cancel-send" }
func (a cancelSendAlg) NewNode(degree int) sim.Node {
	return &cancelSendNode{deg: degree, alg: a}
}

type cancelSendNode struct {
	deg int
	alg cancelSendAlg
}

func (n *cancelSendNode) Send(round int) []sim.Message {
	if round >= n.alg.atRound {
		n.alg.cancel()
	}
	return make([]sim.Message, n.deg)
}
func (n *cancelSendNode) Receive(round int, inbox []sim.Message) {}
func (n *cancelSendNode) Done() bool                             { return false }
func (n *cancelSendNode) Output() []int                          { return nil }

// awaitBaselineGoroutines waits for the goroutine count to return to the
// pre-run baseline, failing the test if it does not: a canceled engine
// must not leak its workers.
func awaitBaselineGoroutines(t *testing.T, label string, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("%s: %d goroutines still alive, baseline %d", label, runtime.NumGoroutine(), base)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCancellationParity checks the WithContext contract on all three
// engines: cancel-before-start, cancel-mid-run, and deadline-exceeded
// must surface the identical error (wrapping ErrCanceled plus the
// context cause) from every engine, return no Result, and leak no
// goroutines. Run under -race this also proves the cancellation path is
// race-free.
func TestCancellationParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.MustRandomRegular(rng, 20, 3)

	check := func(t *testing.T, mkCtx func() context.Context, mkAlg func(context.CancelFunc) sim.Algorithm,
		wantCause error, opts ...sim.Option) {
		t.Helper()
		base := runtime.NumGoroutine()
		var msgs []string
		for _, e := range engines() {
			ctx := mkCtx()
			cancel := func() {}
			var alg sim.Algorithm = stuckAlg{}
			if mkAlg != nil {
				var ccancel context.CancelFunc
				ctx, ccancel = context.WithCancel(ctx)
				alg = mkAlg(ccancel)
				cancel = ccancel
			}
			res, err := e.run(g, alg, append([]sim.Option{sim.WithContext(ctx)}, opts...)...)
			cancel()
			if res != nil {
				t.Errorf("%s: got a Result alongside cancellation", e.name)
			}
			if !errors.Is(err, sim.ErrCanceled) {
				t.Fatalf("%s: err = %v, want ErrCanceled", e.name, err)
			}
			if wantCause != nil && !errors.Is(err, wantCause) {
				t.Errorf("%s: err = %v, want cause %v", e.name, err, wantCause)
			}
			msgs = append(msgs, err.Error())
			awaitBaselineGoroutines(t, e.name, base)
		}
		for _, m := range msgs[1:] {
			if m != msgs[0] {
				t.Errorf("cancellation errors differ across engines: %q vs %q", msgs[0], m)
			}
		}
	}

	t.Run("CancelBeforeStart", func(t *testing.T) {
		check(t, func() context.Context {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			return ctx
		}, nil, context.Canceled)
	})
	t.Run("DeadlineAlreadyExceeded", func(t *testing.T) {
		check(t, func() context.Context {
			ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
			_ = cancel // ctx is already expired; engines never see Done undone
			return ctx
		}, nil, context.DeadlineExceeded)
	})
	t.Run("CancelMidRun", func(t *testing.T) {
		check(t, context.Background,
			func(cancel context.CancelFunc) sim.Algorithm {
				return cancelSendAlg{cancel: cancel, atRound: 3}
			}, context.Canceled)
	})
	t.Run("DeadlineMidRun", func(t *testing.T) {
		// A live deadline against an algorithm that never terminates:
		// each engine must notice at a round barrier and return well
		// within the test's patience, not after 100k rounds.
		base := runtime.NumGoroutine()
		for _, e := range engines() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			start := time.Now()
			_, err := e.run(g, stuckAlg{}, sim.WithContext(ctx), sim.WithMaxRounds(1<<30))
			elapsed := time.Since(start)
			cancel()
			if !errors.Is(err, sim.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("%s: err = %v, want ErrCanceled wrapping DeadlineExceeded", e.name, err)
			}
			if elapsed > 5*time.Second {
				t.Errorf("%s: took %v to notice a 30ms deadline", e.name, elapsed)
			}
			awaitBaselineGoroutines(t, e.name, base)
		}
	})
}

// stuckAlg never terminates; every engine must surface ErrRoundLimit.
type stuckAlg struct{}

func (stuckAlg) Name() string                { return "stuck" }
func (stuckAlg) NewNode(degree int) sim.Node { return &stuckNode{deg: degree} }

type stuckNode struct{ deg int }

func (n *stuckNode) Send(round int) []sim.Message           { return make([]sim.Message, n.deg) }
func (n *stuckNode) Receive(round int, inbox []sim.Message) {}
func (n *stuckNode) Done() bool                             { return false }
func (n *stuckNode) Output() []int                          { return nil }

// badSendAlg returns a wrong-length slice from every node of degree 2.
// On Path(3) exactly one node (the middle, index 1) has degree 2, so the
// engines must all report the same node in the same error string. The
// other nodes panic if Receive ever runs in the poisoned round: every
// engine must abort after the send barrier, before any node can observe
// the substitute messages.
type badSendAlg struct{}

func (badSendAlg) Name() string { return "bad-send" }
func (badSendAlg) NewNode(degree int) sim.Node {
	return &badSendNode{deg: degree}
}

type badSendNode struct {
	deg  int
	done bool
}

func (n *badSendNode) Send(round int) []sim.Message {
	if n.deg == 2 {
		return make([]sim.Message, n.deg+3)
	}
	msgs := make([]sim.Message, n.deg)
	for i := range msgs {
		msgs[i] = "well-formed"
	}
	return msgs
}

func (n *badSendNode) Receive(round int, inbox []sim.Message) {
	for _, m := range inbox {
		if m == nil {
			panic("sim_test: Receive observed a substitute message from a poisoned round")
		}
	}
	n.done = true
}
func (n *badSendNode) Done() bool    { return n.done }
func (n *badSendNode) Output() []int { return nil }

// TestEngineErrorParity checks that the failure modes surface identically
// from every engine: the round budget as ErrRoundLimit, and a malformed
// Send as an error naming the offending node — never a panic.
func TestEngineErrorParity(t *testing.T) {
	t.Run("RoundLimit", func(t *testing.T) {
		g := gen.Cycle(6)
		var msgs []string
		for _, e := range engines() {
			_, err := e.run(g, stuckAlg{}, sim.WithMaxRounds(10))
			if !errors.Is(err, sim.ErrRoundLimit) {
				t.Fatalf("%s: err = %v, want ErrRoundLimit", e.name, err)
			}
			msgs = append(msgs, err.Error())
		}
		for _, m := range msgs[1:] {
			if m != msgs[0] {
				t.Errorf("round-limit errors differ: %q vs %q", msgs[0], m)
			}
		}
	})
	t.Run("MalformedSend", func(t *testing.T) {
		g := gen.Path(3)
		var msgs []string
		for _, e := range engines() {
			_, err := e.run(g, badSendAlg{})
			if err == nil {
				t.Fatalf("%s: malformed Send accepted", e.name)
			}
			msgs = append(msgs, err.Error())
		}
		for _, m := range msgs[1:] {
			if m != msgs[0] {
				t.Errorf("malformed-send errors differ: %q vs %q", msgs[0], m)
			}
		}
	})
}
