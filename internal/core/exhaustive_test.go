package core_test

import (
	"testing"

	"eds/internal/core"
	"eds/internal/graph"
	"eds/internal/ratio"
	"eds/internal/sim"
	"eds/internal/verify"
)

// allPortNumberings enumerates every port numbering of the complete
// graph K_n (a permutation of 1..n-1 per node), invoking fn for each.
// For K4 that is 6^4 = 1296 graphs — an exhaustive adversary.
func allPortNumberings(n int, fn func(g *graph.Graph)) {
	perms := permutations(n - 1)
	choice := make([]int, n)
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			b := graph.NewBuilder(n)
			// Node u's ports are assigned to neighbours in the order
			// given by its chosen permutation; Connect wires each pair
			// once using both endpoints' chosen port numbers.
			portOf := func(u, w int) int {
				// Neighbour list of u in increasing node order skips u.
				idx := w
				if w > u {
					idx--
				}
				return perms[choice[u]][idx] + 1
			}
			for u := 0; u < n; u++ {
				for w := u + 1; w < n; w++ {
					b.MustConnect(u, portOf(u, w), w, portOf(w, u))
				}
			}
			fn(b.MustBuild())
			return
		}
		for c := range perms {
			choice[v] = c
			rec(v + 1)
		}
	}
	rec(0)
}

func permutations(k int) [][]int {
	var out [][]int
	cur := make([]int, 0, k)
	used := make([]bool, k)
	var rec func()
	rec = func() {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < k; i++ {
			if !used[i] {
				used[i] = true
				cur = append(cur, i)
				rec()
				cur = cur[:len(cur)-1]
				used[i] = false
			}
		}
	}
	rec()
	return out
}

// TestExhaustivePortNumberingsK4 runs the Theorem 4 and Theorem 5
// algorithms under every one of the 1296 port numberings of K4 (d = 3,
// optimum 2): feasibility and the tight bound 4 - 6/4 = 5/2 must hold
// for each, i.e. |D| <= 5. This is the "for every port numbering"
// quantifier of the theorems checked exhaustively rather than sampled.
func TestExhaustivePortNumberingsK4(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short mode")
	}
	const n = 4
	bound := ratio.OddRegularBound(3) // 5/2
	const opt = 2                     // minimum EDS of K4
	count := 0
	worstRegular := ratio.FromInt(0)
	algs := []sim.Algorithm{core.RegularOdd{}, core.NewGeneral(3)}
	allPortNumberings(n, func(g *graph.Graph) {
		count++
		if err := g.Validate(); err != nil {
			t.Fatalf("numbering %d invalid: %v", count, err)
		}
		for _, alg := range algs {
			d, _, err := sim.RunToEdgeSet(g, alg)
			if err != nil {
				t.Fatalf("numbering %d: %v", count, err)
			}
			if !verify.IsEdgeDominatingSet(g, d) {
				t.Fatalf("numbering %d: %s output infeasible", count, alg.Name())
			}
			measured := ratio.New(int64(d.Count()), opt)
			if !measured.LessEq(bound) {
				t.Fatalf("numbering %d: %s ratio %v exceeds %v", count, alg.Name(), measured, bound)
			}
			if alg.Name() == "regularodd" && worstRegular.Cmp(measured) < 0 {
				worstRegular = measured
			}
		}
	})
	if count != 1296 {
		t.Fatalf("enumerated %d numberings, want 1296", count)
	}
	// Some numbering must be worse than the best case (|D| = 2): the
	// adversary has real power even on K4.
	if worstRegular.LessEq(ratio.FromInt(1)) {
		t.Errorf("worst-case ratio over all numberings = %v; expected an adversarial numbering to exist", worstRegular)
	}
	t.Logf("worst regularodd ratio over all 1296 numberings of K4: %v", worstRegular)
}

// TestExhaustivePortNumberingsC4 does the same for the 16 numberings of
// the 4-cycle with the Theorem 3 algorithm (d = 2, bound 3, optimum 1...
// the minimum EDS of C4 has 2 edges, so |D| <= 3 is allowed only if
// ratio <= 3 -> |D| <= 6; every numbering must still be feasible).
func TestExhaustivePortNumberingsC4(t *testing.T) {
	const opt = 2 // minimum EDS of C4 (two opposite edges... actually 2)
	bound := ratio.EvenRegularBound(2)
	// Enumerate the 2^4 = 16 port numberings of C4: each node either
	// keeps or swaps its two ports.
	for mask := 0; mask < 16; mask++ {
		b := graph.NewBuilder(4)
		port := func(v, dir int) int { // dir 0 = towards v+1, 1 = towards v-1
			if mask&(1<<v) != 0 {
				return 2 - dir
			}
			return 1 + dir
		}
		for v := 0; v < 4; v++ {
			w := (v + 1) % 4
			b.MustConnect(v, port(v, 0), w, port(w, 1))
		}
		g := b.MustBuild()
		d, _, err := sim.RunToEdgeSet(g, core.PortOne{})
		if err != nil {
			t.Fatalf("mask %d: %v", mask, err)
		}
		if !verify.IsEdgeDominatingSet(g, d) {
			t.Fatalf("mask %d: infeasible", mask)
		}
		if !ratio.New(int64(d.Count()), opt).LessEq(bound) {
			t.Fatalf("mask %d: ratio %d/%d exceeds %v", mask, d.Count(), opt, bound)
		}
	}
}
