package core

import (
	"eds/internal/sim"
)

// Message payloads exchanged by the algorithms. They are deliberately
// tiny: the port-numbering model does not bound message size, but every
// protocol in the paper needs only a few bits per round.

// msgMark marks an edge as selected (Theorem 3).
type msgMark struct{}

// labelMsgLimit bounds the (port, degree) interning table below. 64×64
// covers every port of every node of degree ≤ 64 — all of the paper's
// regimes (Δ is a small constant) — in a 4096-entry table.
const labelMsgLimit = 64

// labelMsgs holds pre-boxed msgLabel values. Boxing a two-word struct
// into sim.Message heap-allocates, and the label-exchange round sends
// one per port — O(ports) allocations per run without interning. All
// other payloads are zero- or one-byte structs, which the runtime boxes
// allocation-free.
var labelMsgs = func() [labelMsgLimit * labelMsgLimit]sim.Message {
	var t [labelMsgLimit * labelMsgLimit]sim.Message
	for p := 1; p <= labelMsgLimit; p++ {
		for d := 1; d <= labelMsgLimit; d++ {
			t[(p-1)*labelMsgLimit+(d-1)] = msgLabel{Port: p, Deg: d}
		}
	}
	return t
}()

// labelMsg returns msgLabel{port, deg} boxed as a sim.Message, interned
// for ports and degrees up to labelMsgLimit; rarer larger values box
// normally. A free function on purpose: the interning table is shared
// immutable data, not node state.
func labelMsg(port, deg int) sim.Message {
	if port <= labelMsgLimit && deg <= labelMsgLimit {
		return labelMsgs[(port-1)*labelMsgLimit+(deg-1)]
	}
	return msgLabel{Port: port, Deg: deg}
}

// msgLabel carries the sender's port number and degree over that port; the
// receiving endpoint learns the edge's label pair and its neighbour's
// degree (the first round of Theorems 4 and 5).
type msgLabel struct {
	Port int
	Deg  int
}

// msgPropose opens the two-round processing of one distinguishable edge in
// M_G(i,j): the proposer is the node whose distinguishable edge this is.
// Covered reports whether the proposer is already covered by the set under
// construction.
type msgPropose struct {
	Covered bool
}

// msgRespond closes the two-round processing of one distinguishable edge;
// Add is the joint decision.
type msgRespond struct {
	Add bool
}

// msgProbe opens the two-round pruning of one edge of D ∩ M_G(i,j) in
// phase II of Theorem 4. OtherCovered reports whether the probing endpoint
// remains covered by D \ {e}.
type msgProbe struct {
	OtherCovered bool
}

// msgProbeRespond closes the pruning exchange; Remove is the joint
// decision.
type msgProbeRespond struct {
	Remove bool
}

// msgStatus broadcasts whether the sender is covered by the matching M
// (phases II and III of Theorem 5).
type msgStatus struct {
	Covered bool
}

// msgProposal is a matching proposal in the proposal-based subroutines
// (phase II bipartite matching and phase III double-cover 2-matching of
// Theorem 5).
type msgProposal struct{}

// msgAnswer replies to a msgProposal.
type msgAnswer struct {
	Accept bool
}
