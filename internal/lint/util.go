// Package lint hosts the edsvet analyzers: mechanical enforcement of
// the invariants the engine-equivalence story rests on but no compiler
// checks. See CONTRIBUTING.md for the invariant catalogue and
// cmd/edsvet for the driver.
package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"eds/internal/lint/analysis"
)

// Analyzers returns the full edsvet suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		AlgDeterminism,
		OutboxAlias,
		ArenaAlias,
		RoundCtx,
		EngineKey,
	}
}

// simPackage returns the type-checked eds/internal/sim package as seen
// from pkg — pkg itself when analyzing the sim package, otherwise the
// direct import — or nil when pkg does not touch the simulation layer.
func simPackage(pkg *types.Package) *types.Package {
	if strings.HasSuffix(pkg.Path(), "internal/sim") {
		return pkg
	}
	for _, imp := range pkg.Imports() {
		if strings.HasSuffix(imp.Path(), "internal/sim") {
			return imp
		}
	}
	return nil
}

// simInterface looks up a named interface (e.g. "Node") in the sim
// package's scope.
func simInterface(sim *types.Package, name string) *types.Interface {
	obj := sim.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// simNamedType looks up a named type (e.g. "Message", "Result") in the
// sim package's scope.
func simNamedType(sim *types.Package, name string) types.Type {
	obj, ok := sim.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	return obj.Type()
}

// implementsEither reports whether T or *T implements iface.
func implementsEither(T types.Type, iface *types.Interface) bool {
	if iface == nil {
		return false
	}
	if types.Implements(T, iface) {
		return true
	}
	if _, isPtr := T.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(T), iface)
	}
	return false
}

// isSliceOf reports whether t is a slice whose element type is
// identical to elem.
func isSliceOf(t, elem types.Type) bool {
	s, ok := t.(*types.Slice)
	return ok && elem != nil && types.Identical(s.Elem(), elem)
}

// calleeObject resolves the called function or method of a call
// expression, or nil for calls through function values and builtins.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// funcScopeContains reports whether obj is declared inside the function
// node fn (body or parameter list), i.e. the object does not outlive
// one call of fn.
func funcScopeContains(fn ast.Node, obj types.Object) bool {
	return obj != nil && obj.Pos() >= fn.Pos() && obj.Pos() <= fn.End()
}
