// Package analysis is a deliberately small, dependency-free mirror of
// the golang.org/x/tools/go/analysis API: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The build environment of this repository is offline — the module
// cache holds nothing beyond the standard library — so the real
// x/tools framework cannot be imported. The subset here (Analyzer,
// Pass, Diagnostic, Pass.Reportf) is API-compatible with the fields the
// edsvet analyzers use, which keeps a future migration to the upstream
// framework a matter of changing import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name is the identifier used in
// diagnostics and //lint:ignore suppressions; Doc is the one-paragraph
// description shown by `edsvet -help`.
type Analyzer struct {
	Name string
	Doc  string

	// Run applies the check to one package and reports findings through
	// pass.Report. The returned value is unused by the edsvet driver but
	// kept in the signature for x/tools compatibility.
	Run func(pass *Pass) (any, error)
}

// Pass is one (analyzer, package) unit of work: the package's syntax,
// its type information, and a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	Report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}
