package eds_test

import (
	"math/rand"
	"testing"

	"eds"
)

func TestForGraphSelection(t *testing.T) {
	tests := []struct {
		name      string
		g         *eds.Graph
		algorithm string
		ratio     string
	}{
		{"single edge", eds.Path(2), "alledges", "1"},
		{"cycle", eds.Cycle(10), "portone", "3"},
		{"K4 (3-regular)", eds.Complete(4), "regularodd", "5/2"},
		{"torus (4-regular)", eds.Torus(3, 4), "portone", "7/2"},
		{"path (irregular)", eds.Path(5), "general(Δ=3)", "3"},
		{"K5 minus nothing", eds.Complete(5), "portone", "7/2"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			alg, bound, err := eds.ForGraph(tc.g)
			if err != nil {
				t.Fatalf("ForGraph: %v", err)
			}
			if alg.Name() != tc.algorithm {
				t.Errorf("algorithm = %s, want %s", alg.Name(), tc.algorithm)
			}
			if bound.String() != tc.ratio {
				t.Errorf("bound = %s, want %s", bound, tc.ratio)
			}
			if !bound.Equal(eds.TightRatio(tc.g)) {
				t.Error("ForGraph bound != TightRatio")
			}
		})
	}
}

func TestQuickstartFlow(t *testing.T) {
	g := eds.Cycle(12)
	alg, bound, err := eds.ForGraph(g)
	if err != nil {
		t.Fatalf("ForGraph: %v", err)
	}
	d, res, err := eds.Run(g, alg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !eds.IsEdgeDominatingSet(g, d) {
		t.Fatal("output infeasible")
	}
	if res.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1 for PortOne", res.Rounds)
	}
	measured, err := eds.MeasuredRatio(g, d)
	if err != nil {
		t.Fatalf("MeasuredRatio: %v", err)
	}
	if !measured.LessEq(bound) {
		t.Errorf("measured %v exceeds guarantee %v", measured, bound)
	}
}

func TestEnginesAgreeViaFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := eds.RandomRegular(rng, 14, 3)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	alg, _, err := eds.ForGraph(g)
	if err != nil {
		t.Fatalf("ForGraph: %v", err)
	}
	d1, _, err := eds.Run(g, alg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	d2, _, err := eds.RunConcurrent(g, alg)
	if err != nil {
		t.Fatalf("RunConcurrent: %v", err)
	}
	if !d1.Equal(d2) {
		t.Error("sequential and concurrent engines disagree")
	}
	d3, _, err := eds.RunSharded(g, alg)
	if err != nil {
		t.Fatalf("RunSharded: %v", err)
	}
	if !d1.Equal(d3) {
		t.Error("sequential and sharded engines disagree")
	}
	d4, _, err := eds.RunAuto(g, alg)
	if err != nil {
		t.Fatalf("RunAuto: %v", err)
	}
	if !d1.Equal(d4) {
		t.Error("auto-selected engine disagrees with sequential")
	}
}

func TestFacadeBaselines(t *testing.T) {
	g := eds.Complete(6)
	mm := eds.GreedyMaximalMatching(g)
	if !eds.IsMaximalMatching(g, mm) {
		t.Error("greedy result is not a maximal matching")
	}
	opt := eds.MinimumEdgeDominatingSet(g)
	if opt.Count() > mm.Count() {
		t.Error("optimum larger than a maximal matching")
	}
	if !eds.IsEdgeDominatingSet(g, opt) {
		t.Error("optimum is not an EDS")
	}
}

func TestBuilderFacade(t *testing.T) {
	b := eds.NewBuilder(2)
	if err := b.Connect(0, 1, 1, 1); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
	if _, err := eds.FromUndirected(3, [][2]int{{0, 1}, {1, 2}}); err != nil {
		t.Errorf("FromUndirected: %v", err)
	}
}
