package lint

import (
	"go/ast"
	"go/types"

	"eds/internal/lint/analysis"
)

// RoundCtx enforces the cancellation contract shared by all engines
// (PR 2): a run attached to a context must stop at the next round
// barrier, and every engine must report the identical error for the
// identical execution — errors.Is-able against both sim.ErrCanceled and
// the context cause, with no engine-specific wording. Two classes of
// drift are reported:
//
//   - an engine-shaped function (one returning (*sim.Result, error))
//     whose round-advancing loop never polls the threaded context —
//     neither the shared (*config).ctxErr helper nor ctx.Err()/
//     ctx.Done(). Such an engine runs to completion after its caller
//     has gone away, which the server's deadline tests only catch when
//     the race falls their way;
//
//   - cancellation errors built outside the shared wrapper: returning
//     ctx.Err() or context.Cause(ctx) raw, or fmt.Errorf calls that
//     wrap the context error without also wrapping ErrCanceled. Raw
//     context errors differ from the other engines' byte-for-byte,
//     breaking the error-parity half of the equivalence contract and
//     the server's ErrCanceled-based status mapping.
var RoundCtx = &analysis.Analyzer{
	Name: "roundctx",
	Doc:  "flag engine round loops that skip context polling and cancellation errors built outside the shared ErrCanceled wrapper",
	Run:  runRoundCtx,
}

func runRoundCtx(pass *analysis.Pass) (any, error) {
	sim := simPackage(pass.Pkg)
	var resultType types.Type
	if sim != nil {
		resultType = simNamedType(sim, "Result")
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && resultType != nil && isEngineShaped(pass, n, resultType) {
					checkRoundLoops(pass, n.Body)
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if isRawContextError(pass, res) {
						pass.Reportf(res.Pos(), "raw context error returned: build cancellation errors through the shared ErrCanceled wrapper ((*config).ctxErr) so every engine reports the identical error")
					}
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// isEngineShaped reports whether fn returns (*sim.Result, error) — the
// signature shared by every engine entry point and the hook the
// analyzer uses to find round loops worth checking.
func isEngineShaped(pass *analysis.Pass, fn *ast.FuncDecl, resultType types.Type) bool {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	results := obj.Signature().Results()
	if results.Len() != 2 {
		return false
	}
	ptr, ok := results.At(0).Type().(*types.Pointer)
	if !ok || !types.Identical(ptr.Elem(), resultType) {
		return false
	}
	return results.At(1).Type().String() == "error"
}

// checkRoundLoops reports for-loops that advance a round counter
// without polling the context.
func checkRoundLoops(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || !advancesRound(loop) {
			return true
		}
		if !pollsContext(pass, loop.Body) {
			pass.Reportf(loop.Pos(), "round loop never polls the run context: engines must check cancellation at every round barrier (call (*config).ctxErr, ctx.Err, or select on ctx.Done)")
		}
		return true
	})
}

// advancesRound detects the engines' round-loop idiom: a for statement
// whose init or post statement drives a variable named "round".
func advancesRound(loop *ast.ForStmt) bool {
	named := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "round"
	}
	switch post := loop.Post.(type) {
	case *ast.IncDecStmt:
		if named(post.X) {
			return true
		}
	case *ast.AssignStmt:
		for _, lhs := range post.Lhs {
			if named(lhs) {
				return true
			}
		}
	}
	if init, ok := loop.Init.(*ast.AssignStmt); ok {
		for _, lhs := range init.Lhs {
			if named(lhs) {
				return true
			}
		}
	}
	return false
}

// pollsContext reports whether the loop body contains a recognised
// cancellation check.
func pollsContext(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "ctxErr" {
				found = true
			}
		case *ast.SelectorExpr:
			switch fun.Sel.Name {
			case "ctxErr":
				found = true
			case "Err", "Done":
				if t := pass.TypeOf(fun.X); t != nil && isContextType(t) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isRawContextError reports whether e is ctx.Err() or
// context.Cause(...) used directly.
func isRawContextError(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name == "Err" {
		if t := pass.TypeOf(sel.X); t != nil && isContextType(t) {
			return true
		}
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Cause"
}

// checkErrorfWrap reports fmt.Errorf calls that wrap a context error
// without also wrapping ErrCanceled.
func checkErrorfWrap(pass *analysis.Pass, call *ast.CallExpr) {
	obj := calleeObject(pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" || obj.Name() != "Errorf" {
		return
	}
	wrapsCtx := false
	wrapsCanceled := false
	for _, arg := range call.Args {
		if isRawContextError(pass, arg) {
			wrapsCtx = true
		}
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "ErrCanceled" {
				wrapsCanceled = true
			}
			return !wrapsCanceled
		})
	}
	if wrapsCtx && !wrapsCanceled {
		pass.Reportf(call.Pos(), "cancellation error wraps the context cause but not ErrCanceled: engines and callers match on errors.Is(err, sim.ErrCanceled); use the shared wrapper")
	}
}
