// Package sim executes deterministic distributed algorithms on
// port-numbered graphs under the synchronous model of Section 2.2 of the
// paper: in every round each node (i) computes, (ii) sends one message to
// each of its ports, and (iii) receives one message from each of its
// ports, routed by the involution p.
//
// Three engines are provided, all required to produce identical Results
// on every input (a cross-engine property suite in engines_test.go
// enforces it):
//
//   - RunSequential is the deterministic single-threaded reference and
//     the engine of choice for debugging.
//   - RunConcurrent runs one goroutine per node and routes messages over
//     capacity-1 channels — the natural Go embedding of the model, useful
//     as a semantic stress test of the round structure. Its per-node
//     goroutines and channels make it the slowest engine on large graphs.
//   - RunSharded partitions the nodes into P contiguous shards over the
//     graph's flat routing table (graph.RoutingTable) and runs the round
//     loop over double-buffered flat message arrays: no channels, no
//     per-round allocation, one WaitGroup barrier per phase. It is the
//     fastest engine on large graphs and the scaling path for
//     million-node runs; see sharded.go.
//
// WithRoundHook (traces, figures) is honoured by the sequential and
// sharded engines; the concurrent engine has no barrier window in which
// a consistent whole-round outbox exists, so it rejects hooked runs
// eagerly with ErrHookUnsupported instead of silently dropping the
// hook. WithContext makes any engine cancellable: the context is polled
// at every round barrier and a canceled or expired run returns an error
// wrapping ErrCanceled plus the context's cause, with no goroutine left
// behind.
//
// A node is retired as soon as Done reports true after a Receive: no
// engine calls Send or Receive on a retired node, so mixed-termination
// schedules (e.g. degree-dependent scripts on irregular graphs) execute
// identically everywhere.
package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"eds/internal/graph"
)

// Message is the content sent over one port in one round. nil means the
// empty message; only non-nil messages are counted in Result.Messages.
type Message any

// Node is the state machine one node runs. The engine calls Send, then
// delivers the round's incoming messages via Receive; after Receive it
// polls Done. Once Done reports true the node is never called again and
// Output must return the node's chosen ports (the set X(v) of the paper,
// 1-based port numbers).
type Node interface {
	// Send returns the outgoing message for each port; index 0 is port 1.
	// The returned slice must have exactly one entry per port.
	Send(round int) []Message
	// Receive delivers the incoming message of each port for this round.
	Receive(round int, inbox []Message)
	// Done reports whether the node has stopped.
	Done() bool
	// Output returns the chosen port numbers once Done is true.
	Output() []int
}

// BufferedNode is the optional zero-allocation extension of Node. Every
// engine type-asserts each node once at run start; a node implementing
// SendInto has its outgoing messages written straight into the
// engine-owned outbox window for that node — no per-round []Message
// allocation, no boxing copy — and its Send method is never called.
// Nodes that do not implement it keep working through Send unchanged.
//
// The contract of SendInto mirrors Send with the buffer inverted:
//
//   - buf has exactly one entry per port (index 0 is port 1) and every
//     entry is nil on entry; write the round's non-nil messages and
//     leave empty ports untouched.
//   - buf is a view of an engine buffer that is recycled at the next
//     round barrier. Retaining buf, a reslice of it, or any alias past
//     the call corrupts later rounds on the buffer-reusing engines —
//     exactly the divergence class the outboxalias analyzer
//     (internal/lint) flags mechanically. Retaining the message values
//     written into it is always fine.
//
// All four paper algorithms in internal/core implement BufferedNode;
// their steady-state message payloads are empty or single-bool structs,
// which Go boxes without heap allocation, so a full round of theirs
// allocates nothing on the sharded engine.
type BufferedNode interface {
	Node
	// SendInto writes the outgoing message for each port into buf, which
	// arrives all-nil with exactly one entry per port.
	SendInto(round int, buf []Message)
}

// Algorithm is a factory of node state machines. In the port-numbering
// model a starting node knows nothing but its own degree, which is
// therefore the only argument.
type Algorithm interface {
	// Name identifies the algorithm in logs and error messages.
	Name() string
	// NewNode returns the initial state of a node with the given degree.
	NewNode(degree int) Node
}

// BulkAlgorithm is the optional bulk-construction extension of
// Algorithm, the setup-phase analogue of what BufferedNode is to Send.
// Every engine type-asserts the algorithm once at run start; a
// bulk-capable algorithm has entire node ranges built in one call, with
// per-node state carved from an engine-owned StateArena in O(1) slabs
// instead of one heap allocation per node. Algorithms that do not
// implement it keep working through NewNode unchanged.
//
// The contract of BuildNodes:
//
//   - nodes has exactly hi-lo entries; BuildNodes must set every one
//     (nodes[i] becomes graph node lo+i). A nil entry fails the run.
//   - the built nodes must behave identically to NewNode(g.Deg(v))
//     nodes — the cross-engine equivalence suite runs both paths.
//   - state carved from arena is engine-owned and dies with the run
//     (the arena is rewound when the pooled run state is reacquired);
//     never store it in the Algorithm value, a package-level variable,
//     a channel, or anything else that outlives the run. The arenaalias
//     analyzer (internal/lint) flags retention mechanically.
//   - concurrent calls on disjoint [lo, hi) ranges with distinct arenas
//     must be safe: the sharded engine builds all shards in parallel.
//     In particular a BulkAlgorithm must not derive node identity from
//     construction *order* (a shared counter); use the node index.
type BulkAlgorithm interface {
	Algorithm
	// BuildNodes constructs the nodes of the half-open range [lo, hi),
	// carving their state from arena; nodes[i] is node lo+i.
	BuildNodes(g *graph.Graph, lo, hi int, arena *StateArena, nodes []Node)
}

// OutputAppender is the optional zero-allocation extension of Output.
// The engines' output collectors gather all of a node range's chosen
// ports into one flat buffer; a node implementing AppendOutput writes
// its ports straight onto that buffer instead of materialising a
// per-node slice for Output to return.
type OutputAppender interface {
	Node
	// AppendOutput appends the node's chosen ports (unsorted is fine)
	// to dst and returns the extended slice, exactly once Done is true.
	AppendOutput(dst []int) []int
}

// Result summarises one execution.
type Result struct {
	// Outputs[v] is the sorted set of ports chosen by node v.
	Outputs [][]int
	// Rounds is the number of communication rounds until every node
	// stopped.
	Rounds int
	// Messages counts non-nil messages sent over the whole execution.
	Messages int
}

// ErrRoundLimit is returned when an execution exceeds the round budget,
// which for the paper's algorithms indicates a protocol bug.
var ErrRoundLimit = errors.New("sim: round limit exceeded")

// ErrCanceled is returned when a run attached to a context (WithContext)
// is canceled or exceeds its deadline. The returned error also wraps the
// context's cause, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) distinguish the two. Every
// engine checks the context at the same points — once on entry and once
// at the top of every round — so all engines report the identical error
// for the same execution.
var ErrCanceled = errors.New("sim: run canceled")

// ErrHookUnsupported is returned by an engine that cannot honour
// WithRoundHook. Today only the concurrent engine reports it: with one
// goroutine per node and messages parked in per-port channels, there is
// no moment at which a consistent whole-round outbox exists for a hook
// to observe. The error is returned eagerly — before any node state or
// goroutine is created — so a hooked run never silently loses its
// trace; use the sequential or sharded engine (or RunAuto, which only
// picks between those two) for traces and figures.
var ErrHookUnsupported = errors.New("sim: engine does not support round hooks")

const defaultMaxRounds = 100_000

type config struct {
	ctx       context.Context
	maxRounds int
	roundHook func(round int, sent [][]Message)
	shards    int
	timings   *Timings
}

// ctxErr reports the cancellation error to surface, or nil if the run's
// context (if any) is still live. The message is deterministic — no
// round counts or timestamps — so concurrent engines agree with the
// sequential reference byte for byte.
func (c *config) ctxErr(a Algorithm) error {
	if c.ctx == nil || c.ctx.Err() == nil {
		return nil
	}
	return fmt.Errorf("%w: algorithm %q: %w", ErrCanceled, a.Name(), context.Cause(c.ctx))
}

// Option customises an execution.
type Option func(*config)

// WithMaxRounds overrides the default round budget.
func WithMaxRounds(n int) Option {
	return func(c *config) { c.maxRounds = n }
}

// WithRoundHook installs a callback invoked after the send phase of every
// round with the full message matrix (sent[v][i-1] = message sent by v on
// port i). The sequential and sharded engines honour the hook — the
// sharded engine presents its flat outbox through per-node subslices and
// invokes the hook between the send and receive barriers, where no worker
// is running — so traces and figures work at every graph scale. The
// concurrent engine does not support hooks (its messages never exist in
// one place) and returns ErrHookUnsupported when one is set. The hook
// must treat the matrix as read-only and must not retain it across
// rounds: the sharded engine's rows are views of a flat buffer that is
// recycled at the next barrier (the outboxalias analyzer in
// internal/lint enforces this mechanically).
func WithRoundHook(fn func(round int, sent [][]Message)) Option {
	return func(c *config) { c.roundHook = fn }
}

// Timings is the wall-clock split of one run, filled in by WithTimings:
// Setup covers run-state acquisition and node construction, Rounds the
// round loop, Outputs the collection and validation of the per-node
// port sets. On an error exit only the phases that completed are set.
type Timings struct {
	Setup   time.Duration
	Rounds  time.Duration
	Outputs time.Duration
}

// WithTimings makes the engine record its phase wall-clock split into
// *t. The split is diagnostic output, not part of the Result: it varies
// run to run while Results stay byte-identical.
func WithTimings(t *Timings) Option {
	return func(c *config) { c.timings = t }
}

// phaseClock times one engine's phases: each tick charges the time
// since the previous tick to one Timings slot. An unhooked run gets a
// clock with a nil target, making every call a no-op, so the engines
// tick unconditionally and pay nothing on the common path.
type phaseClock struct {
	t    *Timings
	last time.Time
}

func startClock(c *config) phaseClock {
	if c.timings == nil {
		return phaseClock{}
	}
	*c.timings = Timings{}
	return phaseClock{t: c.timings, last: time.Now()}
}

func (p *phaseClock) tickSetup() {
	if p.t != nil {
		now := time.Now()
		p.t.Setup += now.Sub(p.last)
		p.last = now
	}
}

func (p *phaseClock) tickRounds() {
	if p.t != nil {
		now := time.Now()
		p.t.Rounds += now.Sub(p.last)
		p.last = now
	}
}

func (p *phaseClock) tickOutputs() {
	if p.t != nil {
		now := time.Now()
		p.t.Outputs += now.Sub(p.last)
		p.last = now
	}
}

// WithContext attaches a context to the run. Every engine checks the
// context once on entry and once at the top of every round; when it is
// canceled or its deadline passes, the engine stops, releases all of its
// goroutines, and returns an error wrapping both ErrCanceled and the
// context's cause. A nil ctx is ignored.
func WithContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

func buildConfig(opts []Option) config {
	c := config{maxRounds: defaultMaxRounds}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// malformedSend is the shared malformed-Send error, built identically by
// every engine so error parity holds byte for byte.
func malformedSend(a Algorithm, v, got, want int) error {
	return fmt.Errorf("sim: algorithm %q: node %d sent %d messages, want %d", a.Name(), v, got, want)
}

// roundLimit is the shared round-budget error, built identically by
// every engine.
func roundLimit(a Algorithm, round int) error {
	return fmt.Errorf("%w: algorithm %q still running after %d rounds", ErrRoundLimit, a.Name(), round)
}

// RunSequential executes the algorithm on g with a deterministic
// single-threaded engine. Like the sharded engine it runs over the
// graph's flat routing view — a pooled pair of flat message arrays with
// a single gather per round — so it shares the zero-allocation send
// path (BufferedNode) and the recycled run state; it differs from
// RunSharded only in having no workers and no barriers.
func RunSequential(g *graph.Graph, a Algorithm, opts ...Option) (*Result, error) {
	c := buildConfig(opts)
	if err := c.ctxErr(a); err != nil {
		return nil, err
	}
	n := g.N()
	off := g.PortOffsets()
	route := g.RoutingTable()
	clk := startClock(&c)
	st := acquireState(n, g.NumPorts(), 0)
	defer st.release()
	bulk, _ := a.(BulkAlgorithm)
	if err := st.buildNodes(g, a, bulk, 0, n, &st.arenas[0]); err != nil {
		return nil, err
	}
	var hookView [][]Message
	if c.roundHook != nil {
		hookView = st.hookRows(off, n)
	}
	clk.tickSetup()
	res := &Result{}
	for round := 0; ; round++ {
		if err := c.ctxErr(a); err != nil {
			return nil, err
		}
		// Full scan, no early break: every node reporting Done must have
		// its flag set before the send phase, or a retired node with a
		// shorter schedule than a still-running peer would be asked to
		// Send again (degree-dependent schedules on irregular graphs).
		allDone := true
		for v := 0; v < n; v++ {
			if !st.done[v] {
				if st.nodes[v].Done() {
					st.done[v] = true
				} else {
					allDone = false
				}
			}
		}
		if allDone {
			break
		}
		if round >= c.maxRounds {
			return nil, roundLimit(a, round)
		}
		res.Rounds = round + 1
		// Send phase: every node writes its outbox window.
		for v := 0; v < n; v++ {
			slot := st.outbox[off[v]:off[v+1]:off[v+1]]
			if st.done[v] {
				clear(slot)
				continue
			}
			sent, err := st.fillSlot(a, v, round, slot)
			if err != nil {
				return nil, err
			}
			res.Messages += sent
		}
		if c.roundHook != nil {
			c.roundHook(round, hookView)
		}
		// Route via the involution: one flat gather.
		for j := range route {
			st.inbox[j] = st.outbox[route[j]]
		}
		// Receive phase.
		for v := 0; v < n; v++ {
			if !st.done[v] {
				st.nodes[v].Receive(round, st.inbox[off[v]:off[v+1]:off[v+1]])
			}
		}
	}
	clk.tickRounds()
	var err error
	res.Outputs, err = collectOutputs(g, a, st.nodes[:n])
	if err != nil {
		return nil, err
	}
	clk.tickOutputs()
	return res, nil
}

// RunConcurrent executes the algorithm with one goroutine per node,
// messages travelling over capacity-1 channels, and a coordinator barrier
// aligning rounds. Its results are identical to RunSequential because each
// node's view is deterministic regardless of scheduling.
func RunConcurrent(g *graph.Graph, a Algorithm, opts ...Option) (*Result, error) {
	c := buildConfig(opts)
	if c.roundHook != nil {
		return nil, fmt.Errorf("%w: algorithm %q: the concurrent engine has no barrier window in which the outbox is globally consistent; run hooks on the sequential or sharded engine", ErrHookUnsupported, a.Name())
	}
	if err := c.ctxErr(a); err != nil {
		return nil, err
	}
	n := g.N()
	clk := startClock(&c)
	st := acquireState(n, 0, 0)
	defer st.release()
	nodes := st.nodes
	bulk, _ := a.(BulkAlgorithm)
	if err := st.buildNodes(g, a, bulk, 0, n, &st.arenas[0]); err != nil {
		return nil, err
	}
	// in[v][i-1] is the inbound channel of port (v, i). Capacity 1: a
	// round's message parks there until the owner consumes it.
	in := make([][]chan Message, n)
	for v := 0; v < n; v++ {
		in[v] = make([]chan Message, g.Deg(v))
		for i := range in[v] {
			in[v][i] = make(chan Message, 1)
		}
	}
	// start carries one signal per half-round: true = proceed with the
	// send (resp. receive) half, false = stop. Splitting the round lets
	// the coordinator abort a poisoned round after the send barrier, so
	// no Receive ever observes the substitute messages of a malformed
	// Send — the same abort point as the sequential and sharded engines.
	start := make([]chan bool, n)
	reports := make(chan int, n) // send half: non-nil count; receive half: completion
	// A malformed Send cannot abort the send half (peers' channels must
	// be filled to keep the half-round barrier alive), so the worker
	// records the error, substitutes empty messages, and the coordinator
	// fails the run at the barrier. The lowest node index wins so the
	// error is deterministic and identical to the sequential engine's.
	var (
		errMu   sync.Mutex
		errNode = -1
		sendErr error
	)
	recordErr := func(v int, err error) {
		errMu.Lock()
		if errNode == -1 || v < errNode {
			errNode, sendErr = v, err
		}
		errMu.Unlock()
	}
	takeErr := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return sendErr
	}
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		start[v] = make(chan bool, 1)
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			node := nodes[v]
			buffered := st.buffered[v]
			deg := g.Deg(v)
			inbox := make([]Message, deg)
			// scratch is the worker's reusable outbox: retired rounds,
			// the SendInto fast path, and malformed-Send substitution all
			// fill it in place, so the steady state allocates nothing.
			scratch := make([]Message, deg)
			done := node.Done()
			round := 0
			for cont := range start[v] {
				if !cont {
					return
				}
				var out []Message
				sentCount := 0
				if !done {
					if buffered != nil {
						clear(scratch)
						buffered.SendInto(round, scratch)
						out = scratch
					} else {
						out = node.Send(round)
						if len(out) != deg {
							recordErr(v, malformedSend(a, v, len(out), deg))
							clear(scratch)
							out = scratch
						}
					}
					for _, m := range out {
						if m != nil {
							sentCount++
						}
					}
				} else {
					clear(scratch)
					out = scratch
				}
				for i := 1; i <= deg; i++ {
					q := g.P(v, i)
					in[q.Node][q.Num-1] <- out[i-1]
				}
				reports <- sentCount
				// Receive gate: the coordinator aborts here when any
				// node's Send was malformed this round.
				if !<-start[v] {
					return
				}
				for i := 0; i < deg; i++ {
					inbox[i] = <-in[v][i]
				}
				if !done {
					node.Receive(round, inbox)
					done = node.Done()
				}
				round++
				reports <- 0
			}
		}(v)
	}
	stopAll := func() {
		for v := 0; v < n; v++ {
			start[v] <- false
		}
		wg.Wait()
	}
	clk.tickSetup()
	res := &Result{}
	for round := 0; ; round++ {
		// Same barrier as the other engines: the workers are parked at
		// the round-start gate, so stopAll's false signal releases them
		// all and no goroutine outlives the call.
		if err := c.ctxErr(a); err != nil {
			stopAll()
			return nil, err
		}
		allDone := true
		for v := 0; v < n; v++ {
			if !nodes[v].Done() {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		if round >= c.maxRounds {
			stopAll()
			return nil, roundLimit(a, round)
		}
		res.Rounds = round + 1
		for v := 0; v < n; v++ {
			start[v] <- true // send half
		}
		for i := 0; i < n; i++ {
			res.Messages += <-reports
		}
		if err := takeErr(); err != nil {
			// Workers are parked at the receive gate; stopAll's false
			// signal releases them there just as it does at round start.
			stopAll()
			return nil, err
		}
		for v := 0; v < n; v++ {
			start[v] <- true // receive half
		}
		for i := 0; i < n; i++ {
			<-reports
		}
	}
	stopAll()
	clk.tickRounds()
	outputs, err := collectOutputs(g, a, nodes)
	if err != nil {
		return nil, err
	}
	res.Outputs = outputs
	clk.tickOutputs()
	return res, nil
}

// collectOutputs gathers, sorts, and validates the per-node port sets.
func collectOutputs(g *graph.Graph, a Algorithm, nodes []Node) ([][]int, error) {
	outputs := make([][]int, len(nodes))
	if err := collectOutputsRange(g, a, nodes, 0, len(nodes), outputs); err != nil {
		return nil, err
	}
	return outputs, nil
}

// collectOutputsRange gathers, sorts, and validates the port sets of
// the node range [lo, hi), filling outputs[lo:hi]. All of the range's
// ports land in one freshly allocated flat buffer — OutputAppender
// nodes write onto it directly, legacy nodes are copied — and each
// node's row becomes a capped subslice, so collection costs O(1)
// allocations per range instead of one per node. Rows may alias the
// shared buffer but never each other, and a node with no output keeps
// a nil row, so Results stay byte-identical (reflect.DeepEqual) no
// matter which engine or shard count produced them. The first invalid
// node in ascending order wins the error, matching the sequential
// reference; safe for concurrent calls on disjoint ranges because the
// buffer is call-local and outputs rows are per-node.
func collectOutputsRange(g *graph.Graph, a Algorithm, nodes []Node, lo, hi int, outputs [][]int) error {
	var flat []int
	ends := make([]int, hi-lo)
	for v := lo; v < hi; v++ {
		start := len(flat)
		if ap, ok := nodes[v].(OutputAppender); ok {
			flat = ap.AppendOutput(flat)
		} else {
			flat = append(flat, nodes[v].Output()...)
		}
		row := flat[start:]
		sort.Ints(row)
		for k, p := range row {
			if p < 1 || p > g.Deg(v) {
				return fmt.Errorf("sim: algorithm %q: node %d output invalid port %d", a.Name(), v, p)
			}
			if k > 0 && row[k-1] == p {
				return fmt.Errorf("sim: algorithm %q: node %d output duplicate port %d", a.Name(), v, p)
			}
		}
		ends[v-lo] = len(flat)
	}
	// Subslice only after every append: the buffer no longer moves.
	start := 0
	for i, end := range ends {
		if end > start {
			outputs[lo+i] = flat[start:end:end]
		}
		start = end
	}
	return nil
}

// CheckConsistency verifies the paper's output well-formedness condition:
// if i ∈ X(v) and p(v,i) = (u,j) then j ∈ X(u).
func CheckConsistency(g *graph.Graph, outputs [][]int) error {
	chosen := make([]map[int]bool, g.N())
	for v, out := range outputs {
		chosen[v] = make(map[int]bool, len(out))
		for _, p := range out {
			chosen[v][p] = true
		}
	}
	for v, out := range outputs {
		for _, i := range out {
			q := g.P(v, i)
			if !chosen[q.Node][q.Num] {
				return fmt.Errorf("sim: inconsistent output: %d ∈ X(%d) but %d ∉ X(%d)", i, v, q.Num, q.Node)
			}
		}
	}
	return nil
}

// EdgeSet converts consistent outputs into the selected edge set D.
func EdgeSet(g *graph.Graph, outputs [][]int) (*graph.EdgeSet, error) {
	if err := CheckConsistency(g, outputs); err != nil {
		return nil, err
	}
	s := graph.NewEdgeSet(g.M())
	for v, out := range outputs {
		for _, i := range out {
			s.Add(g.EdgeAt(v, i))
		}
	}
	return s, nil
}

// RunToEdgeSet runs the algorithm sequentially and returns the selected
// edge set together with the execution statistics.
func RunToEdgeSet(g *graph.Graph, a Algorithm, opts ...Option) (*graph.EdgeSet, *Result, error) {
	res, err := RunSequential(g, a, opts...)
	if err != nil {
		return nil, nil, err
	}
	s, err := EdgeSet(g, res.Outputs)
	if err != nil {
		return nil, nil, err
	}
	return s, res, nil
}
