package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"eds/internal/lint/analysis"
)

// ArenaAlias enforces the lifetime contract of sim.StateArena: slices
// carved with Ints/Bools (and the arena itself) live exactly as long as
// one run. The engines rewind the arenas when the run's state returns
// to the pool, so a carve retained beyond the run aliases memory that a
// later, unrelated run will zero and hand out again. Like the outbox
// buffers, the corruption is engine-dependent — the legacy NewNode path
// heap-allocates and never recycles — which is precisely the class of
// divergence the equivalence suite cannot see.
//
// Within any function or closure that receives a *sim.StateArena
// parameter (BuildNodes implementations, program init hooks, carve
// helpers), the analyzer tracks the arena, the direct results of its
// Ints/Bools calls, and their local slice aliases, and reports:
//
//   - stores of the arena or a carved slice into a package-level
//     variable or any variable captured from an enclosing function;
//   - stores into a field of a sim.Algorithm implementor — algorithm
//     values outlive every run, so an arena-backed field is a dangling
//     view by the next Run* call (node state, which dies with the run,
//     may hold carves freely: that is what the arena is for);
//   - returning the arena or a carved slice from a method of a
//     sim.Algorithm implementor;
//   - sending either on a channel, or launching a goroutine that
//     captures one — BuildNodes is concurrency-safe only across
//     disjoint shard ranges, and an escaping goroutine outlives them
//     all.
//
// Free functions may return carves (arenaInts-style helpers are the
// sanctioned pattern); the analysis is intraprocedural, so only direct
// arena.Ints/arena.Bools results are tracked through such helpers'
// bodies, not their call sites.
var ArenaAlias = &analysis.Analyzer{
	Name: "arenaalias",
	Doc:  "flag retention of sim.StateArena carves beyond the run that owns them",
	Run:  runArenaAlias,
}

func runArenaAlias(pass *analysis.Pass) (any, error) {
	sim := simPackage(pass.Pkg)
	if sim == nil {
		return nil, nil
	}
	arenaType := simNamedType(sim, "StateArena")
	algIface := simInterface(sim, "Algorithm")
	if arenaType == nil {
		return nil, nil
	}
	isArenaPtr := func(t types.Type) bool {
		p, ok := t.(*types.Pointer)
		return ok && types.Identical(p.Elem(), arenaType)
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			var recv *ast.FieldList
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body, recv = fn.Type, fn.Body, fn.Recv
			case *ast.FuncLit:
				ftype, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil || ftype.Params == nil {
				return true
			}
			arenas := map[types.Object]bool{}
			for _, field := range ftype.Params.List {
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj != nil && isArenaPtr(obj.Type()) {
						arenas[obj] = true
					}
				}
			}
			if len(arenas) > 0 {
				checkArenaRetention(pass, n, body, recv, arenas, algIface)
			}
			return true
		})
	}
	return nil, nil
}

// checkArenaRetention analyzes one function whose arena parameters seed
// the tracked set of carved slices.
func checkArenaRetention(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt, recv *ast.FieldList, arenas map[types.Object]bool, algIface *types.Interface) {
	info := pass.TypesInfo

	// isArenaExpr reports whether e denotes a tracked arena pointer.
	isArenaExpr := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && arenas[info.Uses[id]]
	}

	// carves holds local variables bound to arena-backed slices.
	carves := map[types.Object]bool{}

	// isCarve reports whether e is an arena-backed slice: a direct
	// arena.Ints/arena.Bools call, a reslice of one, or a tracked alias.
	var isCarve func(e ast.Expr) bool
	isCarve = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return carves[info.Uses[e]]
		case *ast.SliceExpr:
			return isCarve(e.X)
		case *ast.CallExpr:
			sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
			if !ok || !isArenaExpr(sel.X) {
				return false
			}
			return sel.Sel.Name == "Ints" || sel.Sel.Name == "Bools"
		}
		return false
	}

	// Fixpoint: locals assigned from carves (or from other aliases)
	// join the tracked set, so `peer := arena.Ints(d); a.f = peer` is
	// still caught.
	addAlias := func(id *ast.Ident) bool {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || carves[obj] || !funcScopeContains(fn, obj) {
			return false
		}
		carves[obj] = true
		return true
	}
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			if n, ok := n.(*ast.AssignStmt); ok {
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || !isCarve(n.Rhs[i]) {
						continue
					}
					if addAlias(id) {
						grew = true
					}
				}
			}
			return true
		})
		if !grew {
			break
		}
	}

	rooted := func(e ast.Expr) bool { return isCarve(e) || isArenaExpr(e) }

	report := func(pos interface{ Pos() token.Pos }, what string) {
		pass.Reportf(pos.Pos(), "%s: arena memory is rewound and recycled when the run ends; carve per run or copy the data", what)
	}

	// onAlgorithm reports whether the base expression of a field store
	// is (a pointer to) a sim.Algorithm implementor.
	onAlgorithm := func(base ast.Expr) bool {
		t := pass.TypeOf(base)
		if t == nil {
			return false
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		return implementsEither(t, algIface)
	}

	// methodOnAlgorithm: does fn's receiver implement sim.Algorithm?
	// Only such methods are checked for carve returns — free carve
	// helpers (arenaInts and friends) legitimately return arena slices.
	methodOnAlgorithm := false
	if recv != nil && len(recv.List) > 0 {
		if t := pass.TypeOf(recv.List[0].Type); t != nil {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			methodOnAlgorithm = implementsEither(t, algIface)
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) || !rooted(n.Rhs[i]) {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					if onAlgorithm(l.X) {
						report(n, "arena carve stored in an algorithm field")
					}
				case *ast.Ident:
					obj := info.Defs[l]
					if obj == nil {
						obj = info.Uses[l]
					}
					if obj != nil && !funcScopeContains(fn, obj) {
						report(n, "arena carve stored outside the function")
					}
				}
			}
		case *ast.ReturnStmt:
			if !methodOnAlgorithm {
				return true
			}
			for _, res := range n.Results {
				if rooted(res) {
					report(n, "arena carve returned from an algorithm method")
				}
			}
		case *ast.SendStmt:
			if rooted(n.Value) {
				report(n, "arena carve sent on a channel")
			}
		case *ast.GoStmt:
			captured := false
			ast.Inspect(n.Call, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := info.Uses[id]; carves[obj] || arenas[obj] {
						captured = true
					}
				}
				return !captured
			})
			if captured {
				report(n, "arena captured by a goroutine")
			}
		}
		return true
	})
}
