package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eds/internal/core"
	"eds/internal/gen"
	"eds/internal/ratio"
	"eds/internal/sim"
	"eds/internal/verify"
)

// TestPortNumberingAdversaryQuick sweeps many random port numberings of
// the same topologies: the algorithms must stay feasible and within
// their guarantee for every numbering — the central promise of the
// port-numbering model. The optimum is numbering-independent, so it is
// computed once per topology.
func TestPortNumberingAdversaryQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Pick a topology.
		var g = gen.Petersen()
		switch rng.Intn(3) {
		case 0:
			g = gen.Petersen() // 3-regular
		case 1:
			g = gen.MustRandomRegular(rng, 12, 3)
		default:
			g = gen.MustRandomRegular(rng, 10, 4)
		}
		opt := verify.MinimumMaximalMatching(g).Count()
		d, _ := g.Regular()
		var alg sim.Algorithm
		var bound ratio.R
		if d%2 == 1 {
			alg = core.RegularOdd{}
			bound = ratio.OddRegularBound(d)
		} else {
			alg = core.PortOne{}
			bound = ratio.EvenRegularBound(d)
		}
		// Sweep several adversarial numberings of the same topology.
		for trial := 0; trial < 4; trial++ {
			h := gen.RelabelPorts(rng, g)
			out, _, err := sim.RunToEdgeSet(h, alg)
			if err != nil {
				return false
			}
			if !verify.IsEdgeDominatingSet(h, out) {
				return false
			}
			measured := ratio.New(int64(out.Count()), int64(opt))
			if !measured.LessEq(bound) {
				return false
			}
			// A(Δ) must hold its bound under the same numbering too.
			gAlg := core.NewGeneral(d)
			out2, _, err := sim.RunToEdgeSet(h, gAlg)
			if err != nil {
				return false
			}
			if !verify.IsEdgeDominatingSet(h, out2) {
				return false
			}
			m2 := ratio.New(int64(out2.Count()), int64(opt))
			if !m2.LessEq(ratio.BoundedDegreeBound(d)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
