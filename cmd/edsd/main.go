// Command edsd is the edge-dominating-set daemon: a long-running HTTP
// service that executes the paper's distributed algorithms on graphs
// posted by clients, with admission control, per-request deadlines, a
// result cache, and graceful shutdown.
//
// Usage:
//
//	edsd -addr :8080
//	edsd -addr :8080 -workers 16 -queue 128 -cache 1024 -timeout 10s
//
// Run a graph:
//
//	edsrun -graph cycle:12 ... writes the same wire format this accepts:
//	curl --data-binary @graph.txt 'localhost:8080/v1/run?alg=auto&engine=auto'
//
// Operational endpoints: GET /healthz (200 while serving, 503 while
// draining), GET /statsz (request counts, cache hit rate, queue depth,
// per-algorithm latency histograms, cumulative engine setup/rounds
// wall-time split). With -pprof, net/http/pprof is mounted under
// /debug/pprof/ — off by default because it exposes heap contents.
//
// On SIGINT/SIGTERM the daemon stops accepting new runs, keeps serving
// the in-flight ones until they finish or the drain deadline passes,
// then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eds/internal/graph"
	"eds/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("edsd: ")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth beyond the workers")
	cache := flag.Int("cache", 256, "result cache entries (negative disables)")
	maxBody := flag.Int64("max-body", 32<<20, "request body cap in bytes")
	maxNodes := flag.Int("max-nodes", graph.DefaultLimits.MaxNodes, "decoded graph node cap")
	maxPorts := flag.Int("max-ports", graph.DefaultLimits.MaxPorts, "decoded graph port cap")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "largest client-requestable deadline")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain deadline for in-flight runs")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes heap contents; keep off on untrusted networks)")
	flag.Parse()

	s := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		MaxBodyBytes:   *maxBody,
		Limits:         graph.Limits{MaxNodes: *maxNodes, MaxPorts: *maxPorts},
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		CacheEntries:   *cache,
		EnablePprof:    *enablePprof,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("listen: %v", err)
	case sig := <-sigc:
		log.Printf("received %v, draining (deadline %s)", sig, *drain)
	}

	// Two-phase shutdown: StartDraining rejects new runs and flips
	// /healthz so load balancers stop routing here; Shutdown then waits
	// for in-flight handlers (and their engine runs) to finish.
	s.StartDraining()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v (in-flight runs abandoned)", err)
		os.Exit(1)
	}
	log.Printf("drained cleanly")
}
