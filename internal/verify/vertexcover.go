package verify

import (
	"eds/internal/graph"
)

// IsVertexCover reports whether the flagged node set covers every edge
// of g (loops require their node to be in the cover).
func IsVertexCover(g *graph.Graph, cover []bool) bool {
	for _, e := range g.Edges() {
		if !cover[e.A.Node] && !cover[e.B.Node] {
			return false
		}
	}
	return true
}

// MinimumVertexCover returns a minimum vertex cover by branch and bound:
// for an uncovered edge {u,v}, any cover contains u or v. Exponential;
// small instances only. The matching lower bound prunes the search.
func MinimumVertexCover(g *graph.Graph) []bool {
	s := &vcSolver{g: g, in: make([]bool, g.N()), best: make([]bool, g.N())}
	for v := range s.best {
		s.best[v] = true // the full node set always covers
	}
	s.bestSize = g.N()
	s.search(0, 0)
	return s.best
}

type vcSolver struct {
	g        *graph.Graph
	in       []bool
	best     []bool
	bestSize int
}

// uncoveredFrom returns the smallest edge index >= from not covered by
// the current node set, or -1.
func (s *vcSolver) uncoveredFrom(from int) int {
	for idx := from; idx < s.g.M(); idx++ {
		e := s.g.Edge(idx)
		if !s.in[e.A.Node] && !s.in[e.B.Node] {
			return idx
		}
	}
	return -1
}

// matchingLB greedily builds a matching among uncovered edges; each of
// its edges needs its own cover node.
func (s *vcSolver) matchingLB() int {
	used := make([]bool, s.g.N())
	lb := 0
	for idx := 0; idx < s.g.M(); idx++ {
		e := s.g.Edge(idx)
		if e.IsLoop() || s.in[e.A.Node] || s.in[e.B.Node] {
			continue
		}
		if !used[e.A.Node] && !used[e.B.Node] {
			used[e.A.Node] = true
			used[e.B.Node] = true
			lb++
		}
	}
	return lb
}

func (s *vcSolver) search(from, size int) {
	pivot := s.uncoveredFrom(from)
	if pivot == -1 {
		if size < s.bestSize {
			copy(s.best, s.in)
			s.bestSize = size
		}
		return
	}
	if size+s.matchingLB() >= s.bestSize {
		return
	}
	e := s.g.Edge(pivot)
	for _, v := range []int{e.A.Node, e.B.Node} {
		s.in[v] = true
		s.search(pivot, size+1)
		s.in[v] = false
		if e.IsLoop() {
			break // both branches identical
		}
	}
}
