package sim

import (
	"runtime"

	"eds/internal/graph"
)

// AutoShardedPorts is the port count (sum of degrees ≈ nodes×degree)
// at which engine auto-selection (eds.RunAuto, edsrun -engine auto, the
// harness scaling studies) switches from the sequential reference to
// the sharded engine. Ports, not nodes, measure the work the sharded
// engine parallelizes — every phase (node construction, send, routing
// gather, receive, output collection) is linear in ports — while its
// overhead is per-round barriers and per-run worker spawns, which are
// independent of graph size. An earlier node-count threshold (4096)
// mis-ranked dense graphs small and sparse graphs large; with the
// parallel prologue the port crossover sits in the low tens of
// thousands on multi-core hardware.
const AutoShardedPorts = 16384

// EngineChoice is RunAuto's policy as a pure function of the run's
// setup volume (n nodes, ports = sum of degrees) and the available
// parallelism: "sequential" when only one CPU is usable or the graph is
// too small for the barrier overhead to pay off, "sharded" otherwise.
// Exported so the decision boundary is pinned by a table-driven test
// instead of re-implemented by callers.
func EngineChoice(n, ports, procs int) string {
	if procs <= 1 || ports < AutoShardedPorts {
		return "sequential"
	}
	return "sharded"
}

// RunAuto picks an engine by setup volume via EngineChoice — the
// sequential reference for small graphs or single-CPU processes, the
// sharded engine for large graphs on multi-core — and is the single
// home of that policy for the facade, the CLI, the server, and the
// harness studies. Every engine returns identical Results, so the
// choice affects only wall-clock time; both engines honour
// WithRoundHook and WithContext, so hooked or cancellable runs take the
// same path as any other.
func RunAuto(g *graph.Graph, a Algorithm, opts ...Option) (*Result, error) {
	if EngineChoice(g.N(), g.NumPorts(), runtime.GOMAXPROCS(0)) == "sharded" {
		return RunSharded(g, a, opts...)
	}
	return RunSequential(g, a, opts...)
}

// Engines returns the named engine entry points, the single registry the
// harness studies and tooling resolve engine names against.
func Engines() map[string]func(*graph.Graph, Algorithm, ...Option) (*Result, error) {
	return map[string]func(*graph.Graph, Algorithm, ...Option) (*Result, error){
		"sequential": RunSequential,
		"concurrent": RunConcurrent,
		"sharded":    RunSharded,
	}
}

// WithShards sets the number of worker shards used by RunSharded. Values
// <= 0 select runtime.GOMAXPROCS(0). The shard count never affects the
// Result, only the parallelism.
func WithShards(p int) Option {
	return func(c *config) { c.shards = p }
}

// Worker phase codes sent over the runState.work channel. phaseStop ends
// the pool without closing the channel, so a pooled channel survives
// into the next run.
const (
	phaseStop = iota
	phaseInit
	phaseSend
	phaseRecv
	phaseOutput
)

// shardedRun is the per-run coordination of the sharded engine: p
// persistent workers spawned once at run start loop over phase tokens,
// so a round costs channel operations only — no goroutine spawns, no
// closures, no allocation. The coordinator writes round between
// barriers, while every worker is parked on the work channel; the
// channel send/receive pair orders those writes before the workers'
// reads.
type shardedRun struct {
	st      *runState
	g       *graph.Graph
	a       Algorithm
	bulk    BulkAlgorithm // non-nil: build nodes per shard inside phaseInit
	off     []int32
	route   []int32
	p       int
	round   int
	outputs [][]int // phaseOutput destination, set before the barrier
}

// worker is one shard's loop. It exits on phaseStop, signalling idle
// first; after that signal it never touches shared state again, so the
// coordinator's stop barrier doubles as the release fence for the
// pooled buffers.
func (r *shardedRun) worker(s int) {
	lo, hi := r.st.bounds[s], r.st.bounds[s+1]
	for {
		switch <-r.st.work[s] {
		case phaseInit:
			r.initPhase(s, lo, hi)
		case phaseSend:
			r.sendPhase(s, lo, hi)
		case phaseRecv:
			r.recvPhase(s, lo, hi)
		case phaseOutput:
			r.outputPhase(s, lo, hi)
		case phaseStop:
			r.st.idle <- struct{}{}
			return
		}
		r.st.idle <- struct{}{}
	}
}

// barrier runs one phase on every worker and waits for all of them.
func (r *shardedRun) barrier(phase int) {
	for i := 0; i < r.p; i++ {
		r.st.work[i] <- phase
	}
	for i := 0; i < r.p; i++ {
		<-r.st.idle
	}
}

// initPhase builds the shard's nodes when the algorithm is
// bulk-capable — this is the parallel prologue: every shard carves its
// state from its own arena concurrently, so setup scales with P — and
// retires nodes that are born done (zero-round algorithms). Legacy
// algorithms were already built serially by the coordinator (NewNode
// order is observable to them, e.g. via shared counters), so for those
// the phase only retires.
func (r *shardedRun) initPhase(s, lo, hi int) {
	st := r.st
	if r.bulk != nil {
		if err := st.buildNodes(r.g, r.a, r.bulk, lo, hi, &st.arenas[s]); err != nil {
			st.stats[s].err = err
			return
		}
	}
	pending := 0
	for v := lo; v < hi; v++ {
		if st.nodes[v].Done() {
			st.done[v] = true
		} else {
			pending++
		}
	}
	st.stats[s].pending = pending
}

// outputPhase collects, sorts, and validates the shard's node outputs
// into the coordinator's outputs slice. Ranges are disjoint and each
// call appends to its own flat buffer, so the epilogue parallelizes
// like the prologue; the first invalid shard in index order wins the
// error, which — shards being contiguous ascending ranges — is the
// same lowest-node error the sequential engine reports.
func (r *shardedRun) outputPhase(s, lo, hi int) {
	if err := collectOutputsRange(r.g, r.a, r.st.nodes, lo, hi, r.outputs); err != nil {
		r.st.stats[s].err = err
	}
}

// sendPhase writes the shard's outbox windows and counts non-nil
// messages. A malformed Send stops the shard at its first bad node;
// shards are contiguous ascending ranges, so the first error in shard
// order is the lowest misbehaving node — the same error the sequential
// engine reports.
func (r *shardedRun) sendPhase(s, lo, hi int) {
	st := r.st
	sent := 0
	for v := lo; v < hi; v++ {
		slot := st.outbox[r.off[v]:r.off[v+1]:r.off[v+1]]
		if st.done[v] {
			clear(slot)
			continue
		}
		c, err := st.fillSlot(r.a, v, r.round, slot)
		if err != nil {
			st.stats[s].err = err
			return
		}
		sent += c
	}
	st.stats[s].sent = sent
}

// recvPhase gathers the shard's inbox slots through the routing table,
// delivers each node's contiguous inbox window, and retires nodes that
// report Done.
func (r *shardedRun) recvPhase(s, lo, hi int) {
	st := r.st
	for j := int(r.off[lo]); j < int(r.off[hi]); j++ {
		st.inbox[j] = st.outbox[r.route[j]]
	}
	pending := 0
	for v := lo; v < hi; v++ {
		if st.done[v] {
			continue
		}
		st.nodes[v].Receive(r.round, st.inbox[r.off[v]:r.off[v+1]:r.off[v+1]])
		if st.nodes[v].Done() {
			st.done[v] = true
		} else {
			pending++
		}
	}
	st.stats[s].pending = pending
}

// RunSharded executes the algorithm with P worker shards over the graph's
// flat routing table. Nodes are partitioned into contiguous ranges
// balanced by port count; each round runs two phases separated by a
// channel barrier:
//
//	send:    every shard writes its nodes' outgoing messages into a flat
//	         outbox indexed by global port number and counts them;
//	receive: every shard gathers its inbox slots through the routing
//	         table (inbox[j] = outbox[route[j]]), delivers each node's
//	         contiguous inbox slice, and retires nodes that report Done.
//
// The prologue and epilogue are parallel too: bulk-capable algorithms
// (BulkAlgorithm) have each shard's nodes built inside that shard's
// persistent worker, state carved from a per-shard StateArena, and each
// shard collects and validates its own outputs, so setup and teardown
// scale with P instead of serializing around the round loop.
//
// The two flat arrays, the node and retirement slices, and the shard
// accounting all come from a pooled runState, and the P workers persist
// for the whole run, so a steady-state round performs zero allocations:
// nodes implementing BufferedNode write their messages straight into
// the outbox (see fillSlot), and the barriers are plain channel
// operations. Results are bit-identical to RunSequential for every
// shard count.
//
// WithRoundHook is honoured: the hook observes the flat outbox through
// per-node subslices, invoked between the send and receive barriers
// where no worker goroutine is running, so it sees exactly the matrix
// the sequential engine would show (retired nodes' slots are nil).
func RunSharded(g *graph.Graph, a Algorithm, opts ...Option) (*Result, error) {
	c := buildConfig(opts)
	if err := c.ctxErr(a); err != nil {
		return nil, err
	}
	n := g.N()
	p := c.shards
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}

	clk := startClock(&c)
	st := acquireState(n, g.NumPorts(), p)
	// Release only after the workers have stopped: defers run in LIFO
	// order, so the stop barrier deferred below fences every worker off
	// the buffers before they return to the pool — on every exit path,
	// including cancellation and malformed-send errors.
	defer st.release()
	shardBounds(st.bounds, g.PortOffsets(), n, p)

	r := &shardedRun{st: st, g: g, a: a, off: g.PortOffsets(), route: g.RoutingTable(), p: p}
	r.bulk, _ = a.(BulkAlgorithm)
	if r.bulk == nil {
		// Legacy prologue: NewNode in ascending node order on the
		// coordinator, because per-node construction may observe its own
		// ordering (idmatching's counter did before it went bulk).
		if err := st.buildNodes(g, a, nil, 0, n, &st.arenas[0]); err != nil {
			return nil, err
		}
	}
	for s := 0; s < p; s++ {
		go r.worker(s)
	}
	defer r.barrier(phaseStop)

	// Parallel prologue: bulk algorithms build their shard's nodes here,
	// every shard at once; all shards then retire born-done nodes.
	r.barrier(phaseInit)
	for s := 0; s < p; s++ {
		if err := st.stats[s].err; err != nil {
			return nil, err
		}
	}

	var hookView [][]Message
	if c.roundHook != nil {
		hookView = st.hookRows(r.off, n)
	}

	clk.tickSetup()
	res := &Result{}
	for round := 0; ; round++ {
		if err := c.ctxErr(a); err != nil {
			return nil, err
		}
		pending := 0
		for s := 0; s < p; s++ {
			pending += st.stats[s].pending
		}
		if pending == 0 {
			break
		}
		if round >= c.maxRounds {
			return nil, roundLimit(a, round)
		}
		res.Rounds = round + 1

		r.round = round
		r.barrier(phaseSend)
		for s := 0; s < p; s++ {
			if err := st.stats[s].err; err != nil {
				return nil, err
			}
			res.Messages += st.stats[s].sent
		}
		if c.roundHook != nil {
			c.roundHook(round, hookView)
		}

		r.barrier(phaseRecv)
	}
	clk.tickRounds()

	// Parallel epilogue: every shard collects and validates its own
	// output range; the coordinator only checks the per-shard errors in
	// shard order (lowest bad node wins, as in the sequential engine).
	r.outputs = make([][]int, n)
	r.barrier(phaseOutput)
	for s := 0; s < p; s++ {
		if err := st.stats[s].err; err != nil {
			return nil, err
		}
	}
	res.Outputs = r.outputs
	clk.tickOutputs()
	return res, nil
}

// shardBounds partitions the nodes into p contiguous ranges balanced by
// port count (the unit of per-round work), writing p+1 boundaries into
// bounds. Trailing shards may be empty on degenerate inputs; that only
// idles a worker.
func shardBounds(bounds []int, off []int32, n, p int) {
	total := int(off[n])
	if total == 0 {
		// Port-free graph (isolated nodes): balance by node count.
		for s := 0; s <= p; s++ {
			bounds[s] = s * n / p
		}
		return
	}
	bounds[0] = 0
	v := 0
	for s := 1; s < p; s++ {
		target := total * s / p
		for v < n && int(off[v+1]) <= target {
			v++
		}
		bounds[s] = v
	}
	bounds[p] = n
}
