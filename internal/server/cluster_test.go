// Multi-replica end-to-end suite for the cluster tier, driven through
// real HTTP stacks: three edsd replicas with static membership route
// cache misses to the digest's owner, fill from its cache, degrade to
// local compute when the owner dies or drains, and coalesce identical
// requests fleet-wide through the owner's batch window. Run under -race
// in CI (the cluster-e2e job).
//
// Lives in package server (like server_test.go) to reach the stats
// internals and the runEngine seam.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eds/internal/cluster"
	"eds/internal/gen"
	"eds/internal/graph"
)

// switchHandler lets an httptest.Server exist before the Server that
// will answer on it: the fleet's base URLs must be known to build every
// replica's cluster config, and the cluster must exist to build the
// Server.
type switchHandler struct {
	h atomic.Pointer[http.Handler]
}

func (s *switchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := s.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "not ready", http.StatusServiceUnavailable)
}

type fleet struct {
	servers  []*Server
	ts       []*httptest.Server
	urls     []string
	clusters []*cluster.Cluster
}

// startFleet brings up n replicas that all know each other. mutate (may
// be nil) adjusts each replica's server and cluster config before
// construction.
func startFleet(t *testing.T, n int, mutate func(i int, cfg *Config, ccfg *cluster.Config)) *fleet {
	t.Helper()
	f := &fleet{}
	sws := make([]*switchHandler, n)
	for i := 0; i < n; i++ {
		sw := &switchHandler{}
		ts := httptest.NewServer(sw)
		t.Cleanup(ts.Close)
		sws[i] = sw
		f.ts = append(f.ts, ts)
		f.urls = append(f.urls, ts.URL)
	}
	for i := 0; i < n; i++ {
		cfg := Config{Workers: 4}
		ccfg := cluster.Config{
			Self:           f.urls[i],
			Peers:          f.urls,
			HealthInterval: 25 * time.Millisecond,
			Backoff:        time.Millisecond,
			MaxRetries:     1,
		}
		if mutate != nil {
			mutate(i, &cfg, &ccfg)
		}
		cl, err := cluster.New(ccfg)
		if err != nil {
			t.Fatalf("cluster.New(%d): %v", i, err)
		}
		cfg.Cluster = cl
		srv := New(cfg)
		f.servers = append(f.servers, srv)
		f.clusters = append(f.clusters, cl)
		h := srv.Handler()
		sws[i].h.Store(&h)
	}
	// Handlers first, probes second: a probe that lands before its
	// target's handler is mounted would mark a healthy peer down.
	for _, cl := range f.clusters {
		cl.Start()
		t.Cleanup(cl.Stop)
	}
	return f
}

// ownerIndex returns which replica owns g's digest over the full
// membership.
func (f *fleet) ownerIndex(t *testing.T, g *graph.Graph) int {
	t.Helper()
	d := graph.Digest(g)
	owner := f.clusters[0].OwnerAmongAll(d[:])
	for i, u := range f.urls {
		if u == owner {
			return i
		}
	}
	t.Fatalf("owner %s is not a fleet member", owner)
	return -1
}

// graphOwnedBy searches the cycle family for a graph owned by replica
// want, so tests can address a known owner and known non-owners.
func (f *fleet) graphOwnedBy(t *testing.T, want int) *graph.Graph {
	t.Helper()
	for k := 8; k < 200; k++ {
		g := gen.Cycle(k)
		if f.ownerIndex(t, g) == want {
			return g
		}
	}
	t.Fatalf("no cycle graph owned by replica %d in 192 tries", want)
	return nil
}

func (f *fleet) statsz(t *testing.T, i int) statszResponse {
	t.Helper()
	resp, err := f.ts[i].Client().Get(f.urls[i] + "/statsz")
	if err != nil {
		t.Fatalf("statsz(%d): %v", i, err)
	}
	defer resp.Body.Close()
	var st statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding statsz(%d): %v", i, err)
	}
	return st
}

// totalRuns sums the fleet's engine-run counters — the "computed
// exactly once" witness. Dead replicas (closed test servers) are
// skipped: their runs died with them.
func (f *fleet) totalRuns(t *testing.T) int64 {
	t.Helper()
	var sum int64
	for i := range f.servers {
		sum += f.servers[i].st.snapshot().runs
	}
	return sum
}

// TestClusterOwnerRouting is the acceptance path: a graph computed once
// on its owner is served from cache by every replica — the owner from
// its own cache, non-owners via one fill each that then seeds their
// local cache — with zero extra engine runs fleet-wide.
func TestClusterOwnerRouting(t *testing.T) {
	f := startFleet(t, 3, nil)
	g := f.graphOwnedBy(t, 0)
	body := graphBytes(t, g)

	// First request lands on the owner: a plain local miss + run.
	resp, out := postRun(t, f.ts[0].Client(), f.urls[0], "?alg=auto", body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("owner: status %d, X-Cache %q (body %s)", resp.StatusCode, resp.Header.Get("X-Cache"), out)
	}
	if sum := decodeRun(t, out); !sum.Dominating {
		t.Fatalf("owner run is not dominating: %+v", sum)
	}

	// Every non-owner misses locally, fills from the owner's cache, and
	// returns byte-identical results.
	for i := 1; i < 3; i++ {
		resp, got := postRun(t, f.ts[i].Client(), f.urls[i], "?alg=auto", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica %d: status %d (body %s)", i, resp.StatusCode, got)
		}
		if c := resp.Header.Get("X-Cache"); c != "fill" {
			t.Errorf("replica %d: X-Cache = %q, want fill", i, c)
		}
		if oc := resp.Header.Get("X-Fill-Cache"); oc != "hit" {
			t.Errorf("replica %d: X-Fill-Cache = %q, want hit (the owner had it cached)", i, oc)
		}
		if own := resp.Header.Get("X-Eds-Owner"); own != f.urls[0] {
			t.Errorf("replica %d: X-Eds-Owner = %q, want %q", i, own, f.urls[0])
		}
		if !bytes.Equal(out, got) {
			t.Errorf("replica %d returned different bytes than the owner", i)
		}
	}

	// The fill seeded each non-owner's local cache: repeats are local
	// hits, no more peer traffic.
	for i := 1; i < 3; i++ {
		resp, _ := postRun(t, f.ts[i].Client(), f.urls[i], "?alg=auto", body)
		if c := resp.Header.Get("X-Cache"); c != "hit" {
			t.Errorf("replica %d repeat: X-Cache = %q, want local hit", i, c)
		}
	}

	// Exactly one engine run happened anywhere, and it happened on the
	// owner (statsz is the witness, as the acceptance criteria demand).
	if runs := f.totalRuns(t); runs != 1 {
		t.Errorf("fleet-wide engine runs = %d, want 1", runs)
	}
	if st := f.statsz(t, 0); st.EngineTime.Runs != 1 {
		t.Errorf("owner engine runs = %d, want 1", st.EngineTime.Runs)
	}

	// Per-peer counters: the owner served one fill for each non-owner;
	// each non-owner sent and relayed exactly one fill to the owner.
	ownerStats := f.statsz(t, 0)
	if ownerStats.Cluster == nil {
		t.Fatal("owner statsz has no cluster section")
	}
	for i := 1; i < 3; i++ {
		pc, ok := ownerStats.Cluster.Peers[f.urls[i]]
		if !ok || pc.FillsServed != 1 {
			t.Errorf("owner fills_served for replica %d = %+v, want 1", i, pc)
		}
		st := f.statsz(t, i)
		if st.Cluster == nil {
			t.Fatalf("replica %d statsz has no cluster section", i)
		}
		oc := st.Cluster.Peers[f.urls[0]]
		if oc.FillsSent != 1 || oc.FillsRelayed != 1 || oc.Fallbacks != 0 {
			t.Errorf("replica %d counters to owner = %+v, want sent=1 relayed=1 fallbacks=0", i, oc)
		}
	}
}

// TestClusterOwnerDownFallback kills the owner and checks the passive
// degradation path: fills fail, requests fall back to local compute,
// and nothing surfaces to the client as an error.
func TestClusterOwnerDownFallback(t *testing.T) {
	f := startFleet(t, 3, func(i int, cfg *Config, ccfg *cluster.Config) {
		// No active probes: this test exercises the passive mark-down on
		// fill failure, not the health loop.
		ccfg.HealthInterval = time.Hour
	})
	g := f.graphOwnedBy(t, 2)
	body := graphBytes(t, g)

	f.ts[2].Close() // the owner dies

	for i := 0; i < 2; i++ {
		resp, out := postRun(t, f.ts[i].Client(), f.urls[i], "?alg=auto", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica %d with dead owner: status %d (body %s)", i, resp.StatusCode, out)
		}
	}
	// Replica 0 tried the owner first, failed, and fell back; its
	// counters prove the path taken.
	st := f.statsz(t, 0)
	oc := st.Cluster.Peers[f.urls[2]]
	if oc.FillsSent != 1 || oc.Fallbacks != 1 || oc.FillsRelayed != 0 {
		t.Errorf("replica 0 counters to dead owner = %+v, want sent=1 fallbacks=1 relayed=0", oc)
	}
	if st.Cluster.Peers[f.urls[2]].Ready {
		t.Error("dead owner still shows ready in replica 0's statsz after a failed fill")
	}
	// The dead peer was marked down passively, so repeats skip it
	// entirely: replica 0 now owns the digest among the survivors or
	// fills from replica 1 — either way, it serves from its local cache
	// seeded by the fallback run.
	resp, _ := postRun(t, f.ts[0].Client(), f.urls[0], "?alg=auto", body)
	if c := resp.Header.Get("X-Cache"); c != "hit" {
		t.Errorf("replica 0 repeat after fallback: X-Cache = %q, want hit", c)
	}
}

// TestClusterDrainAwareRouting drains the owner and checks the active
// path: peers' health probes see /readyz flip, ownership moves to a
// surviving replica, and the draining replica finishes with zero new
// engine runs and zero fills routed at it.
func TestClusterDrainAwareRouting(t *testing.T) {
	f := startFleet(t, 3, nil)
	g := f.graphOwnedBy(t, 1)
	body := graphBytes(t, g)

	f.servers[1].StartDraining()
	// Both survivors' probes must notice before we route.
	for _, i := range []int{0, 2} {
		cl := f.clusters[i]
		waitFor(t, func() bool {
			for _, ps := range cl.Snapshot() {
				if ps.URL == f.urls[1] {
					return !ps.Ready
				}
			}
			return false
		})
	}

	resp, out := postRun(t, f.ts[0].Client(), f.urls[0], "?alg=auto", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request during owner drain: status %d (body %s)", resp.StatusCode, out)
	}
	drainSt := f.statsz(t, 1)
	if drainSt.EngineTime.Runs != 0 {
		t.Errorf("draining replica ran %d engines, want 0", drainSt.EngineTime.Runs)
	}
	if pc := drainSt.Cluster.Peers[f.urls[0]]; pc.FillsServed != 0 {
		t.Errorf("draining replica served %d fills, want 0 (routing must avoid it)", pc.FillsServed)
	}
	if st := f.statsz(t, 0); st.Cluster.Peers[f.urls[1]].Fallbacks != 0 {
		t.Error("replica 0 fell back instead of routing around the draining owner a priori")
	}
}

// TestClusterFleetWideBatching fires identical concurrent requests at
// every replica inside one batch window: owner routing funnels them all
// onto the owner, whose windowed leader serves the whole fleet with
// exactly one engine run.
func TestClusterFleetWideBatching(t *testing.T) {
	f := startFleet(t, 3, func(i int, cfg *Config, ccfg *cluster.Config) {
		cfg.BatchWindow = 250 * time.Millisecond
	})
	g := f.graphOwnedBy(t, 0)
	body := graphBytes(t, g)

	const perReplica = 4
	var wg sync.WaitGroup
	errs := make(chan string, 3*perReplica)
	for i := 0; i < 3; i++ {
		for j := 0; j < perReplica; j++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, out := postRun(t, f.ts[i].Client(), f.urls[i], "?alg=auto&timeout=30s", body)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("replica %d: status %d (body %s)", i, resp.StatusCode, out)
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	if runs := f.totalRuns(t); runs != 1 {
		t.Errorf("fleet-wide engine runs = %d for %d identical concurrent requests, want exactly 1", runs, 3*perReplica)
	}
	st := f.statsz(t, 0)
	if st.Batch.Sizes.Count != 1 {
		t.Errorf("owner batch runs = %d, want 1", st.Batch.Sizes.Count)
	}
	if st.Batch.Sizes.Max < 2 {
		t.Errorf("owner batch size = %d, want >= 2 (the window must have coalesced concurrent requests)", st.Batch.Sizes.Max)
	}
}

// TestClusterFillEndpointHardening pins the CONTRIBUTING invariant: the
// internal fill endpoint enforces the same caps and discipline as the
// public one — a peer must never be a way around ReadGraphLimits, the
// body cap, draining, or the stream rules.
func TestClusterFillEndpointHardening(t *testing.T) {
	s := New(Config{Limits: graph.Limits{MaxNodes: 100, MaxPorts: 400}, MaxBodyBytes: 2048})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	fill := func(query, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/internal/v1/fill"+query, "text/plain", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("POST fill: %v", err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	t.Run("graph over the node cap", func(t *testing.T) {
		resp, body := fill("", "nodes 101\n")
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("status = %d, want 413 (body %s)", resp.StatusCode, body)
		}
	})
	t.Run("body over the byte cap", func(t *testing.T) {
		resp, _ := fill("", string(bytes.Repeat([]byte("# pad\n"), 1000)))
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("status = %d, want 413", resp.StatusCode)
		}
	})
	t.Run("malformed graph", func(t *testing.T) {
		resp, _ := fill("", "nodes zz\n")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("stream rejected", func(t *testing.T) {
		resp, _ := fill("?edges=1&stream=1", "nodes 4\nconn 0 1 1 1\nconn 1 2 2 1\nconn 2 2 3 1\nconn 3 2 0 2\n")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400 (streams are not fillable)", resp.StatusCode)
		}
	})
	t.Run("draining answers 503", func(t *testing.T) {
		s.StartDraining()
		resp, _ := fill("", "nodes 4\nconn 0 1 1 1\nconn 1 2 2 1\nconn 2 2 3 1\nconn 3 2 0 2\n")
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("status = %d, want 503", resp.StatusCode)
		}
	})
	t.Run("fill hit is served from cache and works end to end", func(t *testing.T) {
		s2 := New(Config{})
		ts2 := httptest.NewServer(s2.Handler())
		defer ts2.Close()
		body := graphBytes(t, gen.Cycle(10))
		resp, err := ts2.Client().Post(ts2.URL+"/internal/v1/fill?alg=auto", "text/plain", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
			t.Errorf("first fill: status %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
		}
		resp2, err := ts2.Client().Post(ts2.URL+"/internal/v1/fill?alg=auto", "text/plain", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp2.Body.Close()
		if resp2.Header.Get("X-Cache") != "hit" {
			t.Errorf("second fill: X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
		}
	})
}

// logCapture is a slog.Handler that records every line, so tests can
// follow a request ID across replicas.
type logCapture struct {
	mu   sync.Mutex
	recs []map[string]string
}

func (l *logCapture) Enabled(context.Context, slog.Level) bool { return true }
func (l *logCapture) WithAttrs([]slog.Attr) slog.Handler       { return l }
func (l *logCapture) WithGroup(string) slog.Handler            { return l }
func (l *logCapture) Handle(_ context.Context, r slog.Record) error {
	rec := map[string]string{"msg": r.Message}
	r.Attrs(func(a slog.Attr) bool {
		rec[a.Key] = a.Value.String()
		return true
	})
	l.mu.Lock()
	l.recs = append(l.recs, rec)
	l.mu.Unlock()
	return nil
}

func (l *logCapture) find(match func(map[string]string) bool) map[string]string {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range l.recs {
		if match(r) {
			return r
		}
	}
	return nil
}

// TestClusterRequestIDPropagation follows one request ID from the
// client, through a non-owner, across the fill hop, into the owner's
// request log.
func TestClusterRequestIDPropagation(t *testing.T) {
	captures := make([]*logCapture, 3)
	f := startFleet(t, 3, func(i int, cfg *Config, ccfg *cluster.Config) {
		captures[i] = &logCapture{}
		cfg.Logger = slog.New(captures[i])
	})
	g := f.graphOwnedBy(t, 1)
	body := graphBytes(t, g)

	const id = "trace-me-42"
	req, err := http.NewRequest(http.MethodPost, f.urls[0]+"/v1/run?alg=auto", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", id)
	resp, err := f.ts[0].Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != id {
		t.Errorf("response X-Request-ID = %q, want the client's %q echoed", got, id)
	}
	if resp.Header.Get("X-Cache") != "fill" {
		t.Fatalf("X-Cache = %q, want fill (replica 0 does not own this digest)", resp.Header.Get("X-Cache"))
	}

	// The non-owner logged the public request under the client's ID...
	if captures[0].find(func(r map[string]string) bool {
		return r["msg"] == "request" && r["id"] == id && r["path"] == "/v1/run"
	}) == nil {
		t.Error("replica 0 request log has no line for the client's request ID")
	}
	// ...and the owner logged the fill hop under the same ID, attributed
	// to the requesting peer.
	if captures[1].find(func(r map[string]string) bool {
		return r["msg"] == "request" && r["id"] == id && r["path"] == "/internal/v1/fill" && r["fill_for"] == f.urls[0]
	}) == nil {
		t.Errorf("owner request log has no fill line for ID %q from peer %q", id, f.urls[0])
	}
}

// TestRequestIDGenerated checks the no-header path: the server mints an
// ID and echoes it.
func TestRequestIDGenerated(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := postRun(t, ts.Client(), ts.URL, "", graphBytes(t, gen.Cycle(8)))
	id := resp.Header.Get("X-Request-ID")
	if len(id) != 16 {
		t.Errorf("generated X-Request-ID = %q, want 16 hex characters", id)
	}
}

// TestLivezReadyzSplit pins the probe split: draining flips readiness
// (and its /healthz alias) but never liveness.
func TestLivezReadyzSplit(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	get := func(path string) int {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, path := range []string{"/livez", "/readyz", "/healthz"} {
		if code := get(path); code != http.StatusOK {
			t.Errorf("GET %s before drain = %d, want 200", path, code)
		}
	}
	s.StartDraining()
	if code := get("/livez"); code != http.StatusOK {
		t.Errorf("GET /livez during drain = %d, want 200 (the process is alive, just leaving)", code)
	}
	for _, path := range []string{"/readyz", "/healthz"} {
		if code := get(path); code != http.StatusServiceUnavailable {
			t.Errorf("GET %s during drain = %d, want 503", path, code)
		}
	}
}
