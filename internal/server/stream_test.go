// Streaming-path suite: ?edges=1&stream=1 must deliver the same edge
// set as the buffered JSON path, as chunked NDJSON, without touching
// the result cache, and must still answer parse/admission errors as
// plain JSON before the first byte of stream leaves.
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"eds/internal/gen"
)

// parseStream splits an NDJSON stream body into the summary line and
// the edge lines.
func parseStream(t *testing.T, body []byte) (RunResponse, [][2]int) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("stream body is empty")
	}
	var summary RunResponse
	if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
		t.Fatalf("summary line %q: %v", sc.Text(), err)
	}
	var edges [][2]int
	for sc.Scan() {
		var e [2]int
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("edge line %q: %v", sc.Text(), err)
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning stream: %v", err)
	}
	return summary, edges
}

func TestStreamNDJSONMatchesBufferedResponse(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := graphBytes(t, gen.Cycle(64))

	resp, streamBody := postRun(t, ts.Client(), ts.URL, "?alg=auto&edges=1&stream=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d (body %s)", resp.StatusCode, streamBody)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	if c := resp.Header.Get("X-Cache"); c != "bypass" {
		t.Errorf("X-Cache = %q, want bypass", c)
	}
	summary, edges := parseStream(t, streamBody)
	if summary.EdgeList != nil {
		t.Error("summary line carries edge_list; edges belong on their own lines")
	}
	if summary.Edges != len(edges) {
		t.Errorf("summary announces %d edges, stream delivered %d lines", summary.Edges, len(edges))
	}
	if !summary.Dominating {
		t.Error("streamed result is not a dominating set")
	}

	// The stream must not have seeded the cache: the buffered request for
	// the same graph is a miss, and its edge list matches the stream's.
	resp2, bufBody := postRun(t, ts.Client(), ts.URL, "?alg=auto&edges=1", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("buffered status = %d", resp2.StatusCode)
	}
	if c := resp2.Header.Get("X-Cache"); c != "miss" {
		t.Errorf("buffered X-Cache after a stream = %q, want miss (streams bypass the cache)", c)
	}
	buffered := decodeRun(t, bufBody)
	if len(buffered.EdgeList) != len(edges) {
		t.Fatalf("buffered edge_list has %d edges, stream had %d", len(buffered.EdgeList), len(edges))
	}
	for i := range edges {
		if edges[i] != buffered.EdgeList[i] {
			t.Fatalf("edge %d: stream %v, buffered %v", i, edges[i], buffered.EdgeList[i])
		}
	}

	// Accounting: one stream response, body-length bytes, in the size
	// histogram and on /statsz.
	snap := s.st.snapshot()
	if snap.streamResponses != 1 {
		t.Errorf("stream responses = %d, want 1", snap.streamResponses)
	}
	if snap.streamBytes != int64(len(streamBody)) {
		t.Errorf("stream bytes = %d, body was %d", snap.streamBytes, len(streamBody))
	}
}

// TestStreamChunkedDelivery proves the stream actually leaves in chunks:
// a response several times streamChunkBytes arrives chunked-encoded, so
// the server never buffered the whole body.
func TestStreamChunkedDelivery(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := graphBytes(t, gen.Cycle(30000))

	resp, streamBody := postRun(t, ts.Client(), ts.URL, "?alg=auto&edges=1&stream=1&timeout=60s", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(streamBody) <= streamChunkBytes {
		t.Fatalf("stream body is %d bytes; the test needs > one %d-byte chunk to prove chunking", len(streamBody), streamChunkBytes)
	}
	chunked := false
	for _, te := range resp.TransferEncoding {
		chunked = chunked || te == "chunked"
	}
	if !chunked {
		t.Errorf("TransferEncoding = %v, want chunked (a Content-Length means the body was buffered)", resp.TransferEncoding)
	}
	summary, edges := parseStream(t, streamBody)
	if summary.Edges != len(edges) || !summary.Dominating {
		t.Errorf("summary %+v does not match %d streamed edges", summary, len(edges))
	}
}

func TestStreamRequiresEdges(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, out := postRun(t, ts.Client(), ts.URL, "?stream=1", graphBytes(t, gen.Cycle(8)))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("stream without edges=1: status = %d, want 400 (body %s)", resp.StatusCode, out)
	}
}

// TestStreamErrorsStayJSON pins that failures detected before streaming
// starts are ordinary JSON errors, not half-open streams.
func TestStreamErrorsStayJSON(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, out := postRun(t, ts.Client(), ts.URL, "?edges=1&stream=1&alg=no-such-alg", graphBytes(t, gen.Cycle(8)))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error Content-Type = %q, want application/json", ct)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(out, &e); err != nil || e.Error == "" {
		t.Errorf("error body %q is not the standard JSON error shape", out)
	}
}
