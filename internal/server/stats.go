package server

import (
	"fmt"
	"sync"
	"time"

	"eds/internal/sim"
)

// histogram is a log-2 latency histogram in milliseconds: bucket k
// counts observations in [2^(k-1), 2^k) ms (bucket 0 is < 1 ms), with
// the last bucket absorbing the overflow. Sixteen buckets cover up to
// ~32 s, past any per-request deadline the server will grant.
type histogram struct {
	buckets [16]int64
	count   int64
	sumMs   int64
	maxMs   int64
}

func (h *histogram) observe(d time.Duration) {
	ms := d.Milliseconds()
	k := 0
	for v := ms; v > 0 && k < len(h.buckets)-1; v >>= 1 {
		k++
	}
	h.buckets[k]++
	h.count++
	h.sumMs += ms
	if ms > h.maxMs {
		h.maxMs = ms
	}
}

// histogramSnapshot is the JSON shape of one histogram in /statsz.
type histogramSnapshot struct {
	Count   int64            `json:"count"`
	MeanMs  float64          `json:"mean_ms"`
	MaxMs   int64            `json:"max_ms"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

func (h *histogram) snapshot() histogramSnapshot {
	s := histogramSnapshot{Count: h.count, MaxMs: h.maxMs, Buckets: map[string]int64{}}
	if h.count > 0 {
		s.MeanMs = float64(h.sumMs) / float64(h.count)
	}
	for k, c := range h.buckets {
		if c == 0 {
			continue
		}
		label := "<1ms"
		if k > 0 {
			label = fmt.Sprintf("<%dms", 1<<k)
		}
		if k == len(h.buckets)-1 {
			label = fmt.Sprintf(">=%dms", 1<<(k-1))
		}
		s.Buckets[label] = c
	}
	return s
}

// stats aggregates the serving metrics exposed at /statsz. One mutex is
// plenty: every field is touched once per request, far off any hot path.
type stats struct {
	mu          sync.Mutex
	requests    int64
	byStatus    map[int]int64
	cacheHits   int64
	cacheMisses int64
	coalesced   int64
	perAlg      map[string]*histogram
	// phases accumulates the engines' setup/rounds/outputs wall-time
	// split (sim.WithTimings) over every completed run, exposing where
	// serving time actually goes: a setup-heavy mix means run construction
	// dominates and the arena/bulk path is the lever; a rounds-heavy mix
	// means the protocol itself does.
	phases sim.Timings
	runs   int64
}

func newStats() *stats {
	return &stats{byStatus: map[int]int64{}, perAlg: map[string]*histogram{}}
}

func (s *stats) recordStatus(code int) {
	s.mu.Lock()
	s.requests++
	s.byStatus[code]++
	s.mu.Unlock()
}

func (s *stats) recordCache(hit bool) {
	s.mu.Lock()
	if hit {
		s.cacheHits++
	} else {
		s.cacheMisses++
	}
	s.mu.Unlock()
}

// recordCoalesced counts a follower served from an identical in-flight
// run's shared outcome (the singleflight path).
func (s *stats) recordCoalesced() {
	s.mu.Lock()
	s.coalesced++
	s.mu.Unlock()
}

// recordPhases accumulates one completed run's phase split.
func (s *stats) recordPhases(split sim.Timings) {
	s.mu.Lock()
	s.phases.Setup += split.Setup
	s.phases.Rounds += split.Rounds
	s.phases.Outputs += split.Outputs
	s.runs++
	s.mu.Unlock()
}

func (s *stats) recordLatency(alg string, d time.Duration) {
	s.mu.Lock()
	h := s.perAlg[alg]
	if h == nil {
		h = &histogram{}
		s.perAlg[alg] = h
	}
	h.observe(d)
	s.mu.Unlock()
}

// snapshot returns the /statsz payload fragments owned by stats.
func (s *stats) snapshot() (requests int64, byStatus map[string]int64, hits, misses, coalesced int64, perAlg map[string]histogramSnapshot, phases sim.Timings, runs int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	byStatus = make(map[string]int64, len(s.byStatus))
	for code, c := range s.byStatus {
		byStatus[fmt.Sprintf("%d", code)] = c
	}
	perAlg = make(map[string]histogramSnapshot, len(s.perAlg))
	for alg, h := range s.perAlg {
		perAlg[alg] = h.snapshot()
	}
	return s.requests, byStatus, s.cacheHits, s.cacheMisses, s.coalesced, perAlg, s.phases, s.runs
}
