package local

import (
	"math/rand"

	"eds/internal/graph"
)

// RandomizedMaximalMatching simulates the classic randomized distributed
// maximal matching (random edge priorities, locally minimal edges join
// the matching each round) by its sequential equivalent: greedy over a
// uniformly random edge permutation. Any maximal matching 2-approximates
// the minimum edge dominating set, so this baseline quantifies what the
// paper's deterministic anonymous model gives up by forbidding coin
// flips: on the Theorem 1/2 constructions deterministic algorithms are
// forced to ratio ~4 while this stays at most 2 (the Ext-B ablation).
func RandomizedMaximalMatching(rng *rand.Rand, g *graph.Graph) *graph.EdgeSet {
	order := rng.Perm(g.M())
	matched := make([]bool, g.N())
	s := graph.NewEdgeSet(g.M())
	for _, idx := range order {
		e := g.Edge(idx)
		if e.IsLoop() {
			continue
		}
		if !matched[e.A.Node] && !matched[e.B.Node] {
			s.Add(idx)
			matched[e.A.Node] = true
			matched[e.B.Node] = true
		}
	}
	return s
}
