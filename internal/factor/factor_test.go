package factor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eds/internal/gen"
	"eds/internal/graph"
)

func TestEulerOrientationBalanced(t *testing.T) {
	tests := []struct {
		name string
		m    Multi
	}{
		{"cycle4", Multi{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}}},
		{"two loops", Multi{N: 1, Edges: [][2]int{{0, 0}, {0, 0}}}},
		{"parallel", Multi{N: 2, Edges: [][2]int{{0, 1}, {0, 1}}}},
		{"theta", Multi{N: 2, Edges: [][2]int{{0, 1}, {0, 1}, {0, 1}, {0, 1}}}},
		{"K5", func() Multi {
			m, err := FromGraph(gen.Complete(5))
			if err != nil {
				panic(err)
			}
			return m
		}()},
		{"disconnected", Multi{N: 6, Edges: [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			arcs, err := EulerOrientation(tc.m)
			if err != nil {
				t.Fatalf("EulerOrientation: %v", err)
			}
			if len(arcs) != len(tc.m.Edges) {
				t.Fatalf("got %d arcs, want %d", len(arcs), len(tc.m.Edges))
			}
			outDeg := make([]int, tc.m.N)
			inDeg := make([]int, tc.m.N)
			seen := make([]bool, len(tc.m.Edges))
			for _, a := range arcs {
				if seen[a.Edge] {
					t.Fatalf("edge %d oriented twice", a.Edge)
				}
				seen[a.Edge] = true
				e := tc.m.Edges[a.Edge]
				if !(a.Tail == e[0] && a.Head == e[1]) && !(a.Tail == e[1] && a.Head == e[0]) {
					t.Fatalf("arc %v does not match edge %v", a, e)
				}
				outDeg[a.Tail]++
				inDeg[a.Head]++
			}
			for v := 0; v < tc.m.N; v++ {
				if outDeg[v] != inDeg[v] {
					t.Errorf("node %d: out %d != in %d", v, outDeg[v], inDeg[v])
				}
			}
		})
	}
}

func TestEulerOrientationRejectsOddDegree(t *testing.T) {
	if _, err := EulerOrientation(Multi{N: 2, Edges: [][2]int{{0, 1}}}); err == nil {
		t.Fatal("odd-degree graph accepted")
	}
}

// checkFactorisation verifies the Petersen property: each factor is a
// spanning set of directed cycles (out-deg = in-deg = 1 everywhere) and
// the factors partition the edge set.
func checkFactorisation(t *testing.T, m Multi, factors [][]Arc, k int) {
	t.Helper()
	if len(factors) != k {
		t.Fatalf("got %d factors, want %d", len(factors), k)
	}
	used := make([]bool, len(m.Edges))
	for fi, f := range factors {
		outDeg := make([]int, m.N)
		inDeg := make([]int, m.N)
		for _, a := range f {
			if used[a.Edge] {
				t.Fatalf("factor %d reuses edge %d", fi, a.Edge)
			}
			used[a.Edge] = true
			outDeg[a.Tail]++
			inDeg[a.Head]++
		}
		for v := 0; v < m.N; v++ {
			if outDeg[v] != 1 || inDeg[v] != 1 {
				t.Errorf("factor %d, node %d: out %d in %d, want 1/1", fi, v, outDeg[v], inDeg[v])
			}
		}
	}
	for ei, u := range used {
		if !u {
			t.Errorf("edge %d not in any factor", ei)
		}
	}
}

func TestTwoFactoriseFixed(t *testing.T) {
	tests := []struct {
		name string
		m    Multi
		k    int
	}{
		{"K5", mustFromGraph(gen.Complete(5)), 2},
		{"torus", mustFromGraph(gen.Torus(3, 3)), 2},
		{"loops", Multi{N: 1, Edges: [][2]int{{0, 0}, {0, 0}, {0, 0}}}, 3},
		{"K7", mustFromGraph(gen.Complete(7)), 3},
		{"crown5", mustFromGraph(gen.Crown(5)), 2}, // 4-regular
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			factors, err := TwoFactorise(tc.m)
			if err != nil {
				t.Fatalf("TwoFactorise: %v", err)
			}
			checkFactorisation(t, tc.m, factors, tc.k)
		})
	}
}

func mustFromGraph(g *graph.Graph) Multi {
	m, err := FromGraph(g)
	if err != nil {
		panic(err)
	}
	return m
}

func TestTwoFactoriseRejects(t *testing.T) {
	if _, err := TwoFactorise(Multi{N: 2, Edges: [][2]int{{0, 1}}}); err == nil {
		t.Error("1-regular accepted")
	}
	if _, err := TwoFactorise(Multi{N: 3, Edges: [][2]int{{0, 1}, {1, 2}}}); err == nil {
		t.Error("irregular accepted")
	}
	if _, err := TwoFactorise(mustFromGraph(gen.Complete(4))); err == nil {
		t.Error("3-regular accepted")
	}
}

func TestTwoFactoriseRandomRegularQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		n := 2*k + 1 + rng.Intn(10)
		g, err := gen.RandomRegular(rng, n, 2*k)
		if err != nil {
			// Odd n*d cannot happen for even d; other failures are
			// sampling exhaustion, which should not occur here.
			return false
		}
		m := mustFromGraph(g)
		factors, err := TwoFactorise(m)
		if err != nil {
			return false
		}
		if len(factors) != k {
			return false
		}
		used := make([]bool, len(m.Edges))
		for _, f := range factors {
			outDeg := make([]int, m.N)
			inDeg := make([]int, m.N)
			for _, a := range f {
				if used[a.Edge] {
					return false
				}
				used[a.Edge] = true
				outDeg[a.Tail]++
				inDeg[a.Head]++
			}
			for v := 0; v < m.N; v++ {
				if outDeg[v] != 1 || inDeg[v] != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPairPortsProducesValidGraph(t *testing.T) {
	// The pair numbering must yield a valid involution in which node u's
	// port 2i-1 always faces a port 2i.
	for _, g := range []*graph.Graph{gen.Complete(5), gen.Torus(3, 4), gen.Cycle(6), gen.Crown(4)} {
		d, ok := g.Regular()
		if !ok || d%2 != 0 {
			// Crown(4) is 3-regular: expect an error path instead.
			if _, err := WithPairPorts(g); err == nil {
				t.Errorf("%v: odd-regular accepted", g)
			}
			continue
		}
		h, err := WithPairPorts(g)
		if err != nil {
			t.Fatalf("WithPairPorts: %v", err)
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		if h.N() != g.N() || h.M() != g.M() {
			t.Fatalf("structure changed: %d/%d vs %d/%d", h.N(), h.M(), g.N(), g.M())
		}
		for v := 0; v < h.N(); v++ {
			for i := 1; i <= d; i += 2 {
				q := h.P(v, i)
				if q.Num != i+1 {
					t.Errorf("p(%d,%d) = %v, want peer port %d", v, i, q, i+1)
				}
			}
		}
	}
}

func TestPairPortsOnLoopMultigraph(t *testing.T) {
	// The Theorem 1 quotient: a single node with k undirected loops must
	// get the numbering (x,2i-1) <-> (x,2i).
	m := Multi{N: 1, Edges: [][2]int{{0, 0}, {0, 0}, {0, 0}}}
	asg, err := PairPorts(m)
	if err != nil {
		t.Fatalf("PairPorts: %v", err)
	}
	if len(asg) != 3 {
		t.Fatalf("got %d assignments, want 3", len(asg))
	}
	seen := map[int]bool{}
	for _, a := range asg {
		if a.U != 0 || a.V != 0 {
			t.Errorf("assignment %v not a loop", a)
		}
		if a.PV != a.PU+1 || a.PU%2 != 1 {
			t.Errorf("assignment %v is not a (2i-1,2i) pair", a)
		}
		seen[a.PU] = true
	}
	for _, want := range []int{1, 3, 5} {
		if !seen[want] {
			t.Errorf("missing pair starting at port %d", want)
		}
	}
}

func TestFromGraphRejectsDirectedLoop(t *testing.T) {
	b := graph.NewBuilder(1)
	b.MustConnect(0, 1, 0, 1)
	if _, err := FromGraph(b.MustBuild()); err == nil {
		t.Fatal("directed loop accepted")
	}
}
