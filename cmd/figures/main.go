// Command figures regenerates the paper's Figures 1-9 as machine-checked
// artifacts: each figure's object is rebuilt, its stated properties are
// verified, and Graphviz DOT plus plain-text renderings are written to
// the output directory.
//
// Usage:
//
//	figures [-fig N | -fig all] [-out figures_out]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"eds/internal/figures"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	fig := flag.String("fig", "all", "figure number 1..9, or \"all\"")
	out := flag.String("out", "figures_out", "output directory for .dot and .txt artifacts")
	flag.Parse()

	var arts []*figures.Artifact
	if *fig == "all" {
		all, err := figures.All()
		if err != nil {
			log.Fatal(err)
		}
		arts = all
	} else {
		id, err := strconv.Atoi(*fig)
		if err != nil {
			log.Fatalf("invalid -fig %q: %v", *fig, err)
		}
		a, err := figures.Figure(id)
		if err != nil {
			log.Fatal(err)
		}
		arts = []*figures.Artifact{a}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, a := range arts {
		base := filepath.Join(*out, fmt.Sprintf("figure%d", a.ID))
		if err := os.WriteFile(base+".dot", []byte(a.DOT), 0o644); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(base+".txt", []byte(a.Text), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", a.Title)
		for _, f := range a.Facts {
			fmt.Printf("  ✓ %s\n", f)
		}
		fmt.Printf("  -> %s.dot, %s.txt\n\n", base, base)
	}
}
