package ratio

import (
	"testing"
	"testing/quick"
)

func TestNewNormalises(t *testing.T) {
	tests := []struct {
		num, den int64
		want     R
	}{
		{2, 4, R{1, 2}},
		{-2, 4, R{-1, 2}},
		{2, -4, R{-1, 2}},
		{-2, -4, R{1, 2}},
		{0, 5, R{0, 1}},
		{7, 1, R{7, 1}},
		{6, 3, R{2, 1}},
	}
	for _, tc := range tests {
		if got := New(tc.num, tc.den); got != tc.want {
			t.Errorf("New(%d,%d) = %v, want %v", tc.num, tc.den, got, tc.want)
		}
	}
}

func TestZeroDenominatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(1, 0)
}

func TestArithmetic(t *testing.T) {
	half := New(1, 2)
	third := New(1, 3)
	if got := half.Add(third); !got.Equal(New(5, 6)) {
		t.Errorf("1/2+1/3 = %v", got)
	}
	if got := half.Sub(third); !got.Equal(New(1, 6)) {
		t.Errorf("1/2-1/3 = %v", got)
	}
	if got := half.Mul(third); !got.Equal(New(1, 6)) {
		t.Errorf("1/2*1/3 = %v", got)
	}
}

func TestCmpQuick(t *testing.T) {
	f := func(a, b int16, c, d uint8) bool {
		den1, den2 := int64(c)+1, int64(d)+1
		r, s := New(int64(a), den1), New(int64(b), den2)
		lhs := float64(a) / float64(den1)
		rhs := float64(b) / float64(den2)
		switch r.Cmp(s) {
		case -1:
			return lhs < rhs
		case 1:
			return lhs > rhs
		default:
			return lhs == rhs
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundsMatchPaperFormulas(t *testing.T) {
	// Table 1, spelled out for the small parameters the paper discusses.
	tests := []struct {
		name string
		got  R
		want R
	}{
		{"even d=2", EvenRegularBound(2), New(3, 1)},
		{"even d=4", EvenRegularBound(4), New(7, 2)},
		{"even d=6", EvenRegularBound(6), New(11, 3)},
		{"odd d=1", OddRegularBound(1), New(1, 1)},
		{"odd d=3", OddRegularBound(3), New(5, 2)},
		{"odd d=5", OddRegularBound(5), New(3, 1)},
		{"odd d=7", OddRegularBound(7), New(13, 4)},
		{"delta 1", BoundedDegreeBound(1), New(1, 1)},
		{"delta 2", BoundedDegreeBound(2), New(3, 1)},
		{"delta 3", BoundedDegreeBound(3), New(3, 1)},
		{"delta 4", BoundedDegreeBound(4), New(7, 2)},
		{"delta 5", BoundedDegreeBound(5), New(7, 2)},
		{"delta 7", BoundedDegreeBound(7), New(11, 3)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if !tc.got.Equal(tc.want) {
				t.Errorf("got %v, want %v", tc.got, tc.want)
			}
		})
	}
}

func TestBoundMonotonicity(t *testing.T) {
	// α(Δ+1) >= α(Δ) (Section 7), and all bounds sit in [1, 4).
	prev := BoundedDegreeBound(1)
	for delta := 2; delta <= 40; delta++ {
		cur := BoundedDegreeBound(delta)
		if cur.Cmp(prev) < 0 {
			t.Errorf("bound decreased at Δ=%d: %v < %v", delta, cur, prev)
		}
		if cur.Cmp(FromInt(4)) >= 0 || cur.Cmp(FromInt(1)) < 0 {
			t.Errorf("bound out of range at Δ=%d: %v", delta, cur)
		}
		prev = cur
	}
}

func TestString(t *testing.T) {
	if got := New(7, 2).String(); got != "7/2" {
		t.Errorf("String = %q", got)
	}
	if got := FromInt(3).String(); got != "3" {
		t.Errorf("String = %q", got)
	}
	if got := New(7, 2).Float64(); got != 3.5 {
		t.Errorf("Float64 = %v", got)
	}
}
