package core

import (
	"eds/internal/sim"
)

// pairState is the node state shared by the protocols built on
// distinguishable edges (Theorems 4 and 5): the label-exchange results,
// the distinguishable port, and the per-port membership flags of the set
// under construction. The slices are carved from the engine's
// StateArena by init (heap-backed on the legacy NewNode path), so a
// slab of pairStates costs no per-node allocations.
type pairState struct {
	deg     int
	peer    []int // peer port number per own port
	peerDeg []int // neighbour degree per own port
	dp      int   // own port of the distinguishable edge, 0 if none
	dpPeer  int   // peer port of the distinguishable edge
	inSet   []bool

	gotProposal bool
	propCovered bool
	gotProbe    bool
	probeOther  bool
}

func (st *pairState) init(deg int, arena *sim.StateArena) {
	st.deg = deg
	st.peer = arenaInts(arena, deg)
	st.peerDeg = arenaInts(arena, deg)
	st.inSet = arenaBools(arena, deg)
}

func (st *pairState) covered() bool {
	for _, in := range st.inSet {
		if in {
			return true
		}
	}
	return false
}

func (st *pairState) degInSet() int {
	c := 0
	for _, in := range st.inSet {
		if in {
			c++
		}
	}
	return c
}

// The step builders below are parametric in the program's state type S,
// reached through a pair accessor: RegularOdd runs them on a bare
// pairState, General on the pairState embedded in its own state. The
// accessor is resolved once per program build, not per node.

// labelExchangeStep is the common first round: every node tells each
// neighbour through which port it is talking to it and what its degree
// is. Both endpoints of every edge learn the edge's label pair, so the
// distinguishable port follows locally (Section 5).
func labelExchangeStep[S any](pair func(*S) *pairState) pstep[S] {
	return pstep[S]{
		send: func(s *S, buf []sim.Message) {
			st := pair(s)
			for idx := range buf {
				buf[idx] = labelMsg(idx+1, st.deg)
			}
		},
		recv: func(s *S, inbox []sim.Message) {
			st := pair(s)
			for idx, m := range inbox {
				lbl := m.(msgLabel)
				st.peer[idx] = lbl.Port
				st.peerDeg[idx] = lbl.Deg
			}
			st.dp, st.dpPeer, _ = DistinguishFromPeers(st.peer)
		},
	}
}

// addRule decides whether a processed distinguishable edge joins the set,
// given the two endpoints' covered flags.
type addRule func(coveredProposer, coveredResponder bool) bool

// addUnlessBothCovered is the Theorem 4 phase I rule: D grows into an
// edge cover ("if both endpoints of e are already covered by D, we ignore
// e, otherwise we add e to D").
func addUnlessBothCovered(p, r bool) bool { return !(p && r) }

// addOnlyIfNeitherCovered is the Theorem 5 phase I rule: M stays a
// matching ("if neither u nor v is covered by M, we add e to M").
func addOnlyIfNeitherCovered(p, r bool) bool { return !p && !r }

// phaseIAddSteps processes the pair (i,j): the proposer is a node whose
// distinguishable edge runs from its port i to the peer's port j. Two
// rounds: propose carrying the proposer's covered flag, respond carrying
// the joint decision. When i == j the edge may be proposed from both
// sides at once; the rule is symmetric, so both sides decide identically
// and the updates are idempotent. By Lemma 2 the processed edges form a
// matching, making the parallel decisions independent. Nodes whose
// degree is below the pair indices sit the rounds out via the runtime
// guards, so one compiled schedule serves a whole degree class.
func phaseIAddSteps[S any](pair func(*S) *pairState, i, j int, rule addRule) []pstep[S] {
	propose := pstep[S]{
		send: func(s *S, buf []sim.Message) {
			st := pair(s)
			if st.dp != i || st.dpPeer != j {
				return
			}
			buf[i-1] = msgPropose{Covered: st.covered()}
		},
		recv: func(s *S, inbox []sim.Message) {
			st := pair(s)
			st.gotProposal = false
			if j <= st.deg {
				if m, ok := inbox[j-1].(msgPropose); ok {
					st.gotProposal = true
					st.propCovered = m.Covered
				}
			}
		},
	}
	respond := pstep[S]{
		send: func(s *S, buf []sim.Message) {
			st := pair(s)
			if !st.gotProposal {
				return
			}
			add := rule(st.propCovered, st.covered())
			buf[j-1] = msgRespond{Add: add}
			if add {
				st.inSet[j-1] = true
			}
		},
		recv: func(s *S, inbox []sim.Message) {
			st := pair(s)
			if st.dp == i && st.dpPeer == j {
				if m, ok := inbox[i-1].(msgRespond); ok && m.Add {
					st.inSet[i-1] = true
				}
			}
			st.gotProposal = false
		},
	}
	return []pstep[S]{propose, respond}
}

// phaseIIPruneSteps processes D ∩ M_G(i,j) in phase II of Theorem 4: the
// proposer probes its distinguishable edge if the edge is still in D,
// both endpoints report whether they stay covered without it, and the
// edge is removed exactly when both do.
func phaseIIPruneSteps[S any](pair func(*S) *pairState, i, j int) []pstep[S] {
	probe := pstep[S]{
		send: func(s *S, buf []sim.Message) {
			st := pair(s)
			if st.dp != i || st.dpPeer != j || !st.inSet[i-1] {
				return
			}
			buf[i-1] = msgProbe{OtherCovered: st.degInSet() >= 2}
		},
		recv: func(s *S, inbox []sim.Message) {
			st := pair(s)
			st.gotProbe = false
			if j <= st.deg {
				if m, ok := inbox[j-1].(msgProbe); ok {
					st.gotProbe = true
					st.probeOther = m.OtherCovered
				}
			}
		},
	}
	respond := pstep[S]{
		send: func(s *S, buf []sim.Message) {
			st := pair(s)
			if !st.gotProbe {
				return
			}
			remove := st.probeOther && st.degInSet() >= 2
			buf[j-1] = msgProbeRespond{Remove: remove}
			if remove {
				st.inSet[j-1] = false
			}
		},
		recv: func(s *S, inbox []sim.Message) {
			st := pair(s)
			if st.dp == i && st.dpPeer == j {
				if m, ok := inbox[i-1].(msgProbeRespond); ok && m.Remove {
					st.inSet[i-1] = false
				}
			}
			st.gotProbe = false
		},
	}
	return []pstep[S]{probe, respond}
}
