package spec

import (
	"strings"
	"testing"

	"eds/internal/graph"
)

func TestGraphFamilies(t *testing.T) {
	tests := []struct {
		spec    string
		n, m    int
		hasOpt  bool
		wantErr bool
	}{
		{spec: "cycle:8", n: 8, m: 8},
		{spec: "path:5", n: 5, m: 4},
		{spec: "complete:5", n: 5, m: 10},
		{spec: "hypercube:3", n: 8, m: 12},
		{spec: "torus:3x4", n: 12, m: 24},
		{spec: "petersen", n: 10, m: 15},
		{spec: "matching:4", n: 8, m: 4},
		{spec: "regular:n=12,d=3", n: 12, m: 18},
		{spec: "evenlb:d=6", n: 11, m: 33, hasOpt: true},
		{spec: "oddlb:d=5", n: 54, m: 135, hasOpt: true},
		{spec: "nonsense:1", wantErr: true},
		{spec: "regular:n=bad", wantErr: true},
		{spec: "file:/nonexistent/path.graph", wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.spec, func(t *testing.T) {
			g, opt, err := Graph(tc.spec, 1)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatalf("Graph: %v", err)
			}
			if g.N() != tc.n || g.M() != tc.m {
				t.Errorf("got n=%d m=%d, want n=%d m=%d", g.N(), g.M(), tc.n, tc.m)
			}
			if (opt != nil) != tc.hasOpt {
				t.Errorf("hasOpt = %v, want %v", opt != nil, tc.hasOpt)
			}
		})
	}
}

func TestAlgorithm(t *testing.T) {
	cycle, _, err := Graph("cycle:6", 1)
	if err != nil {
		t.Fatal(err)
	}
	k4, _, err := Graph("complete:4", 1)
	if err != nil {
		t.Fatal(err)
	}
	path, _, err := Graph("path:5", 1)
	if err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name    string
		spec    string
		g       *graph.Graph
		want    string
		wantErr bool
	}{
		{name: "auto even regular", spec: "auto", g: cycle, want: "portone"},
		{name: "auto odd regular", spec: "auto", g: k4, want: "regularodd"},
		{name: "auto irregular", spec: "auto", g: path, want: "general(Δ=3)"},
		{name: "explicit general with delta", spec: "general:7", g: path, want: "general(Δ=7)"},
		{name: "general below max degree", spec: "general:1", g: k4, wantErr: true},
		{name: "regularodd on even-regular", spec: "regularodd", g: cycle, wantErr: true},
		{name: "unknown", spec: "zigzag", g: cycle, wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			alg, _, err := Algorithm(tc.spec, tc.g)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatalf("Algorithm: %v", err)
			}
			if !strings.HasPrefix(alg.Name(), tc.want) {
				t.Errorf("algorithm = %s, want %s", alg.Name(), tc.want)
			}
		})
	}
}
