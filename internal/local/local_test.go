package local

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eds/internal/gen"
	"eds/internal/graph"
	"eds/internal/verify"
)

func TestPortOneSelectsPortOneEdges(t *testing.T) {
	g := gen.Complete(5)
	d := PortOne(g)
	for idx, e := range g.Edges() {
		want := e.A.Num == 1 || e.B.Num == 1
		if d.Has(idx) != want {
			t.Errorf("edge %v: Has = %v, want %v", e, d.Has(idx), want)
		}
	}
	if !verify.IsEdgeCover(g, d) {
		t.Error("PortOne output must cover every node")
	}
}

func TestAllEdges(t *testing.T) {
	g := gen.Cycle(7)
	if AllEdges(g).Count() != g.M() {
		t.Error("AllEdges must select every edge")
	}
}

func TestRegularOddInvariantsQuick(t *testing.T) {
	// Theorem 4's structural claims: the output is an edge cover, a
	// forest of node-disjoint stars, with |D| <= d|V|/(d+1).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := []int{1, 3, 5}[rng.Intn(3)]
		n := d + 1 + rng.Intn(12)
		if n*d%2 != 0 {
			n++
		}
		g, err := gen.RandomRegular(rng, n, d)
		if err != nil {
			return false
		}
		out, err := RegularOdd(g, false)
		if err != nil {
			return false
		}
		if !verify.IsEdgeCover(g, out) || !verify.IsStarForest(g, out) {
			return false
		}
		if (d+1)*out.Count() > d*g.N() {
			return false
		}
		// Phase I alone: spanning forest, still an edge cover.
		phase1, err := RegularOdd(g, true)
		if err != nil {
			return false
		}
		return verify.IsEdgeCover(g, phase1) && verify.IsForest(g, phase1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRegularOddRejectsIrregular(t *testing.T) {
	if _, err := RegularOdd(gen.Path(4), false); err == nil {
		t.Error("irregular graph accepted")
	}
}

func TestGeneralStructuralPropertiesQuick(t *testing.T) {
	// Properties (a)-(c) of Section 7.3 plus feasibility, on random
	// bounded-degree graphs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomBoundedDegree(rng, 5+rng.Intn(15), 2+rng.Intn(5), 0.5)
		delta := g.MaxDegree()
		if delta < 2 {
			delta = 2
		}
		res, err := General(g, delta)
		if err != nil {
			return false
		}
		// (a) M matching, P 2-matching, node-disjoint.
		if !verify.IsMatching(g, res.M) || !verify.IsKMatching(g, res.P, 2) {
			return false
		}
		mNodes := graph.CoveredNodes(g, res.M)
		pNodes := graph.CoveredNodes(g, res.P)
		for v := 0; v < g.N(); v++ {
			if mNodes[v] && pNodes[v] {
				return false
			}
		}
		// (b) every odd-degree node is covered by M or has a neighbour
		// covered by M.
		for v := 0; v < g.N(); v++ {
			if g.Deg(v)%2 == 0 || mNodes[v] {
				continue
			}
			ok := false
			for i := 1; i <= g.Deg(v); i++ {
				if mNodes[g.Neighbour(v, i)] {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		// (c) every P-edge joins equal-degree endpoints.
		bad := false
		res.P.ForEach(func(idx int) bool {
			e := g.Edge(idx)
			if g.Deg(e.U()) != g.Deg(e.V()) {
				bad = true
				return false
			}
			return true
		})
		if bad {
			return false
		}
		// Feasibility.
		return verify.IsEdgeDominatingSet(g, res.D)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestGeneralRejectsBadDelta(t *testing.T) {
	g := gen.Complete(5) // max degree 4
	if _, err := General(g, 3); err == nil {
		t.Error("Δ below max degree accepted")
	}
	if _, err := General(g, 1); err == nil {
		t.Error("Δ = 1 accepted")
	}
}

func TestRandomizedMaximalMatchingQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomBoundedDegree(rng, 4+rng.Intn(12), 1+rng.Intn(5), 0.5)
		mm := RandomizedMaximalMatching(rng, g)
		return verify.IsMaximalMatching(g, mm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
