package verify

import (
	"eds/internal/graph"
)

// GreedyEDS is the classic centralized greedy heuristic for edge
// dominating sets: repeatedly select the edge that dominates the largest
// number of still-undominated edges. It carries only a logarithmic
// worst-case guarantee (it is a set-cover greedy), but on typical
// instances it is strong; the studies use it as a quality yardstick for
// the distributed algorithms, which must operate without any global
// view.
func GreedyEDS(g *graph.Graph) *graph.EdgeSet {
	m := g.M()
	s := graph.NewEdgeSet(m)
	dominated := make([]bool, m)
	remaining := m
	// gain(e) = number of undominated edges adjacent to e (including e);
	// a dominated edge can still be worth selecting for its neighbours.
	gain := func(idx int) int {
		e := g.Edge(idx)
		seen := map[int]bool{}
		count := 0
		for _, v := range []int{e.A.Node, e.B.Node} {
			for _, adj := range g.IncidentEdges(v) {
				if !seen[adj] {
					seen[adj] = true
					if !dominated[adj] {
						count++
					}
				}
			}
		}
		return count
	}
	for remaining > 0 {
		best, bestGain := -1, 0
		for idx := 0; idx < m; idx++ {
			if s.Has(idx) {
				continue
			}
			if gn := gain(idx); gn > bestGain {
				best, bestGain = idx, gn
			}
		}
		if best == -1 {
			break // only isolated undominated edges remain: impossible
		}
		s.Add(best)
		e := g.Edge(best)
		for _, v := range []int{e.A.Node, e.B.Node} {
			for _, adj := range g.IncidentEdges(v) {
				if !dominated[adj] {
					dominated[adj] = true
					remaining--
				}
			}
		}
	}
	return s
}
