package core

import (
	"eds/internal/graph"
)

// This file contains the centralized (full-knowledge) view of the Section
// 5 machinery. The distributed algorithms recompute the same quantities
// from one round of label exchange; figures, reference implementations,
// and lemma tests use these functions directly.

// PeerPorts returns, for node v, the peer port number of each incident
// edge indexed by v's own port: PeerPorts(g, v)[i-1] = j where
// p(v, i) = (u, j).
func PeerPorts(g *graph.Graph, v int) []int {
	out := make([]int, g.Deg(v))
	for i := 1; i <= g.Deg(v); i++ {
		out[i-1] = g.P(v, i).Num
	}
	return out
}

// labelPairKey canonicalises an unordered label pair.
func labelPairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// DistinguishFromPeers computes a node's distinguishable port from the
// peer port numbers of its edges (the node-local computation of Section
// 5). It returns the node's own port i and the peer port j of the
// distinguishable edge, or ok = false when every label pair occurs
// twice. The nested scan is deliberate: every node runs this once
// during label exchange, and at O(d²) comparisons with no allocation it
// beats a per-node map for the paper's bounded-degree regime (the run
// engines assert construction allocates O(1) per shard).
func DistinguishFromPeers(peers []int) (i, j int, ok bool) {
	for own1, peer := range peers {
		k := labelPairKey(own1+1, peer)
		unique := true
		for own2, peer2 := range peers {
			if own2 != own1 && labelPairKey(own2+1, peer2) == k {
				unique = false
				break
			}
		}
		if unique {
			return own1 + 1, peer, true
		}
	}
	return 0, 0, false
}

// DistinguishablePort returns the port of node v leading to its
// distinguishable neighbour, with the peer port number, or ok = false if v
// has no uniquely labelled edge. By Lemma 1, ok is always true when the
// degree of v is odd.
func DistinguishablePort(g *graph.Graph, v int) (i, j int, ok bool) {
	return DistinguishFromPeers(PeerPorts(g, v))
}

// MatchingM returns the set M_G(i,j) of Section 5: all edges {v,u} such
// that p(v,i) = (u,j) and u is the distinguishable neighbour of v. By
// Lemma 2 the result is a matching. Note that M_G(i,j) and M_G(j,i) need
// not be disjoint.
func MatchingM(g *graph.Graph, i, j int) *graph.EdgeSet {
	s := graph.NewEdgeSet(g.M())
	for v := 0; v < g.N(); v++ {
		di, dj, ok := DistinguishablePort(g, v)
		if ok && di == i && dj == j {
			s.Add(g.EdgeAt(v, i))
		}
	}
	return s
}

// AllMatchings returns the full family {M_G(i,j)} for i, j in 1..deg,
// indexed [i-1][j-1], where deg is the maximum degree of g. Used by the
// Figure 8 reproduction.
func AllMatchings(g *graph.Graph) [][]*graph.EdgeSet {
	d := g.MaxDegree()
	out := make([][]*graph.EdgeSet, d)
	for i := 1; i <= d; i++ {
		out[i-1] = make([]*graph.EdgeSet, d)
		for j := 1; j <= d; j++ {
			out[i-1][j-1] = MatchingM(g, i, j)
		}
	}
	return out
}
