package core

import (
	"sync"

	"eds/internal/graph"
	"eds/internal/sim"
)

// The paper's algorithms have deterministic round schedules that depend
// only on the node's degree and the family parameter Δ, so a protocol
// compiles once into a program — a fixed list of parametric steps over
// a plain state struct — and every node of the same (algorithm, degree)
// shares that one compiled program. This replaces the earlier
// scriptNode design, which captured each node's state in per-step
// closures: ~2 heap allocations per step per *node* (a 3-regular
// RegularOdd node cost ~109) versus one program per *shape* here. Node
// state lives in a value slab and its slices come from the engine's
// StateArena, so constructing a run is O(1) allocations per shard and,
// once the pooled arenas are warm, zero.

// pstep is one synchronous round of a program: send writes the round's
// outgoing messages into a degree-length buffer that arrives all-nil
// (nil entries are empty messages; a nil send is a silent round), recv
// consumes the round's inbox. The buffer is engine-owned — send must
// not retain it or any subslice past its return (the outboxalias
// analyzer enforces this mechanically). Steps operate on the state
// through a pointer so one pstep value serves every node.
type pstep[S any] struct {
	send func(st *S, buf []sim.Message)
	recv func(st *S, inbox []sim.Message)
}

// program is one compiled protocol: the step schedule, an optional
// state initialiser, and the output projection. Programs are built once
// per (algorithm, degree) shape through cachedProgram and shared by
// every node and every run, so they must be immutable after build and
// their steps must keep all mutable state in *S.
type program[S any] struct {
	steps []pstep[S]
	// init prepares a node's zeroed state: carving slices from the
	// engine-owned arena (nil arena — the legacy NewNode path — falls
	// back to the heap via arenaInts/arenaBools) and setting non-zero
	// sentinel fields.
	init func(st *S, deg int, arena *sim.StateArena)
	// output appends the node's chosen 1-based ports to dst.
	output func(st *S, deg int, dst []int) []int
}

// progNode drives one node through a program; the node stops when the
// schedule is exhausted. Nodes are allocated in per-shard slabs by
// buildProgNodes, so they are cheap values: a program pointer, two
// ints, and the inline state struct.
type progNode[S any] struct {
	prog *program[S]
	deg  int
	pc   int
	st   S
}

var (
	_ sim.Node           = (*progNode[struct{}])(nil)
	_ sim.BufferedNode   = (*progNode[struct{}])(nil)
	_ sim.OutputAppender = (*progNode[struct{}])(nil)
)

// SendInto implements sim.BufferedNode: the engines hand progNode its
// outbox window directly, so a steady-state round of every compiled
// algorithm allocates nothing.
func (n *progNode[S]) SendInto(round int, buf []sim.Message) {
	if send := n.prog.steps[n.pc].send; send != nil {
		send(&n.st, buf)
	}
}

// Send implements the legacy allocation path; the engines prefer
// SendInto and only call this through the fallback for plain sim.Nodes.
func (n *progNode[S]) Send(round int) []sim.Message {
	msgs := make([]sim.Message, n.deg)
	n.SendInto(round, msgs)
	return msgs
}

func (n *progNode[S]) Receive(round int, inbox []sim.Message) {
	if recv := n.prog.steps[n.pc].recv; recv != nil {
		recv(&n.st, inbox)
	}
	n.pc++
}

func (n *progNode[S]) Done() bool { return n.pc >= len(n.prog.steps) }

// AppendOutput implements sim.OutputAppender, writing the chosen ports
// straight onto the engines' flat output buffer.
func (n *progNode[S]) AppendOutput(dst []int) []int {
	if n.prog.output == nil {
		return dst
	}
	return n.prog.output(&n.st, n.deg, dst)
}

func (n *progNode[S]) Output() []int {
	return n.AppendOutput(nil)
}

// newProgNode builds one node the legacy way: heap-allocated, state
// carved from the heap (nil arena). The Algorithm.NewNode paths stay on
// it; the engines use buildProgNodes through BulkAlgorithm instead.
func newProgNode[S any](prog *program[S], deg int) *progNode[S] {
	n := &progNode[S]{prog: prog, deg: deg}
	if prog.init != nil {
		prog.init(&n.st, deg, nil)
	}
	return n
}

// buildProgNodes implements the BulkAlgorithm contract for compiled
// algorithms: one value slab for the whole [lo, hi) range (the single
// per-shard allocation), per-node state carved from the shard's arena,
// programs resolved through prog with a last-degree memo so regular
// graphs do one cache lookup per shard instead of one per node.
func buildProgNodes[S any](g *graph.Graph, lo, hi int, arena *sim.StateArena, nodes []sim.Node, prog func(deg int) *program[S]) {
	slab := make([]progNode[S], hi-lo)
	lastDeg := -1
	var lastProg *program[S]
	for i := range slab {
		n := &slab[i]
		n.deg = g.Deg(lo + i)
		if n.deg != lastDeg {
			lastDeg = n.deg
			lastProg = prog(n.deg)
		}
		n.prog = lastProg
		if n.prog.init != nil {
			n.prog.init(&n.st, n.deg, arena)
		}
		nodes[i] = n
	}
}

// arenaInts carves n ints from the arena, or from the heap when the
// caller has no arena (the legacy NewNode path).
func arenaInts(a *sim.StateArena, n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return a.Ints(n)
}

// arenaBools is arenaInts for bools.
func arenaBools(a *sim.StateArena, n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	return a.Bools(n)
}

// appendChosen appends the 1-based ports whose flag is set.
func appendChosen(dst []int, chosen []bool) []int {
	for idx, c := range chosen {
		if c {
			dst = append(dst, idx+1)
		}
	}
	return dst
}

// progKey identifies one compiled program: the algorithm's Name (which
// encodes every behaviour-affecting parameter — e.g. Δ, SkipPruning)
// plus the degree for algorithms whose schedule is degree-dependent
// (degree-independent programs use deg 0).
type progKey struct {
	kind string
	deg  int
}

// programCache memoizes compiled programs for the life of the process.
// Programs are immutable and state-free, so sharing them across
// algorithm values, runs, and goroutines is safe; losing a LoadOrStore
// race only wastes one build.
var programCache sync.Map // progKey -> *program[S]

// cachedProgram returns the program for (kind, deg), building it at
// most once per process. It is deliberately a free function — the
// Algorithm methods that need programs call it rather than touching
// programCache themselves, keeping the cache access out of the
// algorithm determinism surface (the compiled programs are pure; the
// cache is invisible to the protocol).
func cachedProgram[S any](kind string, deg int, build func() *program[S]) *program[S] {
	key := progKey{kind: kind, deg: deg}
	if p, ok := programCache.Load(key); ok {
		return p.(*program[S])
	}
	p, _ := programCache.LoadOrStore(key, build())
	return p.(*program[S])
}
