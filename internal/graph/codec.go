package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteTo serialises the graph in a line-oriented text format:
//
//	# comments and blank lines are ignored
//	nodes <N>
//	conn <v> <i> <u> <j>    # p(v,i) = (u,j); one line per orbit
//
// The format round-trips through ReadGraph and is the interchange format
// of the edsrun tool's -graph file:PATH option.
func WriteTo(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "nodes %d\n", g.N())
	for v := 0; v < g.N(); v++ {
		for i := 1; i <= g.Deg(v); i++ {
			q := g.P(v, i)
			self := Port{Node: v, Num: i}
			// Emit each orbit once, from its canonical end.
			if q.Less(self) {
				continue
			}
			fmt.Fprintf(bw, "conn %d %d %d %d\n", v, i, q.Node, q.Num)
		}
	}
	return bw.Flush()
}

// ReadGraph parses the WriteTo format.
func ReadGraph(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "nodes":
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate nodes directive", line)
			}
			var n int
			if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: bad nodes directive %q", line, text)
			}
			if n < 0 {
				return nil, fmt.Errorf("graph: line %d: negative node count", line)
			}
			b = NewBuilder(n)
		case "conn":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: conn before nodes", line)
			}
			var v, i, u, j int
			if len(fields) != 5 {
				return nil, fmt.Errorf("graph: line %d: bad conn directive %q", line, text)
			}
			if _, err := fmt.Sscanf(strings.Join(fields[1:], " "), "%d %d %d %d", &v, &i, &u, &j); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			if err := b.Connect(v, i, u, j); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing nodes directive")
	}
	return b.Build()
}
