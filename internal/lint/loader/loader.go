// Package loader type-checks packages of this module for the edsvet
// analyzers using nothing but the standard library and the go command.
//
// The offline build environment rules out golang.org/x/tools/go/packages,
// so the loader reimplements the slice of it the analyzers need:
//
//  1. `go list -e -export -deps -json <patterns>` enumerates the target
//     packages and, crucially, makes the go command produce compiler
//     export data for every dependency (stored in the build cache and
//     reported in the Export field). This works fully offline.
//  2. Each target package's source files are parsed with go/parser
//     (comments retained, for //lint:ignore and // want directives).
//  3. go/types checks each target with importer.ForCompiler("gc") whose
//     lookup function serves dependencies' export data from step 1 —
//     the documented escape hatch for toolchains that no longer install
//     pre-compiled archives under GOROOT/pkg.
//
// Load covers non-test GoFiles; LoadTests additionally loads _test.go
// files via `go list -test`, which reports each test-bearing package
// three extra ways: the augmented variant "p [p.test]" (package files
// plus in-package test files), the external test package
// "p_test [p.test]", and the synthetic test main "p.test". LoadTests
// checks the first two — resolving their imports through the per-entry
// ImportMap, which redirects e.g. "eds/internal/sim" to its augmented
// variant — and skips the synthetic main (its GoFiles are generated
// stubs in the build cache). When an augmented variant is present its
// plain sibling is skipped, so each file is linted exactly once.
// Fixture packages under testdata (invisible to ./... patterns by
// design) are loaded with LoadDir, which resolves their imports through
// the same export table and includes in-package _test.go files.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	ForTest    string            // plain import path this test variant was built for
	ImportMap  map[string]string // source import path -> resolved (possibly test-variant) path
	Error      *struct{ Err string }
}

// exportTable maps import paths to compiler export data files, feeding
// the type-checker's importer.
type exportTable map[string]*listEntry

func (t exportTable) lookup(path string) (io.ReadCloser, error) {
	e, ok := t[path]
	if !ok || e.Export == "" {
		return nil, fmt.Errorf("loader: no export data for %q", path)
	}
	return os.Open(e.Export)
}

// goList runs `go list -e -export -deps -json` in dir and returns every
// reported package keyed by import path, plus the order encountered.
// With tests set it adds -test, so the table also holds export data for
// the augmented "[p.test]" variants that test packages import.
func goList(dir string, tests bool, patterns []string) (exportTable, []*listEntry, error) {
	args := []string{"list", "-e", "-export", "-deps"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args,
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,ForTest,ImportMap,Error")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("loader: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	table := exportTable{}
	var order []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		e := new(listEntry)
		if err := dec.Decode(e); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		table[e.ImportPath] = e
		order = append(order, e)
	}
	return table, order, nil
}

// Load type-checks the non-test sources of every package matching the
// patterns (e.g. "./..." or "eds/internal/sim"), resolved relative to
// moduleDir. Packages are returned sorted by import path.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	return load(moduleDir, false, patterns)
}

// LoadTests is Load with _test.go files included: each test-bearing
// package is checked as its augmented "[p.test]" variant (package files
// plus in-package test files), and external test packages ("p_test")
// are checked as packages of their own. Reported ImportPaths are the
// plain paths — the "[p.test]" suffix is an implementation detail of
// the go command.
func LoadTests(moduleDir string, patterns ...string) ([]*Package, error) {
	return load(moduleDir, true, patterns)
}

func load(moduleDir string, tests bool, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	table, order, err := goList(moduleDir, tests, patterns)
	if err != nil {
		return nil, err
	}
	// Plain packages shadowed by an augmented test variant are skipped:
	// the variant contains a superset of their files, and checking both
	// would report every finding in the shared files twice.
	augmented := map[string]bool{}
	for _, e := range order {
		if !e.DepOnly && !e.Standard && e.ForTest != "" && !strings.HasSuffix(e.ImportPath, ".test") {
			augmented[e.ForTest] = true
		}
	}
	fset := token.NewFileSet()
	shared := importer.ForCompiler(fset, "gc", table.lookup)
	var pkgs []*Package
	for _, e := range order {
		if e.DepOnly || e.Standard {
			continue
		}
		if strings.HasSuffix(e.ImportPath, ".test") {
			// Synthetic test main: its only GoFiles are generated stubs
			// in the build cache, nothing of ours to lint.
			continue
		}
		if e.ForTest == "" && augmented[e.ImportPath] {
			continue
		}
		if e.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", e.ImportPath, e.Error.Err)
		}
		if len(e.GoFiles) == 0 {
			continue
		}
		imp := shared
		if len(e.ImportMap) > 0 {
			// Test variants import other packages through a private map
			// (e.g. "eds/internal/sim" resolves to the augmented variant
			// compiled with its test files). A per-entry importer keeps
			// those redirected packages out of the shared cache.
			imp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
				if mapped, ok := e.ImportMap[path]; ok {
					path = mapped
				}
				return table.lookup(path)
			})
		}
		pkg, err := check(fset, imp, plainPath(e.ImportPath), e.Dir, e.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// plainPath strips the go command's test-variant marker:
// "p [p.test]" -> "p".
func plainPath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// LoadDir type-checks the single package rooted at dir (typically a
// fixture under testdata, which package patterns cannot reach). Imports
// are resolved by asking the go command, from moduleDir, for export
// data of the fixture's dependencies. In-package _test.go files are
// included, mirroring LoadTests, so fixtures can plant violations in
// test code too; external ("package p_test") fixture files are not
// supported — they would be a second package in the same directory.
func LoadDir(moduleDir, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %v", err)
	}
	var files []string
	for _, ent := range entries {
		if name := ent.Name(); strings.HasSuffix(name, ".go") {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	sort.Strings(files)

	// Parse first to learn the fixture's imports, then build the export
	// table for exactly those dependencies (and theirs, via -deps).
	fset := token.NewFileSet()
	var syntax []*ast.File
	importSet := map[string]bool{}
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		if strings.HasSuffix(name, "_test.go") && strings.HasSuffix(f.Name.Name, "_test") {
			return nil, fmt.Errorf("loader: %s: external test package fixtures are not supported", filepath.Join(dir, name))
		}
		syntax = append(syntax, f)
		for _, spec := range f.Imports {
			importSet[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	table := exportTable{}
	if len(importSet) > 0 {
		deps := make([]string, 0, len(importSet))
		for p := range importSet {
			deps = append(deps, p)
		}
		sort.Strings(deps)
		var err error
		table, _, err = goList(moduleDir, false, deps)
		if err != nil {
			return nil, err
		}
	}
	imp := importer.ForCompiler(fset, "gc", table.lookup)
	return checkFiles(fset, imp, importPath, dir, syntax)
}

func check(fset *token.FileSet, imp types.Importer, importPath, dir string, names []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		syntax = append(syntax, f)
	}
	return checkFiles(fset, imp, importPath, dir, syntax)
}

func checkFiles(fset *token.FileSet, imp types.Importer, importPath, dir string, syntax []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      syntax,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// ModuleDir locates the root directory of the main module enclosing
// dir, via `go env GOMOD`.
func ModuleDir(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("loader: go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("loader: %s is not inside a module", dir)
	}
	return filepath.Dir(gomod), nil
}
