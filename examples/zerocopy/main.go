// Zerocopy: writing a custom algorithm on the BufferedNode fast path.
//
// The paper's algorithms ship pre-migrated, but the zero-allocation
// machinery is open to user algorithms too: implement the optional
// eds.BufferedNode interface and the engines write your messages
// straight into their pooled flat outbox — no per-round []Message, no
// boxing copies, nothing for the garbage collector to chase while the
// rounds run. This example defines a toy multi-round protocol both
// ways and measures the difference with testing.AllocsPerRun: the
// buffered variant's allocation count is independent of the round
// count.
package main

import (
	"fmt"
	"log"
	"testing"

	"eds"
)

// beat is the heartbeat message. A zero-size struct value: every
// interface box of it points at the same runtime location, so emitting
// it allocates nothing.
type beat struct{}

// pulse is a deliberately minimal custom algorithm — every node
// broadcasts a heartbeat on all ports for a fixed number of rounds,
// counts what it hears, and selects no edges. Its only purpose is to
// show the two-method upgrade from Node to BufferedNode.
type pulse struct {
	rounds   int
	buffered bool
}

func (p pulse) Name() string { return fmt.Sprintf("pulse(%d)", p.rounds) }

func (p pulse) NewNode(degree int) eds.Node {
	n := &pulseNode{deg: degree, left: p.rounds}
	if p.buffered {
		return n // *pulseNode: has SendInto, engines take the fast path
	}
	return legacyOnly{n} // wrapper hides SendInto: engines fall back to Send
}

type pulseNode struct {
	deg   int
	left  int
	heard int
}

// SendInto is the fast path: write into the engine-owned buffer and
// keep nothing. buf arrives all-nil with exactly deg slots; slots left
// nil mean "no message on that port". Retaining buf is a bug — the
// engine rewrites it every round and pools it across runs — and the
// outboxalias analyzer reports any attempt.
func (n *pulseNode) SendInto(round int, buf []eds.Message) {
	for i := range buf {
		buf[i] = beat{}
	}
}

// Send is the classic contract: allocate and return a fresh slice.
// Engines never call it on a node that implements SendInto, but
// keeping it makes the node usable wherever a plain Node is expected.
func (n *pulseNode) Send(round int) []eds.Message {
	msgs := make([]eds.Message, n.deg)
	n.SendInto(round, msgs)
	return msgs
}

func (n *pulseNode) Receive(round int, inbox []eds.Message) {
	for _, m := range inbox {
		if _, ok := m.(beat); ok {
			n.heard++
		}
	}
	n.left--
}

func (n *pulseNode) Done() bool    { return n.left <= 0 }
func (n *pulseNode) Output() []int { return nil }

// legacyOnly forwards the four Node methods and nothing else (an
// embedded field would promote SendInto too), so the engines' one-time
// type assertion fails and every round goes through allocating Send.
type legacyOnly struct{ n *pulseNode }

func (w legacyOnly) Send(round int) []eds.Message           { return w.n.Send(round) }
func (w legacyOnly) Receive(round int, inbox []eds.Message) { w.n.Receive(round, inbox) }
func (w legacyOnly) Done() bool                             { return w.n.Done() }
func (w legacyOnly) Output() []int                          { return w.n.Output() }

var (
	_ eds.BufferedNode = (*pulseNode)(nil)
	_ eds.Node         = legacyOnly{}
)

func main() {
	log.SetFlags(0)
	g := eds.Torus(32, 32) // 1024 nodes, 4-regular

	measure := func(buffered bool, rounds int) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, _, err := eds.RunSharded(g, pulse{rounds: rounds, buffered: buffered}); err != nil {
				log.Fatal(err)
			}
		})
	}

	for _, mode := range []struct {
		name     string
		buffered bool
	}{{"legacy Send", false}, {"BufferedNode", true}} {
		short, long := measure(mode.buffered, 4), measure(mode.buffered, 64)
		fmt.Printf("%-12s  4 rounds: %6.0f allocs   64 rounds: %6.0f allocs   per extra round: %.2f\n",
			mode.name, short, long, (long-short)/60)
	}
	fmt.Println("\nThe buffered variant's allocations are per-run construction only:")
	fmt.Println("60 extra rounds cost 0 extra objects. That is the fast path the")
	fmt.Println("paper algorithms in internal/core run on.")
}
