package verify

import (
	"fmt"

	"eds/internal/graph"
)

// MaximalMatchingFromEDS converts an edge dominating set D into a maximal
// matching M with |M| <= |D| (Yannakakis and Gavril 1980; Section 1.1 of
// the paper). The construction first takes a greedy maximal matching
// inside D, then greedily extends it to a maximal matching of G. Every
// extension edge e can be charged to a distinct edge of D \ M: e is
// dominated by some f ∈ D sharing an endpoint u with e, and f's other
// endpoint is matched (else the first pass would have taken f), so f
// never becomes an extension edge itself and no other extension edge can
// reuse it.
//
// It returns an error if d is not an edge dominating set.
func MaximalMatchingFromEDS(g *graph.Graph, d *graph.EdgeSet) (*graph.EdgeSet, error) {
	if !IsEdgeDominatingSet(g, d) {
		return nil, fmt.Errorf("verify: input set is not an edge dominating set")
	}
	matched := make([]bool, g.N())
	m := graph.NewEdgeSet(g.M())
	add := func(idx int) {
		e := g.Edge(idx)
		if !e.IsLoop() && !matched[e.A.Node] && !matched[e.B.Node] {
			m.Add(idx)
			matched[e.A.Node] = true
			matched[e.B.Node] = true
		}
	}
	d.ForEach(func(idx int) bool {
		add(idx)
		return true
	})
	for idx := 0; idx < g.M(); idx++ {
		add(idx)
	}
	return m, nil
}
