// Package core implements the paper's distributed edge-dominating-set
// algorithms as port-numbering-model state machines:
//
//   - PortOne — Theorem 3: O(1) rounds, factor 4 - 2/d in d-regular
//     graphs (optimal for even d).
//   - RegularOdd — Theorem 4: O(d²) rounds, factor 4 - 6/(d+1) in
//     d-regular graphs for odd d (optimal).
//   - General — Theorem 5: the family A(Δ), O(Δ²) rounds, factor 4 - 1/k
//     in graphs of maximum degree Δ ∈ {2k, 2k+1} (optimal).
//   - AllEdges — the trivial optimal algorithm for Δ = 1.
//
// It also provides the Section 5 machinery the algorithms are built on:
// label pairs, uniquely labelled edges, distinguishable neighbours, and
// the constant-time matchings M_G(i,j) of Lemmas 1 and 2.
//
// Every node state machine derives its entire round schedule from the
// only information the model grants it — its own degree (plus the family
// parameter Δ for General) — so the running-time claims of Table 1 are
// directly observable as sim.Result.Rounds.
package core
