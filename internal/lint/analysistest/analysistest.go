// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against expectations embedded in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	bad := time.Now() // want `nondeterministic`
//
// A `// want` comment declares that the analyzer must report a
// diagnostic on that line whose message matches the backquoted regular
// expression; several expectations may be chained on one line. Every
// diagnostic must be wanted and every want must be matched, so fixtures
// pin both the positive and the negative behaviour of an analyzer.
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"eds/internal/lint/analysis"
	"eds/internal/lint/checker"
	"eds/internal/lint/loader"
)

var wantRE = regexp.MustCompile("// want ((?:`[^`]*`\\s*)+)")

// Run loads the fixture package in dir (resolving imports against the
// module rooted at moduleDir) and applies the analyzer, failing the test
// on any mismatch between reported diagnostics and `// want`
// expectations. It returns the findings for additional assertions.
func Run(t *testing.T, moduleDir, dir string, a *analysis.Analyzer) []checker.Finding {
	t.Helper()
	pkg, err := loader.LoadDir(moduleDir, dir, "fixture/"+a.Name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := checker.Run([]*loader.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "want ") && strings.Contains(c.Text, "`") {
						t.Errorf("%s: malformed want comment: %s", pkg.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, raw := range strings.Split(m[1], "`") {
					raw = strings.TrimSpace(raw)
					if raw == "" {
						continue
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := map[string]bool{}
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		ok := false
		for i, re := range wants[k] {
			id := fmt.Sprintf("%s:%d:%d", k.file, k.line, i)
			if !matched[id] && re.MatchString(f.Message) {
				matched[id] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			id := fmt.Sprintf("%s:%d:%d", k.file, k.line, i)
			if !matched[id] {
				t.Errorf("%s:%d: want diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
	return findings
}
