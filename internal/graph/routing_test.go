package graph

import (
	"testing"
)

// checkRouting asserts the flat routing view matches the involution P and
// is a self-inverse permutation of the global port space.
func checkRouting(t *testing.T, g *Graph) {
	t.Helper()
	off := g.PortOffsets()
	route := g.RoutingTable()
	if len(off) != g.N()+1 {
		t.Fatalf("PortOffsets length = %d, want %d", len(off), g.N()+1)
	}
	total := 0
	for v := 0; v < g.N(); v++ {
		if int(off[v]) != total {
			t.Fatalf("PortOffsets[%d] = %d, want %d", v, off[v], total)
		}
		total += g.Deg(v)
	}
	if int(off[g.N()]) != total || g.NumPorts() != total || len(route) != total {
		t.Fatalf("port space size mismatch: off[n]=%d NumPorts=%d len(route)=%d want %d",
			off[g.N()], g.NumPorts(), len(route), total)
	}
	for j := range route {
		p := route[j]
		if p < 0 || int(p) >= total {
			t.Fatalf("route[%d] = %d out of range [0,%d)", j, p, total)
		}
		if route[p] != int32(j) {
			t.Fatalf("routing table not self-inverse: route[%d]=%d but route[%d]=%d", j, p, p, route[p])
		}
	}
	for v := 0; v < g.N(); v++ {
		for i := 1; i <= g.Deg(v); i++ {
			q := g.P(v, i)
			want := off[q.Node] + int32(q.Num-1)
			if got := route[off[v]+int32(i-1)]; got != want {
				t.Fatalf("route for port (%d,%d) = %d, want %d (P=%v)", v, i, got, want, q)
			}
		}
	}
}

func TestRoutingTableSimple(t *testing.T) {
	g := MustFromUndirected(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	checkRouting(t, g)
}

func TestRoutingTableMultigraph(t *testing.T) {
	// Undirected loop (ports 1-2), directed loop (port 3, a fixed point),
	// and a parallel pair to node 1.
	b := NewBuilder(2)
	b.MustConnect(0, 1, 0, 2)
	b.MustConnect(0, 3, 0, 3)
	b.MustConnect(0, 4, 1, 1)
	b.MustConnect(0, 5, 1, 2)
	g := b.MustBuild()
	checkRouting(t, g)
	route := g.RoutingTable()
	if route[2] != 2 {
		t.Errorf("directed loop is not a fixed point: route[2] = %d", route[2])
	}
	if route[0] != 1 || route[1] != 0 {
		t.Errorf("undirected loop not routed within the node: route[0]=%d route[1]=%d", route[0], route[1])
	}
}

func TestRoutingTableEmptyAndIsolated(t *testing.T) {
	empty := NewBuilder(0).MustBuild()
	if empty.NumPorts() != 0 || len(empty.PortOffsets()) != 1 {
		t.Errorf("empty graph: NumPorts=%d len(off)=%d", empty.NumPorts(), len(empty.PortOffsets()))
	}
	iso := MustFromUndirected(3, nil)
	checkRouting(t, iso)
	if iso.NumPorts() != 0 {
		t.Errorf("isolated nodes: NumPorts = %d, want 0", iso.NumPorts())
	}
}

func TestRoutingTableCached(t *testing.T) {
	g := MustFromUndirected(3, [][2]int{{0, 1}, {1, 2}})
	r1 := g.RoutingTable()
	r2 := g.RoutingTable()
	if &r1[0] != &r2[0] {
		t.Error("RoutingTable not cached: distinct backing arrays")
	}
}
