package cluster

import (
	"sync"
	"time"
)

// Peer is one remote replica's health state. Readiness flips actively
// (the /readyz probe) and passively (a failed fill marks the peer down
// without waiting for the next probe); a down peer is excluded from
// rendezvous ownership until a probe sees it ready again.
type Peer struct {
	base string

	mu        sync.Mutex
	ready     bool
	lastErr   string
	lastEvent time.Time
}

func newPeer(base string) *Peer {
	return &Peer{base: base, ready: true}
}

// URL returns the peer's base URL.
func (p *Peer) URL() string { return p.base }

// Ready reports whether the peer is currently believed able to serve
// fills.
func (p *Peer) Ready() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ready
}

// markDown records a failure and reports whether this was a transition
// (the peer was ready before).
func (p *Peer) markDown(cause error) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	was := p.ready
	p.ready = false
	if cause != nil {
		p.lastErr = cause.Error()
	} else {
		p.lastErr = "unknown failure"
	}
	p.lastEvent = time.Now()
	return was
}

// markUp records a success and reports whether this was a transition.
func (p *Peer) markUp() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	was := p.ready
	p.ready = true
	p.lastErr = ""
	p.lastEvent = time.Now()
	return !was
}

func (p *Peer) status() PeerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PeerStatus{URL: p.base, Ready: p.ready, LastErr: p.lastErr, LastEvent: p.lastEvent}
}
