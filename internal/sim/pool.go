package sim

import (
	"fmt"
	"sync"

	"eds/internal/graph"
)

// runState is the engine-owned per-execution state: the node slice, the
// per-node retirement flags, the flat double-buffered message arrays of
// the routing-table engines, and the per-shard coordination state of the
// sharded engine. It is recycled through a sync.Pool so that repeated
// runs — the edsd serving pattern of many requests over same-shape
// graphs — allocate nothing beyond the algorithm's own node state: an
// acquired state whose slices already have the required capacity is
// reused as-is, and a smaller one grows with power-of-two rounding so a
// workload of one recurring shape reaches a steady state after its
// first run.
//
// Lifetime discipline (enforced by the engines, mechanically leaned on
// by the outboxalias analyzer): a state is acquired at run entry and
// released exactly once on every exit path, after all worker goroutines
// have stopped — the release is deferred before the workers start, so
// on cancellation, round-limit, or malformed-send exits the deferred
// worker shutdown runs first and no goroutine can touch a recycled
// buffer. release clears every pointer-carrying slot (nodes, messages)
// so the pool never pins node state or message payloads across runs.
type runState struct {
	nodes    []Node
	buffered []BufferedNode // buffered[v] != nil iff nodes[v] has the SendInto fast path
	done     []bool
	outbox   []Message // flat send buffer, indexed by global port
	inbox    []Message // flat receive buffer, gathered through the routing table
	stats    []shardStat
	bounds   []int
	hookView [][]Message // per-node outbox windows, built only for hooked runs

	// arenas[s] is shard s's StateArena (index 0 for the unsharded
	// engines). The chunks persist across pooled runs — acquireState only
	// rewinds the cursors — so bulk-built node state stops allocating
	// once a workload's shape has been seen. Held as a slice of values,
	// one per worker, so parallel construction needs no locks.
	arenas []StateArena

	// Sharded-engine phase coordination, reused across runs because a
	// channel cannot be closed and recycled: stop tokens, not close,
	// end a worker pool. Each worker owns one token channel — a shared
	// channel would let a fast worker steal a slow one's phase token and
	// run its shard twice while the other shard never runs. Capacities
	// are grown like the slices.
	work []chan int
	idle chan struct{}
}

// shardStat is one shard's slot of per-round accounting. Workers touch
// only their own slot, so the phases stay race-free by construction.
type shardStat struct {
	sent    int   // non-nil messages this round
	pending int   // nodes not yet retired
	err     error // first malformed Send (lowest node in shard)
}

var statePool = sync.Pool{New: func() any { return new(runState) }}

// roundCap rounds a requested length up to a power of two so that
// same-shape workloads stabilise on one buffer size and near-shapes
// share it.
func roundCap(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// grow returns buf resized to length n, reusing its backing array when
// the capacity suffices and allocating with power-of-two rounding when
// it does not. The returned slice's contents are unspecified; callers
// overwrite or clear what they read.
func grow[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]T, n, roundCap(n))
}

// acquireState returns a runState ready for a run over n nodes and
// ports global ports, with room for p shards (pass p = 0 for the
// engines that do not shard). done and stats come back zeroed; the
// message buffers are all-nil because release cleared them.
func acquireState(n, ports, p int) *runState {
	s := statePool.Get().(*runState)
	s.nodes = grow(s.nodes, n)
	s.buffered = grow(s.buffered, n)
	s.done = grow(s.done, n)
	clear(s.done)
	s.outbox = grow(s.outbox, ports)
	s.inbox = grow(s.inbox, ports)
	// One arena per worker (at least one). Unlike grow, the resize must
	// preserve the surviving elements: each arena carries chunks whose
	// whole point is reuse across runs.
	na := p
	if na < 1 {
		na = 1
	}
	if cap(s.arenas) >= na {
		s.arenas = s.arenas[:na]
	} else {
		old := s.arenas
		s.arenas = make([]StateArena, na, roundCap(na))
		copy(s.arenas, old)
	}
	for i := range s.arenas {
		s.arenas[i].reset()
	}
	if p > 0 {
		s.stats = grow(s.stats, p)
		clear(s.stats)
		s.bounds = grow(s.bounds, p+1)
		s.work = grow(s.work, p)
		for i := range s.work {
			if s.work[i] == nil {
				s.work[i] = make(chan int, 1)
			}
		}
		if cap(s.idle) < p {
			s.idle = make(chan struct{}, roundCap(p))
		}
	}
	return s
}

// buildNodes constructs the nodes of the half-open range [lo, hi),
// filling s.nodes and the s.buffered fast-path cache. Bulk-capable
// algorithms build the whole range at once from the given arena; legacy
// algorithms go through NewNode one node at a time. Safe for concurrent
// calls on disjoint ranges with distinct arenas — that is exactly how
// the sharded engine parallelizes its prologue.
func (s *runState) buildNodes(g *graph.Graph, a Algorithm, bulk BulkAlgorithm, lo, hi int, arena *StateArena) error {
	if bulk != nil {
		nodes := s.nodes[lo:hi:hi]
		bulk.BuildNodes(g, lo, hi, arena, nodes)
		for v := lo; v < hi; v++ {
			if s.nodes[v] == nil {
				return fmt.Errorf("sim: algorithm %q: BuildNodes left node %d nil", a.Name(), v)
			}
			s.buffered[v], _ = s.nodes[v].(BufferedNode)
		}
		return nil
	}
	for v := lo; v < hi; v++ {
		s.nodes[v] = a.NewNode(g.Deg(v))
		s.buffered[v], _ = s.nodes[v].(BufferedNode)
	}
	return nil
}

// release clears every reference the state holds — node pointers and
// boxed messages — and returns it to the pool. The engines call it via
// defer after all workers have stopped; a released state must never be
// touched again by the run that held it. The arenas stay as they are:
// their chunks hold only ints and bools, so they pin nothing, and
// keeping them warm is what makes repeat construction allocation-free.
func (s *runState) release() {
	clear(s.nodes)
	clear(s.buffered)
	clear(s.outbox)
	clear(s.inbox)
	clear(s.stats)
	clear(s.hookView)
	s.hookView = s.hookView[:0]
	statePool.Put(s)
}

// hookRows builds the hook's per-node view of the flat outbox: one
// capped subslice per node, so a round hook observes exactly the matrix
// the per-node engines would show. Only hooked runs pay this (one slice
// of n headers per run); hooks exist for traces and figures, not for
// the steady-state serving path.
func (s *runState) hookRows(off []int32, n int) [][]Message {
	rows := grow(s.hookView[:0], n)
	for v := 0; v < n; v++ {
		rows[v] = s.outbox[off[v]:off[v+1]:off[v+1]]
	}
	s.hookView = rows
	return rows
}

// fillSlot produces node v's outgoing messages for this round directly
// in its outbox window and returns the non-nil message count. Nodes
// implementing BufferedNode write into the engine-owned slot with no
// allocation and no copy; legacy nodes go through Send and are length-
// checked, so the malformed-send error stays byte-identical across
// engines and both node flavours.
func (s *runState) fillSlot(a Algorithm, v, round int, slot []Message) (int, error) {
	if b := s.buffered[v]; b != nil {
		clear(slot)
		b.SendInto(round, slot)
	} else {
		out := s.nodes[v].Send(round)
		if len(out) != len(slot) {
			return 0, malformedSend(a, v, len(out), len(slot))
		}
		copy(slot, out)
	}
	sent := 0
	for _, m := range slot {
		if m != nil {
			sent++
		}
	}
	return sent, nil
}
