// Package loader type-checks packages of this module for the edsvet
// analyzers using nothing but the standard library and the go command.
//
// The offline build environment rules out golang.org/x/tools/go/packages,
// so the loader reimplements the slice of it the analyzers need:
//
//  1. `go list -e -export -deps -json <patterns>` enumerates the target
//     packages and, crucially, makes the go command produce compiler
//     export data for every dependency (stored in the build cache and
//     reported in the Export field). This works fully offline.
//  2. Each target package's source files are parsed with go/parser
//     (comments retained, for //lint:ignore and // want directives).
//  3. go/types checks each target with importer.ForCompiler("gc") whose
//     lookup function serves dependencies' export data from step 1 —
//     the documented escape hatch for toolchains that no longer install
//     pre-compiled archives under GOROOT/pkg.
//
// Only non-test GoFiles are loaded: test files of the repo are linted by
// the regular test suite and `go vet`, and loading them would drag in
// the synthetic ".test" dependency graph. Fixture packages under
// testdata (invisible to ./... patterns by design) are loaded with
// LoadDir, which resolves their imports through the same export table.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// exportTable maps import paths to compiler export data files, feeding
// the type-checker's importer.
type exportTable map[string]*listEntry

func (t exportTable) lookup(path string) (io.ReadCloser, error) {
	e, ok := t[path]
	if !ok || e.Export == "" {
		return nil, fmt.Errorf("loader: no export data for %q", path)
	}
	return os.Open(e.Export)
}

// goList runs `go list -e -export -deps -json` in dir and returns every
// reported package keyed by import path, plus the order encountered.
func goList(dir string, patterns []string) (exportTable, []*listEntry, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("loader: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	table := exportTable{}
	var order []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		e := new(listEntry)
		if err := dec.Decode(e); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		table[e.ImportPath] = e
		order = append(order, e)
	}
	return table, order, nil
}

// Load type-checks the non-test sources of every package matching the
// patterns (e.g. "./..." or "eds/internal/sim"), resolved relative to
// moduleDir. Packages are returned sorted by import path.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	table, order, err := goList(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", table.lookup)
	var pkgs []*Package
	for _, e := range order {
		if e.DepOnly || e.Standard {
			continue
		}
		if e.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", e.ImportPath, e.Error.Err)
		}
		if len(e.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, e.ImportPath, e.Dir, e.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadDir type-checks the single package rooted at dir (typically a
// fixture under testdata, which package patterns cannot reach). Imports
// are resolved by asking the go command, from moduleDir, for export
// data of the fixture's dependencies.
func LoadDir(moduleDir, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %v", err)
	}
	var files []string
	for _, ent := range entries {
		if name := ent.Name(); strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	sort.Strings(files)

	// Parse first to learn the fixture's imports, then build the export
	// table for exactly those dependencies (and theirs, via -deps).
	fset := token.NewFileSet()
	var syntax []*ast.File
	importSet := map[string]bool{}
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		syntax = append(syntax, f)
		for _, spec := range f.Imports {
			importSet[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	table := exportTable{}
	if len(importSet) > 0 {
		deps := make([]string, 0, len(importSet))
		for p := range importSet {
			deps = append(deps, p)
		}
		sort.Strings(deps)
		var err error
		table, _, err = goList(moduleDir, deps)
		if err != nil {
			return nil, err
		}
	}
	imp := importer.ForCompiler(fset, "gc", table.lookup)
	return checkFiles(fset, imp, importPath, dir, syntax)
}

func check(fset *token.FileSet, imp types.Importer, importPath, dir string, names []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		syntax = append(syntax, f)
	}
	return checkFiles(fset, imp, importPath, dir, syntax)
}

func checkFiles(fset *token.FileSet, imp types.Importer, importPath, dir string, syntax []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      syntax,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// ModuleDir locates the root directory of the main module enclosing
// dir, via `go env GOMOD`.
func ModuleDir(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("loader: go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("loader: %s is not inside a module", dir)
	}
	return filepath.Dir(gomod), nil
}
