package core

// Message payloads exchanged by the algorithms. They are deliberately
// tiny: the port-numbering model does not bound message size, but every
// protocol in the paper needs only a few bits per round.

// msgMark marks an edge as selected (Theorem 3).
type msgMark struct{}

// msgLabel carries the sender's port number and degree over that port; the
// receiving endpoint learns the edge's label pair and its neighbour's
// degree (the first round of Theorems 4 and 5).
type msgLabel struct {
	Port int
	Deg  int
}

// msgPropose opens the two-round processing of one distinguishable edge in
// M_G(i,j): the proposer is the node whose distinguishable edge this is.
// Covered reports whether the proposer is already covered by the set under
// construction.
type msgPropose struct {
	Covered bool
}

// msgRespond closes the two-round processing of one distinguishable edge;
// Add is the joint decision.
type msgRespond struct {
	Add bool
}

// msgProbe opens the two-round pruning of one edge of D ∩ M_G(i,j) in
// phase II of Theorem 4. OtherCovered reports whether the probing endpoint
// remains covered by D \ {e}.
type msgProbe struct {
	OtherCovered bool
}

// msgProbeRespond closes the pruning exchange; Remove is the joint
// decision.
type msgProbeRespond struct {
	Remove bool
}

// msgStatus broadcasts whether the sender is covered by the matching M
// (phases II and III of Theorem 5).
type msgStatus struct {
	Covered bool
}

// msgProposal is a matching proposal in the proposal-based subroutines
// (phase II bipartite matching and phase III double-cover 2-matching of
// Theorem 5).
type msgProposal struct{}

// msgAnswer replies to a msgProposal.
type msgAnswer struct {
	Accept bool
}
