package main

import (
	"strings"
	"testing"
)

func TestEmitTable(t *testing.T) {
	var sb strings.Builder
	if err := emit(&sb, 6, 5, 5, false, false, 1); err != nil {
		t.Fatalf("emit: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 1",
		"d-regular (even)",
		"d-regular (odd)",
		"max degree Δ",
		"rows tight",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Every generated row must be tight.
	if !strings.Contains(out, "/") {
		t.Error("no ratio fractions in output")
	}
}

func TestEmitWithStudies(t *testing.T) {
	var sb strings.Builder
	if err := emit(&sb, 4, 3, 3, true, true, 1); err != nil {
		t.Fatalf("emit: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"Typical-case studies", "randomized-mm", "Locality study"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
