package graph_test

import (
	"bytes"
	"strings"
	"testing"

	"eds/internal/graph"
)

// TestDigestCanonical pins the digest's contract: wire-form cosmetics
// do not move it, structure does.
func TestDigestCanonical(t *testing.T) {
	const wire = "nodes 4\nconn 0 1 1 1\nconn 1 2 2 1\nconn 2 2 3 1\nconn 3 2 0 2\n"
	g1, err := graph.ReadGraph(strings.NewReader(wire))
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}

	// Comments, blank lines, and reordered conn lines decode to the same
	// port-numbered graph, so the digest must not move.
	cosmetic := "# cycle on four nodes\n\nnodes 4\nconn 3 2 0 2\nconn 0 1 1 1\nconn 2 2 3 1\nconn 1 2 2 1\n"
	g2, err := graph.ReadGraph(strings.NewReader(cosmetic))
	if err != nil {
		t.Fatalf("ReadGraph cosmetic: %v", err)
	}
	if graph.Digest(g1) != graph.Digest(g2) {
		t.Error("cosmetic wire-form change moved the digest")
	}

	// Round-tripping through the codec preserves the digest.
	var buf bytes.Buffer
	if err := graph.WriteTo(&buf, g1); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	g3, err := graph.ReadGraph(&buf)
	if err != nil {
		t.Fatalf("ReadGraph round-trip: %v", err)
	}
	if graph.Digest(g1) != graph.Digest(g3) {
		t.Error("codec round-trip moved the digest")
	}

	// A structural change — one extra node — must move it.
	g4, err := graph.ReadGraph(strings.NewReader(strings.Replace(wire, "nodes 4", "nodes 5", 1)))
	if err != nil {
		t.Fatalf("ReadGraph grown: %v", err)
	}
	if graph.Digest(g1) == graph.Digest(g4) {
		t.Error("structural change did not move the digest")
	}
}
