package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"eds/internal/gen"
	"eds/internal/graph"
)

// markAlg is a miniature of the paper's Theorem 3 algorithm: one round,
// mark port 1, select every edge that touches a port numbered 1.
type markAlg struct{}

func (markAlg) Name() string            { return "mark-port-one" }
func (markAlg) NewNode(degree int) Node { return &markNode{deg: degree} }

type markNode struct {
	deg  int
	done bool
	out  []int
}

func (n *markNode) Send(round int) []Message {
	msgs := make([]Message, n.deg)
	if n.deg > 0 {
		msgs[0] = "mark"
	}
	return msgs
}

func (n *markNode) Receive(round int, inbox []Message) {
	if n.deg > 0 {
		n.out = append(n.out, 1)
	}
	for i, m := range inbox {
		if m == "mark" && i != 0 {
			n.out = append(n.out, i+1)
		}
	}
	n.done = true
}

func (n *markNode) Done() bool    { return n.done }
func (n *markNode) Output() []int { return n.out }

// sumAlg runs `rounds` rounds, each node broadcasting a running sum seeded
// with its degree; the output is empty. It exercises multi-round routing.
type sumAlg struct{ rounds int }

func (sumAlg) Name() string              { return "degree-sum" }
func (a sumAlg) NewNode(degree int) Node { return &sumNode{deg: degree, left: a.rounds, sum: degree} }

type sumNode struct {
	deg, left, sum int
}

func (n *sumNode) Send(round int) []Message {
	msgs := make([]Message, n.deg)
	for i := range msgs {
		msgs[i] = n.sum
	}
	return msgs
}

func (n *sumNode) Receive(round int, inbox []Message) {
	for _, m := range inbox {
		n.sum += m.(int)
	}
	n.left--
}

func (n *sumNode) Done() bool    { return n.left <= 0 }
func (n *sumNode) Output() []int { return nil }

// neverAlg never terminates.
type neverAlg struct{}

func (neverAlg) Name() string            { return "never" }
func (neverAlg) NewNode(degree int) Node { return &neverNode{deg: degree} }

type neverNode struct{ deg int }

func (n *neverNode) Send(round int) []Message           { return make([]Message, n.deg) }
func (n *neverNode) Receive(round int, inbox []Message) {}
func (n *neverNode) Done() bool                         { return false }
func (n *neverNode) Output() []int                      { return nil }

// badPortAlg outputs an out-of-range port.
type badPortAlg struct{}

func (badPortAlg) Name() string            { return "bad-port" }
func (badPortAlg) NewNode(degree int) Node { return &badPortNode{deg: degree} }

type badPortNode struct{ deg int }

func (n *badPortNode) Send(round int) []Message           { return make([]Message, n.deg) }
func (n *badPortNode) Receive(round int, inbox []Message) {}
func (n *badPortNode) Done() bool                         { return true }
func (n *badPortNode) Output() []int                      { return []int{n.deg + 1} }

func TestMarkAlgOnCycle(t *testing.T) {
	g := gen.Cycle(5)
	res, err := RunSequential(g, markAlg{})
	if err != nil {
		t.Fatalf("RunSequential: %v", err)
	}
	if res.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", res.Rounds)
	}
	if err := CheckConsistency(g, res.Outputs); err != nil {
		t.Fatalf("CheckConsistency: %v", err)
	}
	d, err := EdgeSet(g, res.Outputs)
	if err != nil {
		t.Fatalf("EdgeSet: %v", err)
	}
	// Every node marked port 1, so D covers all nodes.
	covered := graph.CoveredNodes(g, d)
	for v, c := range covered {
		if !c {
			t.Errorf("node %d not covered", v)
		}
	}
}

func TestEnginesAgreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		switch rng.Intn(3) {
		case 0:
			g = gen.MustRandomRegular(rng, 6+2*rng.Intn(5), 3)
		case 1:
			g = gen.RandomBoundedDegree(rng, 5+rng.Intn(12), 4, 0.5)
		default:
			g = gen.RandomTree(rng, 2+rng.Intn(15))
		}
		for _, alg := range []Algorithm{markAlg{}, sumAlg{rounds: 3}} {
			seq, err := RunSequential(g, alg)
			if err != nil {
				return false
			}
			for _, run := range []func(*graph.Graph, Algorithm, ...Option) (*Result, error){RunConcurrent, RunSharded} {
				res, err := run(g, alg)
				if err != nil {
					return false
				}
				if !reflect.DeepEqual(seq.Outputs, res.Outputs) {
					return false
				}
				if seq.Rounds != res.Rounds || seq.Messages != res.Messages {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEnginesOnMultigraph(t *testing.T) {
	// One node, one undirected loop (ports 1-2) plus a directed loop
	// (port 3): message routing must bring a node's own messages back.
	b := graph.NewBuilder(1)
	b.MustConnect(0, 1, 0, 2)
	b.MustConnect(0, 3, 0, 3)
	g := b.MustBuild()
	seq, err := RunSequential(g, sumAlg{rounds: 2})
	if err != nil {
		t.Fatalf("RunSequential: %v", err)
	}
	con, err := RunConcurrent(g, sumAlg{rounds: 2})
	if err != nil {
		t.Fatalf("RunConcurrent: %v", err)
	}
	if seq.Messages != con.Messages || seq.Rounds != con.Rounds {
		t.Errorf("engines disagree: %+v vs %+v", seq, con)
	}
	sh, err := RunSharded(g, sumAlg{rounds: 2})
	if err != nil {
		t.Fatalf("RunSharded: %v", err)
	}
	if seq.Messages != sh.Messages || seq.Rounds != sh.Rounds {
		t.Errorf("sharded engine disagrees: %+v vs %+v", seq, sh)
	}
}

// varAlg runs for as many rounds as the node's own degree, broadcasting
// every round: on irregular graphs nodes retire at different times. This
// is the regression test for the sequential engine's done-scan — an early
// break used to leave retired nodes' flags unset, so they kept sending
// (inflating Messages relative to the other engines, or crashing nodes
// whose Send cannot run past their schedule).
type varAlg struct{}

func (varAlg) Name() string            { return "degree-rounds" }
func (varAlg) NewNode(degree int) Node { return &varNode{deg: degree, left: degree} }

type varNode struct{ deg, left int }

func (n *varNode) Send(round int) []Message {
	msgs := make([]Message, n.deg)
	for i := range msgs {
		msgs[i] = "tick"
	}
	return msgs
}

func (n *varNode) Receive(round int, inbox []Message) { n.left-- }
func (n *varNode) Done() bool                         { return n.left <= 0 }
func (n *varNode) Output() []int                      { return nil }

func TestHeterogeneousTermination(t *testing.T) {
	// Star K_{1,4}: the centre runs 4 rounds, the leaves one round each.
	g := graph.MustFromUndirected(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	seq, err := RunSequential(g, varAlg{})
	if err != nil {
		t.Fatalf("RunSequential: %v", err)
	}
	if seq.Rounds != 4 {
		t.Errorf("Rounds = %d, want 4", seq.Rounds)
	}
	// Centre sends 4 rounds x 4 ports, each leaf sends 1 round x 1 port.
	if want := 4*4 + 4; seq.Messages != want {
		t.Errorf("Messages = %d, want %d (retired leaves must not send)", seq.Messages, want)
	}
	for name, run := range map[string]func(*graph.Graph, Algorithm, ...Option) (*Result, error){
		"concurrent": RunConcurrent,
		"sharded":    RunSharded,
	} {
		res, err := run(g, varAlg{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Rounds != seq.Rounds || res.Messages != seq.Messages {
			t.Errorf("%s disagrees: %+v vs %+v", name, res, seq)
		}
	}
}

func TestCoveringMapLemma(t *testing.T) {
	// Section 2.3: a node of the covering graph outputs exactly what its
	// image outputs. C6 with pair ports covers the single-node loop
	// multigraph.
	bh := graph.NewBuilder(6)
	for v := 0; v < 6; v++ {
		bh.MustConnect(v, 1, (v+1)%6, 2)
	}
	h := bh.MustBuild()
	bg := graph.NewBuilder(1)
	bg.MustConnect(0, 1, 0, 2)
	g := bg.MustBuild()

	for _, alg := range []Algorithm{markAlg{}, sumAlg{rounds: 4}} {
		rh, err := RunSequential(h, alg)
		if err != nil {
			t.Fatalf("run on cover: %v", err)
		}
		rg, err := RunSequential(g, alg)
		if err != nil {
			t.Fatalf("run on base: %v", err)
		}
		for v := 0; v < 6; v++ {
			if !reflect.DeepEqual(rh.Outputs[v], rg.Outputs[0]) {
				t.Errorf("%s: output of covering node %d = %v, image outputs %v",
					alg.Name(), v, rh.Outputs[v], rg.Outputs[0])
			}
		}
	}
}

func TestRoundLimit(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := RunSequential(g, neverAlg{}, WithMaxRounds(10)); !errors.Is(err, ErrRoundLimit) {
		t.Errorf("sequential: err = %v, want ErrRoundLimit", err)
	}
	if _, err := RunConcurrent(g, neverAlg{}, WithMaxRounds(10)); !errors.Is(err, ErrRoundLimit) {
		t.Errorf("concurrent: err = %v, want ErrRoundLimit", err)
	}
	if _, err := RunSharded(g, neverAlg{}, WithMaxRounds(10)); !errors.Is(err, ErrRoundLimit) {
		t.Errorf("sharded: err = %v, want ErrRoundLimit", err)
	}
}

func TestInvalidOutputRejected(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := RunSequential(g, badPortAlg{}); err == nil {
		t.Error("out-of-range output accepted")
	}
}

func TestCheckConsistencyRejects(t *testing.T) {
	g := gen.Path(2) // single edge, ports (0,1)-(1,1)
	if err := CheckConsistency(g, [][]int{{1}, {}}); err == nil {
		t.Error("one-sided output accepted")
	}
	if err := CheckConsistency(g, [][]int{{1}, {1}}); err != nil {
		t.Errorf("consistent output rejected: %v", err)
	}
}

func TestRoundHookSeesMessages(t *testing.T) {
	g := gen.Cycle(3)
	var rounds int
	var total int
	hook := func(round int, sent [][]Message) {
		rounds++
		for _, row := range sent {
			for _, m := range row {
				if m != nil {
					total++
				}
			}
		}
	}
	res, err := RunSequential(g, sumAlg{rounds: 2}, WithRoundHook(hook))
	if err != nil {
		t.Fatalf("RunSequential: %v", err)
	}
	if rounds != res.Rounds {
		t.Errorf("hook saw %d rounds, result says %d", rounds, res.Rounds)
	}
	if total != res.Messages {
		t.Errorf("hook counted %d messages, result says %d", total, res.Messages)
	}
}

func TestRunAutoHonoursRoundHook(t *testing.T) {
	// Above the auto threshold RunAuto prefers the sharded engine, but a
	// round hook must force the sequential engine — the only one that
	// honours it — so the hook never goes silently uninvoked.
	g := gen.Cycle(AutoShardedPorts) // 2n ports, above the sharded cutover
	hooked := 0
	res, err := RunAuto(g, sumAlg{rounds: 2}, WithRoundHook(func(int, [][]Message) { hooked++ }))
	if err != nil {
		t.Fatalf("RunAuto with hook: %v", err)
	}
	if hooked != res.Rounds {
		t.Errorf("hook fired %d times, want %d", hooked, res.Rounds)
	}
	plain, err := RunAuto(g, sumAlg{rounds: 2})
	if err != nil {
		t.Fatalf("RunAuto: %v", err)
	}
	if plain.Rounds != res.Rounds || plain.Messages != res.Messages {
		t.Errorf("hooked and plain auto runs disagree: %+v vs %+v", res, plain)
	}
}

func TestEnginesRegistryComplete(t *testing.T) {
	want := []string{"sequential", "concurrent", "sharded"}
	reg := Engines()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d engines, want %d", len(reg), len(want))
	}
	for _, name := range want {
		if reg[name] == nil {
			t.Errorf("registry missing engine %q", name)
		}
	}
}

func TestIsolatedNodes(t *testing.T) {
	// Degree-0 nodes send and receive nothing but still run rounds and
	// terminate with an empty output.
	g := graph.MustFromUndirected(3, nil)
	res, err := RunSequential(g, markAlg{})
	if err != nil {
		t.Fatalf("RunSequential: %v", err)
	}
	for v, out := range res.Outputs {
		if len(out) != 0 {
			t.Errorf("node %d output %v, want empty", v, out)
		}
	}
	if res.Messages != 0 {
		t.Errorf("Messages = %d, want 0", res.Messages)
	}
}

func TestRunToEdgeSet(t *testing.T) {
	g := gen.Complete(4)
	d, res, err := RunToEdgeSet(g, markAlg{})
	if err != nil {
		t.Fatalf("RunToEdgeSet: %v", err)
	}
	if d.Empty() {
		t.Error("empty edge set from markAlg on K4")
	}
	if res.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", res.Rounds)
	}
}
