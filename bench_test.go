// Benchmarks regenerating every table and figure of the paper, plus the
// ablation and scaling studies of DESIGN.md. Each benchmark executes the
// full experiment per iteration and reports the measured approximation
// ratio and round count via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation artifacts alongside the runtime cost
// of the simulation itself.
package eds_test

import (
	"fmt"
	"math/rand"
	"testing"

	"eds/internal/core"
	"eds/internal/figures"
	"eds/internal/gen"
	"eds/internal/graph"
	"eds/internal/harness"
	"eds/internal/local"
	"eds/internal/lowerbound"
	"eds/internal/sim"
	"eds/internal/verify"
)

// benchRun executes alg on g per iteration and reports ratio and rounds.
func benchRun(b *testing.B, g *graph.Graph, alg sim.Algorithm, opt int) {
	b.Helper()
	var lastSize, lastRounds int
	for i := 0; i < b.N; i++ {
		d, res, err := sim.RunToEdgeSet(g, alg)
		if err != nil {
			b.Fatal(err)
		}
		lastSize = d.Count()
		lastRounds = res.Rounds
	}
	if opt > 0 {
		b.ReportMetric(float64(lastSize)/float64(opt), "ratio")
	}
	b.ReportMetric(float64(lastRounds), "rounds")
	b.ReportMetric(float64(g.N()), "nodes")
}

// BenchmarkTable1 regenerates every row of Table 1 (the paper's only
// table): the matching algorithm on the adversarial construction, with
// the measured tight ratio reported as a metric.
func BenchmarkTable1(b *testing.B) {
	b.Run("EvenRegular", func(b *testing.B) {
		for _, d := range []int{2, 4, 6, 8, 10, 12, 14, 16} {
			c := lowerbound.MustEven(d)
			b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
				benchRun(b, c.G, core.PortOne{}, c.Opt.Count())
			})
		}
	})
	b.Run("OddRegular", func(b *testing.B) {
		for _, d := range []int{1, 3, 5, 7, 9, 11, 13} {
			c := lowerbound.MustOdd(d)
			b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
				benchRun(b, c.G, core.RegularOdd{}, c.Opt.Count())
			})
		}
	})
	b.Run("DeltaOne", func(b *testing.B) {
		g := gen.PerfectMatching(64)
		benchRun(b, g, core.AllEdges{}, 64)
	})
	b.Run("BoundedDegree", func(b *testing.B) {
		for _, delta := range []int{2, 3, 4, 5, 6, 7, 9, 11, 13} {
			k := delta / 2
			c := lowerbound.MustEven(2 * k)
			b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
				benchRun(b, c.G, core.NewGeneral(delta), c.Opt.Count())
			})
		}
	})
}

// BenchmarkFigures regenerates each of the paper's nine figures per
// iteration, including all property validation.
func BenchmarkFigures(b *testing.B) {
	for id := 1; id <= 9; id++ {
		b.Run(fmt.Sprintf("Fig%d", id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := figures.Figure(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation measures the design choices DESIGN.md calls out.
func BenchmarkAblation(b *testing.B) {
	// Ext-A: phase II of Theorem 4 (pruning) is what brings 4-2/d down
	// to 4-6/(d+1). Compare both variants on the Theorem 2 construction.
	b.Run("NoPruning", func(b *testing.B) {
		for _, d := range []int{5, 9} {
			c := lowerbound.MustOdd(d)
			b.Run(fmt.Sprintf("d=%d/with-pruning", d), func(b *testing.B) {
				benchRun(b, c.G, core.RegularOdd{}, c.Opt.Count())
			})
			b.Run(fmt.Sprintf("d=%d/without-pruning", d), func(b *testing.B) {
				benchRun(b, c.G, core.RegularOdd{SkipPruning: true}, c.Opt.Count())
			})
		}
	})
	// Ext-B: what randomness would buy. The deterministic bound on the
	// Theorem 1 construction is 4-2/d; a randomized maximal matching
	// achieves at most 2.
	b.Run("Randomized", func(b *testing.B) {
		c := lowerbound.MustEven(8)
		rng := rand.New(rand.NewSource(1))
		opt := c.Opt.Count()
		var last int
		for i := 0; i < b.N; i++ {
			mm := local.RandomizedMaximalMatching(rng, c.G)
			last = mm.Count()
		}
		b.ReportMetric(float64(last)/float64(opt), "ratio")
	})
	// Ext-B': unique IDs (no randomness) also collapse the adversarial
	// ratio — anonymity, not determinism, is the bottleneck.
	b.Run("WithIDs", func(b *testing.B) {
		c := lowerbound.MustEven(8)
		opt := c.Opt.Count()
		var last int
		var rounds int
		for i := 0; i < b.N; i++ {
			mm, res, err := sim.RunToEdgeSet(c.G, core.NewIDMatching())
			if err != nil {
				b.Fatal(err)
			}
			last = mm.Count()
			rounds = res.Rounds
		}
		b.ReportMetric(float64(last)/float64(opt), "ratio")
		b.ReportMetric(float64(rounds), "rounds")
	})
}

// BenchmarkScaling shows locality: rounds depend on d, not n (Ext-C),
// and measures simulator throughput as n grows.
func BenchmarkScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{64, 256, 1024, 4096} {
		g := gen.MustRandomRegular(rng, n, 3)
		b.Run(fmt.Sprintf("RegularOdd3/n=%d", n), func(b *testing.B) {
			benchRun(b, g, core.RegularOdd{}, 0)
		})
	}
	for _, n := range []int{64, 1024, 16384} {
		g := gen.MustRandomRegular(rng, n, 4)
		b.Run(fmt.Sprintf("PortOne4/n=%d", n), func(b *testing.B) {
			benchRun(b, g, core.PortOne{}, 0)
		})
	}
}

// BenchmarkEngines compares the deterministic sequential engine against
// the goroutine-per-node channel engine on the same workload.
func BenchmarkEngines(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := gen.MustRandomRegular(rng, 512, 5)
	alg := core.RegularOdd{}
	b.Run("Sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunSequential(g, alg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Concurrent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunConcurrent(g, alg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSharded compares all three engines on large instances of the
// classic families — the workload class the sharded flat-buffer engine
// exists for — and then pushes the sharded engine alone to a million
// nodes. Per-iteration graph construction is excluded from the timing.
// The million-node cases are skipped under -short so CI smoke passes
// stay quick.
func BenchmarkSharded(b *testing.B) {
	engines := []struct {
		name string
		run  func(*graph.Graph, sim.Algorithm, ...sim.Option) (*sim.Result, error)
	}{
		{"sequential", sim.RunSequential},
		{"concurrent", sim.RunConcurrent},
		{"sharded", sim.RunSharded},
	}
	families := []struct {
		name  string
		build func() *graph.Graph
		alg   sim.Algorithm
	}{
		{"Cycle/n=100k", func() *graph.Graph { return gen.Cycle(100_000) }, core.PortOne{}},
		{"Torus/316x316", func() *graph.Graph { return gen.Torus(316, 316) }, core.PortOne{}},
		{"RandomRegular/n=100k,d=3", func() *graph.Graph {
			return gen.MustRandomRegular(rand.New(rand.NewSource(17)), 100_000, 3)
		}, core.RegularOdd{}},
	}
	for _, f := range families {
		g := f.build()
		g.RoutingTable() // build the flat view outside the timing
		for _, e := range engines {
			b.Run(f.name+"/"+e.name, func(b *testing.B) {
				b.ResetTimer()
				var rounds int
				for i := 0; i < b.N; i++ {
					res, err := e.run(g, f.alg)
					if err != nil {
						b.Fatal(err)
					}
					rounds = res.Rounds
				}
				b.ReportMetric(float64(rounds), "rounds")
				b.ReportMetric(float64(g.N()), "nodes")
			})
		}
	}
	million := []struct {
		name  string
		build func() *graph.Graph
		alg   sim.Algorithm
	}{
		{"Cycle/n=1M", func() *graph.Graph { return gen.Cycle(1_000_000) }, core.PortOne{}},
		{"Torus/1000x1000", func() *graph.Graph { return gen.Torus(1000, 1000) }, core.PortOne{}},
		{"RandomRegular/n=1M,d=3", func() *graph.Graph {
			return gen.MustRandomRegular(rand.New(rand.NewSource(23)), 1_000_000, 3)
		}, core.RegularOdd{}},
	}
	for _, f := range million {
		b.Run("Million/"+f.name+"/sharded", func(b *testing.B) {
			if testing.Short() {
				b.Skip("million-node benchmark skipped in -short mode")
			}
			g := f.build()
			g.RoutingTable()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunSharded(g, f.alg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(g.N()), "nodes")
		})
	}
}

// BenchmarkExactSolvers tracks the branch-and-bound baselines used to
// compute the optima in the studies.
func BenchmarkExactSolvers(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := gen.RandomBoundedDegree(rng, 14, 4, 0.5)
	b.Run("MinimumMaximalMatching", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			verify.MinimumMaximalMatching(g)
		}
	})
	b.Run("MinimumEDS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			verify.MinimumEdgeDominatingSet(g)
		}
	})
}

// BenchmarkExtensions tracks the extension algorithms: the blossom
// maximum matching used as a polynomial lower-bound oracle and the
// Polishchuk–Suomela distributed vertex cover 3-approximation.
func BenchmarkExtensions(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	b.Run("BlossomMaximumMatching/n=500", func(b *testing.B) {
		g := gen.MustRandomRegular(rng, 500, 4)
		for i := 0; i < b.N; i++ {
			verify.MaximumMatching(g)
		}
	})
	b.Run("VertexCover3/n=256", func(b *testing.B) {
		g := gen.MustRandomRegular(rng, 256, 4)
		alg := core.VertexCover3{Delta: 4}
		var rounds int
		for i := 0; i < b.N; i++ {
			res, err := sim.RunSequential(g, alg)
			if err != nil {
				b.Fatal(err)
			}
			rounds = res.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
}

// BenchmarkHarness regenerates the whole of Table 1 per iteration — the
// end-to-end cost of reproducing the paper's evaluation.
func BenchmarkHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table1(10, 9, 9)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Tight {
				b.Fatalf("row %s/%d not tight", r.Family, r.Param)
			}
		}
	}
}
