// Command edsbench gates the repo's allocation regressions: it parses
// `go test -benchmem` output, diffs every benchmark's allocs/op against
// the committed BENCH_baseline.json, and fails when an entry grew
// beyond tolerance. ns/op and B/op are recorded for context but never
// gated — they move with the host; the allocation counts are the
// machine-independent contract (steady-state rounds are pinned at 0 by
// the internal/sim regression tests, so everything here is per-run
// construction cost).
//
// Usage:
//
//	go test -short -run='^$' -bench='BenchmarkEngines|BenchmarkSharded' -benchmem -benchtime=5x . | go run ./cmd/edsbench
//	go run ./cmd/edsbench bench-output.txt
//	go run ./cmd/edsbench -update bench-output.txt   # refresh the baseline
//
// Benchmarks present in the input but absent from the baseline are
// ignored (the baseline names what is gated); baseline entries missing
// from the input fail the gate, so the baseline cannot silently rot
// when a benchmark is renamed or deleted — refresh it with -update.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Baseline mirrors BENCH_baseline.json.
type Baseline struct {
	Comment    string  `json:"_comment"`
	Generated  string  `json:"generated"`
	Go         string  `json:"go"`
	CPU        string  `json:"cpu"`
	Benchtime  string  `json:"benchtime"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one recorded benchmark result.
type Bench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Nodes       int     `json:"nodes,omitempty"`
	Rounds      int     `json:"rounds,omitempty"`
}

// gomaxprocsSuffix strips the trailing "-N" GOMAXPROCS marker go test
// appends to benchmark names, so results diff stably across core counts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench parses one `go test -bench -benchmem` result line, e.g.
//
//	BenchmarkSharded/Cycle/n=100k/sharded-8  5  42791983 ns/op  21800513 B/op  800005 allocs/op  100000 nodes  1.000 rounds
//
// Returns ok=false for non-benchmark lines (headers, PASS, ok, skips).
func parseBench(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Bench{}, false
	}
	b := Bench{Name: gomaxprocsSuffix.ReplaceAllString(fields[0], "")}
	// fields[1] is the iteration count; after it come value/unit pairs.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = val
			seen = true
		case "B/op":
			b.BytesPerOp = int64(val)
		case "allocs/op":
			b.AllocsPerOp = int64(val)
			seen = true
		case "nodes":
			b.Nodes = int(val)
		case "rounds":
			b.Rounds = int(val)
		}
	}
	return b, seen
}

// parseOutput scans full `go test` output and returns every benchmark
// result plus the reported CPU model (from the "cpu:" header), keyed by
// stripped name. A benchmark that appears twice keeps the last result.
func parseOutput(r io.Reader) (map[string]Bench, string, error) {
	results := map[string]Bench{}
	cpu := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		if b, ok := parseBench(line); ok {
			results[b.Name] = b
		}
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	return results, cpu, nil
}

// diff compares measured results against the baseline and returns one
// human-readable problem per violated entry. Growth beyond
// want*(1+tolerance)+slack fails; shrinkage never does (refresh the
// baseline with -update to bank an improvement).
func diff(baseline []Bench, got map[string]Bench, tolerance float64, slack int64) []string {
	var problems []string
	for _, want := range baseline {
		g, ok := got[want.Name]
		if !ok {
			problems = append(problems,
				fmt.Sprintf("%s: in baseline but not in the benchmark output — renamed or deleted? refresh with -update", want.Name))
			continue
		}
		ceiling := int64(float64(want.AllocsPerOp)*(1+tolerance)) + slack
		if g.AllocsPerOp > ceiling {
			problems = append(problems,
				fmt.Sprintf("%s: allocs/op grew %d → %d (ceiling %d = baseline +%.0f%% +%d)",
					want.Name, want.AllocsPerOp, g.AllocsPerOp, ceiling, tolerance*100, slack))
		}
	}
	return problems
}

// regenerate builds a fresh baseline from measured results, keeping the
// gated set stable: only benchmarks already in the baseline are
// refreshed, in the baseline's order. Gating a new benchmark means
// adding its entry to BENCH_baseline.json by hand first — an explicit,
// reviewable act — after which -update keeps it current.
func regenerate(old *Baseline, got map[string]Bench, cpu, benchtime string) *Baseline {
	fresh := &Baseline{
		Comment: "Baseline snapshot of the engine benchmarks; allocs_per_op is the gated number (ns/op moves with the host). " +
			"Regenerate with: go test -short -run='^$' -bench='BenchmarkEngines|BenchmarkSharded' -benchmem -benchtime=5x . | go run ./cmd/edsbench -update " +
			"— steady-state rounds are pinned at 0 allocations by TestEngineRoundsAllocationFree and TestMigratedAlgorithmsZeroAllocSteadyState, " +
			"and full-run construction is pinned O(1) by TestSetupAllocationBudget, so every alloc here is per-run slab or Result assembly.",
		Generated: time.Now().Format("2006-01-02"),
		Go:        runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		CPU:       cpu,
		Benchtime: benchtime,
	}
	if fresh.CPU == "" {
		fresh.CPU = old.CPU
	}
	for _, want := range old.Benchmarks {
		if g, ok := got[want.Name]; ok {
			fresh.Benchmarks = append(fresh.Benchmarks, g)
		}
	}
	return fresh
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("edsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "path to the committed baseline")
	tolerance := fs.Float64("tolerance", 0.25, "relative allocs/op growth allowed before failing")
	slack := fs.Int64("slack", 10000, "absolute allocs/op growth allowed on top of the tolerance (absorbs cold-pool first iterations)")
	update := fs.Bool("update", false, "rewrite the baseline from the measured results instead of gating")
	benchtime := fs.String("benchtime", "5x", "benchtime recorded in a regenerated baseline")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer f.Close()
		in = f
	}
	got, cpu, err := parseOutput(in)
	if err != nil {
		fmt.Fprintf(stderr, "edsbench: reading benchmark output: %v\n", err)
		return 2
	}
	if len(got) == 0 {
		fmt.Fprintln(stderr, "edsbench: no benchmark results in input (did you pass -bench and -benchmem?)")
		return 2
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "edsbench: %v\n", err)
		return 2
	}
	var baseline Baseline
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(stderr, "edsbench: parsing %s: %v\n", *baselinePath, err)
		return 2
	}

	if *update {
		fresh := regenerate(&baseline, got, cpu, *benchtime)
		if len(fresh.Benchmarks) == 0 {
			fmt.Fprintln(stderr, "edsbench: refusing to write an empty baseline: no measured benchmark matches the current baseline set")
			return 2
		}
		out, err := json.MarshalIndent(fresh, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "edsbench: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "edsbench: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "edsbench: wrote %s (%d benchmarks)\n", *baselinePath, len(fresh.Benchmarks))
		return 0
	}

	problems := diff(baseline.Benchmarks, got, *tolerance, *slack)
	for _, p := range problems {
		fmt.Fprintf(stderr, "edsbench: FAIL %s\n", p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(stderr, "edsbench: %d allocation regression(s) against %s\n", len(problems), *baselinePath)
		return 1
	}
	fmt.Fprintf(stdout, "edsbench: OK — %d gated benchmarks within allocs/op ceilings (tolerance %.0f%% + %d)\n",
		len(baseline.Benchmarks), *tolerance*100, *slack)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
