//go:build !race

// Allocation regression suite for the zero-allocation fast path: the
// sharded engine must not allocate in steady-state rounds, neither in
// its own machinery (pooled run state, persistent workers, flat
// buffers) nor on behalf of the migrated algorithms (BufferedNode
// writes straight into the engine-owned outbox; every steady-state
// message is a zero- or bool-sized struct, which Go interns when
// boxed). The suite is excluded under -race because the race runtime
// instruments allocations and would report spurious counts.
package sim_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"testing"

	"eds/internal/core"
	"eds/internal/gen"
	"eds/internal/graph"
	"eds/internal/sim"
)

// spin is a message-free BufferedNode algorithm with a configurable
// round count. Two runs that differ only in round count isolate the
// engine's own per-round allocation cost: any difference in total
// allocations is chargeable to the extra rounds alone.
type spin struct{ rounds int }

func (spin) Name() string                  { return "spin" }
func (s spin) NewNode(degree int) sim.Node { return &spinNode{deg: degree, left: s.rounds} }
func (s spin) Rounds(int) int              { return s.rounds }

type spinNode struct{ deg, left int }

func (n *spinNode) SendInto(round int, buf []sim.Message)  {}
func (n *spinNode) Receive(round int, inbox []sim.Message) { n.left-- }
func (n *spinNode) Done() bool                             { return n.left <= 0 }
func (n *spinNode) Output() []int                          { return nil }

func (n *spinNode) Send(round int) []sim.Message { return make([]sim.Message, n.deg) }

var _ sim.BufferedNode = (*spinNode)(nil)

// disableGC turns the collector off for the duration of a measurement so
// sync.Pool contents survive and allocation counts are deterministic.
func disableGC(t *testing.T) {
	t.Helper()
	old := debug.SetGCPercent(-1)
	t.Cleanup(func() { debug.SetGCPercent(old) })
}

// TestEngineRoundsAllocationFree proves the per-round engine cost is
// exactly zero: a 68-round run must allocate precisely as much as a
// 4-round run of the same algorithm on the same graph — the fixed
// per-run cost (node construction, result assembly) with nothing
// proportional to rounds.
func TestEngineRoundsAllocationFree(t *testing.T) {
	disableGC(t)
	g := gen.Cycle(256)
	g.RoutingTable() // build the flat view outside the measurement

	engines := []struct {
		name string
		run  func(*graph.Graph, sim.Algorithm, ...sim.Option) (*sim.Result, error)
	}{
		{"sharded", sim.RunSharded},
		{"sequential", sim.RunSequential},
	}
	for _, e := range engines {
		t.Run(e.name, func(t *testing.T) {
			measure := func(rounds int) float64 {
				var err error
				allocs := testing.AllocsPerRun(50, func() {
					_, err = e.run(g, spin{rounds: rounds}, sim.WithShards(4))
				})
				if err != nil {
					t.Fatal(err)
				}
				return allocs
			}
			short, long := measure(4), measure(68)
			if long != short {
				t.Errorf("%s engine allocates per round: 4 rounds → %.1f allocs/run, 68 rounds → %.1f allocs/run (want equal)",
					e.name, short, long)
			}
		})
	}
}

// TestMigratedAlgorithmsZeroAllocSteadyState asserts 0 allocations per
// steady-state round for every migrated constant-round algorithm on the
// sharded engine, measured directly: a round hook samples the global
// allocation counter between the send and receive barriers (no worker
// goroutine runs in that window), so consecutive samples bracket one
// full receive+send cycle. Rounds 0 and 1 are excluded — the label/ID
// exchange boxes payload-carrying messages by design — and every round
// after them must allocate exactly nothing.
func TestMigratedAlgorithmsZeroAllocSteadyState(t *testing.T) {
	disableGC(t)
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		name string
		g    *graph.Graph
		alg  func() sim.Algorithm
	}{
		{"RegularOdd/d=3", gen.MustRandomRegular(rng, 128, 3), func() sim.Algorithm { return core.RegularOdd{} }},
		{"RegularOdd/d=5", gen.MustRandomRegular(rng, 64, 5), func() sim.Algorithm { return core.RegularOdd{} }},
		{"General/delta=3", gen.RandomBoundedDegree(rng, 128, 3, 0.5), func() sim.Algorithm { return core.NewGeneral(3) }},
		{"IDMatching", gen.MustRandomRegular(rng, 64, 3), func() sim.Algorithm { return core.NewIDMatching() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			g.RoutingTable()
			// Warm-up run: fills the state pool so the measured run
			// reuses every buffer.
			if _, err := sim.RunSharded(g, tc.alg(), sim.WithShards(4)); err != nil {
				t.Fatal(err)
			}
			samples := make([]uint64, 0, 4096)
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms) // warm the sampling path itself
			hook := func(round int, sent [][]sim.Message) {
				runtime.ReadMemStats(&ms)
				samples = append(samples, ms.Mallocs)
			}
			if _, err := sim.RunSharded(g, tc.alg(), sim.WithShards(4), sim.WithRoundHook(hook)); err != nil {
				t.Fatal(err)
			}
			if len(samples) < 4 {
				t.Fatalf("only %d rounds ran; too few to observe a steady state", len(samples))
			}
			for i := 2; i < len(samples); i++ {
				if d := samples[i] - samples[i-1]; d != 0 {
					t.Errorf("round %d: %d allocations in a steady-state round, want 0", i, d)
				}
			}
		})
	}
}

// TestSetupAllocationBudget is the setup-phase sibling of
// TestEngineRoundsAllocationFree: with a warm state pool, a full run —
// node construction included — must cost O(1) slab allocations, not
// O(n) per-node ones. The budget is deliberately loose (the arena's
// chunk list grows by doubling, so a 10× larger graph may cost a few
// extra chunk allocations) but it is numerically tiny next to n: a
// regression back to per-node state (one alloc per node would be
// 100,000 here) trips it by three orders of magnitude.
//
// IDMatching is asserted separately: its ID-exchange round boxes one
// payload-carrying message per port by design (IDs do not fit the
// interned-value fast path), so its floor is O(ports) — but it must
// stay within that round's budget and not regress to O(n·rounds).
func TestSetupAllocationBudget(t *testing.T) {
	disableGC(t)
	// Per-run allocation ceiling for the flat-state algorithms, valid
	// for both sizes. Measured: ≤35 sequential, ≤112 sharded at
	// n=100,000 (the sharded engine adds per-shard output buffers and
	// barrier bookkeeping).
	const budget = 256
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name string
		alg  func() sim.Algorithm
	}{
		{"RegularOdd", func() sim.Algorithm { return core.RegularOdd{} }},
		{"PortOne", func() sim.Algorithm { return core.PortOne{} }},
		{"General/delta=3", func() sim.Algorithm { return core.NewGeneral(3) }},
		{"VertexCover3", func() sim.Algorithm { return core.VertexCover3{Delta: 3} }},
	}
	engines := []struct {
		name string
		run  func(*graph.Graph, sim.Algorithm, ...sim.Option) (*sim.Result, error)
	}{
		{"sequential", sim.RunSequential},
		{"sharded", func(g *graph.Graph, a sim.Algorithm, opts ...sim.Option) (*sim.Result, error) {
			return sim.RunSharded(g, a, append(opts, sim.WithShards(4))...)
		}},
	}
	for _, n := range []int{10_000, 100_000} {
		g := gen.MustRandomRegular(rng, n, 3)
		g.RoutingTable() // build the flat view outside the measurement
		for _, tc := range cases {
			for _, e := range engines {
				t.Run(fmt.Sprintf("n=%d/%s/%s", n, tc.name, e.name), func(t *testing.T) {
					// Warm-up run: fills the pool so the measured run
					// reuses every slab and arena chunk.
					if _, err := e.run(g, tc.alg()); err != nil {
						t.Fatal(err)
					}
					var err error
					allocs := testing.AllocsPerRun(1, func() {
						_, err = e.run(g, tc.alg())
					})
					if err != nil {
						t.Fatal(err)
					}
					if allocs > budget {
						t.Errorf("full run allocated %.0f times, budget %d — setup is no longer O(1) slabs", allocs, budget)
					}
				})
			}
		}
	}
	// IDMatching: O(ports) floor from round-0 msgID boxing, nothing more.
	for _, n := range []int{10_000, 100_000} {
		g := gen.MustRandomRegular(rng, n, 3)
		g.RoutingTable()
		t.Run(fmt.Sprintf("n=%d/IDMatching/sharded", n), func(t *testing.T) {
			run := func() error {
				_, err := sim.RunSharded(g, core.NewIDMatching(), sim.WithShards(4))
				return err
			}
			if err := run(); err != nil {
				t.Fatal(err)
			}
			var err error
			allocs := testing.AllocsPerRun(1, func() { err = run() })
			if err != nil {
				t.Fatal(err)
			}
			if ceiling := float64(g.NumPorts() + budget); allocs > ceiling {
				t.Errorf("full run allocated %.0f times, ceiling %.0f (ports + budget) — ID exchange should be the only boxing round", allocs, ceiling)
			}
		})
	}
}

// TestLegacyFallbackStillWorks pins the compatibility contract: a plain
// sim.Node without SendInto takes the copying fallback on every engine
// and produces the same results as its BufferedNode twin.
func TestLegacyFallbackStillWorks(t *testing.T) {
	g := gen.Cycle(64)
	want, err := sim.RunSequential(g, core.PortOne{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.RunSharded(g, legacyPortOne{}, sim.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Outputs) != len(want.Outputs) {
		t.Fatalf("output length mismatch: %d vs %d", len(got.Outputs), len(want.Outputs))
	}
	for v := range want.Outputs {
		if len(got.Outputs[v]) != len(want.Outputs[v]) {
			t.Fatalf("node %d: outputs differ: %v vs %v", v, got.Outputs[v], want.Outputs[v])
		}
		for i := range want.Outputs[v] {
			if got.Outputs[v][i] != want.Outputs[v][i] {
				t.Fatalf("node %d: outputs differ: %v vs %v", v, got.Outputs[v], want.Outputs[v])
			}
		}
	}
}

// legacyPortOne reimplements PortOne as a plain Send-allocating node, so
// the fallback path stays covered by a real protocol even though all
// shipped algorithms now implement BufferedNode.
type legacyPortOne struct{}

func (legacyPortOne) Name() string { return "legacy-portone" }

func (legacyPortOne) NewNode(degree int) sim.Node {
	return &legacyPortOneNode{deg: degree, chosen: make([]bool, degree)}
}

type legacyPortOneNode struct {
	deg    int
	chosen []bool
	done   bool
}

type legacyMark struct{}

func (n *legacyPortOneNode) Send(round int) []sim.Message {
	msgs := make([]sim.Message, n.deg)
	if n.deg >= 1 {
		msgs[0] = legacyMark{}
	}
	return msgs
}

func (n *legacyPortOneNode) Receive(round int, inbox []sim.Message) {
	if n.deg >= 1 {
		n.chosen[0] = true
	}
	for idx, m := range inbox {
		if _, ok := m.(legacyMark); ok {
			n.chosen[idx] = true
		}
	}
	n.done = true
}

func (n *legacyPortOneNode) Done() bool { return n.done }

func (n *legacyPortOneNode) Output() []int {
	out := make([]int, 0, len(n.chosen))
	for idx, c := range n.chosen {
		if c {
			out = append(out, idx+1)
		}
	}
	return out
}
