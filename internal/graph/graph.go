// Package graph implements port-numbered graphs, the network model of
// Suomela's "Distributed Algorithms for Edge Dominating Sets" (PODC 2010),
// Section 2.1.
//
// A port-numbered graph is a set of nodes V, a degree function d, and an
// involution p on the set of ports {(v, i) : v ∈ V, 1 ≤ i ≤ d(v)}. The
// involution routes messages: what node v sends to its port i is received
// by node u from port j whenever p(v, i) = (u, j).
//
// The package supports multigraphs: parallel edges, undirected loops
// (p(v, i) = (v, j) with i ≠ j), and directed loops (fixed points
// p(v, i) = (v, i)). Simple graphs are a validated special case. Covering
// maps in the lower-bound constructions target multigraphs, so the whole
// stack runs on them unchanged.
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Port identifies one port of one node. Node is the 0-based node index and
// Num is the 1-based port number, following the paper's convention that a
// node of degree d has ports 1, 2, ..., d.
type Port struct {
	Node int
	Num  int
}

// Less orders ports lexicographically by (Node, Num).
func (p Port) Less(q Port) bool {
	if p.Node != q.Node {
		return p.Node < q.Node
	}
	return p.Num < q.Num
}

// String formats the port as "(v, i)".
func (p Port) String() string {
	return fmt.Sprintf("(%d,%d)", p.Node, p.Num)
}

// Edge is one edge of a port-numbered graph, identified by the pair of
// ports it connects. A is the canonically smaller port. For a directed
// loop (a fixed point of the involution) A == B; for an undirected loop
// A.Node == B.Node with A.Num < B.Num.
type Edge struct {
	A, B Port
}

// U returns the node index of endpoint A.
func (e Edge) U() int { return e.A.Node }

// V returns the node index of endpoint B.
func (e Edge) V() int { return e.B.Node }

// IsLoop reports whether both endpoints are the same node.
func (e Edge) IsLoop() bool { return e.A.Node == e.B.Node }

// IsDirectedLoop reports whether the edge is a fixed point of the
// involution (the paper's directed loop).
func (e Edge) IsDirectedLoop() bool { return e.A == e.B }

// Other returns the endpoint opposite to node v. It panics if v is not an
// endpoint. For loops it returns v itself.
func (e Edge) Other(v int) int {
	switch v {
	case e.A.Node:
		return e.B.Node
	case e.B.Node:
		return e.A.Node
	default:
		panic(fmt.Sprintf("graph: node %d is not an endpoint of %v", v, e))
	}
}

// Covers reports whether the edge covers node v (v is an endpoint).
func (e Edge) Covers(v int) bool { return e.A.Node == v || e.B.Node == v }

// String formats the edge as "{u,v}" with its port pair.
func (e Edge) String() string {
	return fmt.Sprintf("{%d,%d}[%d:%d]", e.A.Node, e.B.Node, e.A.Num, e.B.Num)
}

// Graph is an immutable port-numbered graph. Construct one with a Builder,
// or with a generator from internal/gen. The zero value is the empty graph.
type Graph struct {
	conn   [][]Port // conn[v][i-1] = p(v, i)
	edges  []Edge   // canonical edge list, sorted by Edge.A
	edgeAt [][]int  // edgeAt[v][i-1] = index into edges for the edge at (v, i)

	// Lazily built flat routing view (see routing.go).
	routeOnce sync.Once
	portOff   []int32 // portOff[v] = global index of port (v, 1); len N()+1
	route     []int32 // route[j] = global index of the partner of port j
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.conn) }

// M returns the number of edges (loops count once, a directed loop is one
// edge, parallel edges count separately).
func (g *Graph) M() int { return len(g.edges) }

// Deg returns the degree of node v, i.e. its number of ports. A directed
// loop contributes 1 to the degree, an undirected loop contributes 2.
func (g *Graph) Deg(v int) int { return len(g.conn[v]) }

// P evaluates the involution: P(v, i) is the port connected to port i of
// node v. Port numbers are 1-based.
func (g *Graph) P(v, i int) Port { return g.conn[v][i-1] }

// EdgeAt returns the index (into Edges) of the edge attached to port i of
// node v.
func (g *Graph) EdgeAt(v, i int) int { return g.edgeAt[v][i-1] }

// Edge returns the edge with the given index.
func (g *Graph) Edge(idx int) Edge { return g.edges[idx] }

// Edges returns the canonical edge list. The caller must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// MaxDegree returns the maximum node degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for v := range g.conn {
		if d := len(g.conn[v]); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// Regular reports whether all nodes have the same degree and returns that
// degree. The empty graph is vacuously 0-regular.
func (g *Graph) Regular() (d int, ok bool) {
	if len(g.conn) == 0 {
		return 0, true
	}
	d = len(g.conn[0])
	for v := 1; v < len(g.conn); v++ {
		if len(g.conn[v]) != d {
			return 0, false
		}
	}
	return d, true
}

// IsSimple reports whether the graph has no loops and no parallel edges.
func (g *Graph) IsSimple() bool {
	seen := make(map[[2]int]bool, len(g.edges))
	for _, e := range g.edges {
		if e.IsLoop() {
			return false
		}
		key := [2]int{e.A.Node, e.B.Node}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if seen[key] {
			return false
		}
		seen[key] = true
	}
	return true
}

// Neighbour returns the node at the other end of port i of node v.
func (g *Graph) Neighbour(v, i int) int { return g.conn[v][i-1].Node }

// Neighbours returns the multiset of neighbours of v in port order.
// The result is freshly allocated.
func (g *Graph) Neighbours(v int) []int {
	out := make([]int, len(g.conn[v]))
	for i, p := range g.conn[v] {
		out[i] = p.Node
	}
	return out
}

// HasEdgeBetween reports whether at least one edge joins u and v.
func (g *Graph) HasEdgeBetween(u, v int) bool {
	for _, p := range g.conn[u] {
		if p.Node == v {
			return true
		}
	}
	return false
}

// PortBetween returns v's port number of some edge {v, u}, or 0 if none.
func (g *Graph) PortBetween(v, u int) int {
	for i, p := range g.conn[v] {
		if p.Node == u {
			return i + 1
		}
	}
	return 0
}

// IncidentEdges returns the indices of all edges incident to v, in port
// order. Loops appear once per incident port pair for undirected loops
// (i.e. once, deduplicated) and once for directed loops.
func (g *Graph) IncidentEdges(v int) []int {
	out := make([]int, 0, len(g.conn[v]))
	seen := make(map[int]bool, len(g.conn[v]))
	for i := range g.conn[v] {
		idx := g.edgeAt[v][i]
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	return out
}

// Validate checks the structural invariants: every port is assigned, the
// connection function is an involution, and the edge index is consistent.
func (g *Graph) Validate() error {
	for v := range g.conn {
		for i1, q := range g.conn[v] {
			i := i1 + 1
			if q.Node < 0 || q.Node >= len(g.conn) {
				return fmt.Errorf("graph: port (%d,%d) connects to out-of-range node %d", v, i, q.Node)
			}
			if q.Num < 1 || q.Num > len(g.conn[q.Node]) {
				return fmt.Errorf("graph: port (%d,%d) connects to out-of-range port %v", v, i, q)
			}
			back := g.conn[q.Node][q.Num-1]
			if back != (Port{Node: v, Num: i}) {
				return fmt.Errorf("graph: involution violated at (%d,%d): p(%d,%d)=%v but p%v=%v",
					v, i, v, i, q, q, back)
			}
			idx := g.edgeAt[v][i1]
			if idx < 0 || idx >= len(g.edges) {
				return fmt.Errorf("graph: edge index out of range at (%d,%d)", v, i)
			}
			e := g.edges[idx]
			self := Port{Node: v, Num: i}
			if e.A != self && e.B != self {
				return fmt.Errorf("graph: edge index at (%d,%d) points to unrelated edge %v", v, i, e)
			}
		}
	}
	return nil
}

// Equal reports whether two graphs have identical node sets, degrees, and
// involutions (hence identical port numberings).
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() {
		return false
	}
	for v := range g.conn {
		if len(g.conn[v]) != len(h.conn[v]) {
			return false
		}
		for i := range g.conn[v] {
			if g.conn[v][i] != h.conn[v][i] {
				return false
			}
		}
	}
	return true
}

// String renders a compact description, mostly for test failure messages.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Graph(n=%d, m=%d)", g.N(), g.M())
	return sb.String()
}

// buildEdges derives the canonical edge list from a validated connection
// table. Each involution orbit of size two becomes one undirected edge;
// each fixed point becomes one directed loop.
func buildEdges(conn [][]Port) ([]Edge, [][]int) {
	var edges []Edge
	edgeAt := make([][]int, len(conn))
	for v := range conn {
		edgeAt[v] = make([]int, len(conn[v]))
		for i := range edgeAt[v] {
			edgeAt[v][i] = -1
		}
	}
	for v := range conn {
		for i1, q := range conn[v] {
			if edgeAt[v][i1] >= 0 {
				continue
			}
			self := Port{Node: v, Num: i1 + 1}
			e := Edge{A: self, B: q}
			if q.Less(self) {
				e = Edge{A: q, B: self}
			}
			idx := len(edges)
			edges = append(edges, e)
			edgeAt[v][i1] = idx
			if q != self {
				edgeAt[q.Node][q.Num-1] = idx
			}
		}
	}
	// Canonicalise order: sort edges by the A port, remap indices.
	perm := make([]int, len(edges))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		ea, eb := edges[perm[a]], edges[perm[b]]
		if ea.A != eb.A {
			return ea.A.Less(eb.A)
		}
		return ea.B.Less(eb.B)
	})
	inv := make([]int, len(edges))
	sorted := make([]Edge, len(edges))
	for newIdx, oldIdx := range perm {
		sorted[newIdx] = edges[oldIdx]
		inv[oldIdx] = newIdx
	}
	for v := range edgeAt {
		for i := range edgeAt[v] {
			edgeAt[v][i] = inv[edgeAt[v][i]]
		}
	}
	return sorted, edgeAt
}
