package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"eds/internal/graph"
	"eds/internal/ratio"
	"eds/internal/sim"
	"eds/internal/verify"
)

// streamChunkBytes is the write-buffer size of the NDJSON stream: the
// response leaves in chunks of roughly this size, each followed by a
// flush, so the client sees edges while the tail is still being
// written and the server never holds more than one chunk of one
// response in memory.
const streamChunkBytes = 64 << 10

// streamRun answers ?edges=1&stream=1 in chunked NDJSON: one summary
// line (RunResponse with EdgeList omitted; Edges announces the line
// count), then one `[u,v]` line per dominating edge. A million-edge
// response is ~16 MiB of body served from a 64 KiB buffer, where the
// buffered JSON path would build the whole [][2]int and its marshalled
// body in memory first.
//
// Streams bypass the result cache and the flight group — their point is
// that the complete body never exists, so there is nothing to cache or
// share — and they are always served by the replica the client asked
// (owner routing buys nothing without a cacheable body). The run still
// goes through the admission queue like any other.
func (s *Server) streamRun(ctx context.Context, w http.ResponseWriter, req runRequest, g *graph.Graph, alg sim.Algorithm, bound *ratio.R) {
	release, code := s.acquire(ctx)
	if code != 0 {
		s.writeError(w, code, "request not admitted (%d workers busy, queue of %d full or deadline passed)",
			s.cfg.Workers, s.cfg.QueueDepth)
		return
	}
	defer release()

	start := time.Now()
	res, split, err := s.runEngine(ctx, req.engine, req.shards, g, alg)
	if err != nil {
		if errors.Is(err, sim.ErrCanceled) {
			if errors.Is(err, context.DeadlineExceeded) {
				s.writeError(w, http.StatusGatewayTimeout, "run exceeded its %s deadline", req.timeout)
				return
			}
			s.writeError(w, StatusClientClosedRequest, "client canceled the run")
			return
		}
		s.writeError(w, http.StatusInternalServerError, "%s", err)
		return
	}
	s.st.recordLatency(alg.Name(), time.Since(start))
	s.st.recordPhases(split)

	d, err := sim.EdgeSet(g, res.Outputs)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "collecting edge set: %v", err)
		return
	}
	summary := RunResponse{
		Algorithm:  alg.Name(),
		N:          g.N(),
		M:          g.M(),
		Rounds:     res.Rounds,
		Messages:   res.Messages,
		Edges:      d.Count(),
		Dominating: verify.IsEdgeDominatingSet(g, d),
	}
	if bound != nil {
		summary.Bound = bound.String()
	}
	summaryLine, err := buildSummaryLine(summary)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Cache", "bypass")
	w.WriteHeader(http.StatusOK)

	cw := &flushingCounter{w: w}
	if f, ok := w.(http.Flusher); ok {
		cw.f = f
	}
	bw := bufio.NewWriterSize(cw, streamChunkBytes)
	bw.Write(summaryLine)
	var line []byte
	for _, idx := range d.Indices() {
		e := g.Edge(idx)
		line = append(line[:0], '[')
		line = strconv.AppendInt(line, int64(e.U()), 10)
		line = append(line, ',')
		line = strconv.AppendInt(line, int64(e.V()), 10)
		line = append(line, ']', '\n')
		if _, err := bw.Write(line); err != nil {
			// The client went away mid-stream; there is no status left to
			// change, just stop producing.
			s.st.recordStream(cw.n)
			s.st.recordStatus(http.StatusOK)
			return
		}
	}
	bw.Flush()
	s.st.recordStream(cw.n)
	s.st.recordStatus(http.StatusOK)
}

func buildSummaryLine(summary RunResponse) ([]byte, error) {
	body, err := json.Marshal(summary)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// flushingCounter counts body bytes and flushes the HTTP layer after
// every buffer drain, turning each full bufio chunk into one HTTP/1.1
// chunk on the wire.
type flushingCounter struct {
	w http.ResponseWriter
	f http.Flusher
	n int64
}

func (c *flushingCounter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	if c.f != nil {
		c.f.Flush()
	}
	return n, err
}
