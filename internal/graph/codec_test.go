package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCodecRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSimpleGraph(rng, 2+rng.Intn(12), rng.Float64())
		var sb strings.Builder
		if err := WriteTo(&sb, g); err != nil {
			return false
		}
		h, err := ReadGraph(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return g.Equal(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCodecRoundTripMultigraph(t *testing.T) {
	b := NewBuilder(2)
	b.MustConnect(0, 1, 1, 2)
	b.MustConnect(0, 2, 1, 1)
	b.MustConnect(0, 3, 0, 3) // directed loop
	b.MustConnect(1, 3, 1, 4) // undirected loop
	g := b.MustBuild()
	var sb strings.Builder
	if err := WriteTo(&sb, g); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	h, err := ReadGraph(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if !g.Equal(h) {
		t.Errorf("round trip changed the graph:\n%s", sb.String())
	}
}

func TestReadGraphErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"conn before nodes", "conn 0 1 1 1\nnodes 2"},
		{"duplicate nodes", "nodes 2\nnodes 3"},
		{"bad nodes", "nodes x"},
		{"negative nodes", "nodes -1"},
		{"short conn", "nodes 2\nconn 0 1 1"},
		{"out of range", "nodes 2\nconn 0 1 5 1"},
		{"double wire", "nodes 3\nconn 0 1 1 1\nconn 0 1 2 1"},
		{"hole in ports", "nodes 2\nconn 0 2 1 1"},
		{"unknown directive", "nodes 1\nfrobnicate"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadGraph(strings.NewReader(tc.input)); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestReadGraphCommentsAndWhitespace(t *testing.T) {
	input := `
# a comment
nodes 2

conn 0 1 1 1
`
	g, err := ReadGraph(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if g.N() != 2 || g.M() != 1 {
		t.Errorf("got n=%d m=%d", g.N(), g.M())
	}
}
