package cluster

import "hash/fnv"

// rendezvousScore is the highest-random-weight score of (replica,
// graph): FNV-1a over the canonical graph digest followed by the
// replica's base URL. Every replica computes the same scores from the
// same static membership, so ownership needs no coordination: the
// replica with the maximum score owns the digest, and when a replica
// drops out only the digests it owned move (each to its second-highest
// scorer) — the defining property of rendezvous hashing, and the reason
// a replica failure does not reshuffle the fleet's cache the way a
// modulo assignment would.
//
// FNV-1a is not cryptographic, but the input digest is already a
// sha256: the hash here only needs to mix the digest with the replica
// name deterministically and cheaply.
func rendezvousScore(replica string, digest []byte) uint64 {
	h := fnv.New64a()
	h.Write(digest)
	h.Write([]byte(replica))
	return h.Sum64()
}
