package main

import (
	"fmt"
	"io"
	"os"

	"eds/internal/graph"
	"eds/internal/ratio"
	"eds/internal/render"
	"eds/internal/sim"
	"eds/internal/verify"
)

// report prints the execution summary and optionally a DOT rendering.
func report(w io.Writer, g *graph.Graph, alg sim.Algorithm, bound *ratio.R,
	res *sim.Result, knownOpt *graph.EdgeSet, exact bool, dotOut string) error {
	d, err := sim.EdgeSet(g, res.Outputs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph: n=%d m=%d maxdeg=%d", g.N(), g.M(), g.MaxDegree())
	if deg, ok := g.Regular(); ok {
		fmt.Fprintf(w, " (%d-regular)", deg)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "algorithm: %s\n", alg.Name())
	fmt.Fprintf(w, "rounds: %d, messages: %d\n", res.Rounds, res.Messages)
	fmt.Fprintf(w, "|D| = %d, feasible EDS: %v\n", d.Count(), verify.IsEdgeDominatingSet(g, d))
	if bound != nil {
		fmt.Fprintf(w, "worst-case guarantee: %s (= %.4f)\n", bound, bound.Float64())
	}

	optSize := -1
	switch {
	case knownOpt != nil:
		optSize = knownOpt.Count()
		fmt.Fprintf(w, "known optimum: %d\n", optSize)
	case exact:
		opt := verify.MinimumMaximalMatching(g)
		optSize = opt.Count()
		fmt.Fprintf(w, "exact optimum: %d\n", optSize)
	default:
		mm := verify.GreedyMaximalMatching(g).Count()
		lb := (mm + 1) / 2
		dom := 2*g.MaxDegree() - 1
		if dom >= 1 {
			if byDom := (g.M() + dom - 1) / dom; byDom > lb {
				lb = byDom
			}
		}
		if lb > 0 {
			fmt.Fprintf(w, "optimum lower bound: %d (ratio at most %.4f)\n", lb, float64(d.Count())/float64(lb))
		}
	}
	if optSize > 0 {
		r := ratio.New(int64(d.Count()), int64(optSize))
		fmt.Fprintf(w, "measured ratio: %s (= %.4f)\n", r, r.Float64())
	}

	if dotOut != "" {
		opts := render.Options{
			Title:    fmt.Sprintf("%s on n=%d m=%d", alg.Name(), g.N(), g.M()),
			Overlays: []render.Overlay{{Name: "output D", Set: d, Color: "red"}},
		}
		if knownOpt != nil {
			opts.Overlays = append(opts.Overlays,
				render.Overlay{Name: "optimum", Set: knownOpt, Color: "blue"})
		}
		if err := os.WriteFile(dotOut, []byte(render.DOT(g, opts)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", dotOut)
	}
	return nil
}
