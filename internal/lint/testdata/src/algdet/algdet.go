// Package algdet is the algdeterminism fixture: a sim.Algorithm whose
// node code commits every class of nondeterminism the analyzer knows,
// next to a clean twin that must stay diagnostic-free. Each violation
// here produces byte-identical results across engines on most runs —
// which is why the cross-engine equivalence suite alone cannot be
// trusted to catch them.
package algdet

import (
	"math/rand"
	"time"

	"eds/internal/sim"
)

// epoch is package-level mutable state; node code must not read it.
var epoch = 3

// Bad is an Algorithm whose nodes consult every forbidden input.
type Bad struct{}

var _ sim.Algorithm = Bad{}

func (Bad) Name() string { return "bad" }

func (Bad) NewNode(degree int) sim.Node {
	seen := map[int]bool{}
	return &badNode{deg: degree, seen: seen}
}

type badNode struct {
	deg  int
	seen map[int]bool
	pc   int
}

func (n *badNode) Send(round int) []sim.Message {
	msgs := make([]sim.Message, n.deg)
	if time.Now().UnixNano()%2 == 0 { // want `time\.Now`
		msgs[0] = "tick"
	}
	if rand.Intn(2) == 1 { // want `forbids randomness`
		msgs[0] = "coin"
	}
	for p := range n.seen { // want `map iteration order`
		msgs[p%n.deg] = "replay"
	}
	if round > epoch { // want `package-level state`
		msgs[0] = "late"
	}
	return msgs
}

func (n *badNode) Receive(round int, inbox []sim.Message) {
	// Order-insensitive map iteration (pure counting) is legal: no
	// message or port production depends on it.
	count := 0
	for range n.seen {
		count++
	}
	for i, m := range inbox {
		if m != nil {
			n.seen[i] = true
		}
	}
	n.pc++
}

func (n *badNode) Done() bool { return n.pc >= 2 }

func (n *badNode) Output() []int {
	var out []int
	for p := range n.seen { // want `map iteration order`
		out = append(out, p+1)
	}
	return out
}

// Good is the deterministic twin: same protocol, lawful state handling.
type Good struct{}

var _ sim.Algorithm = Good{}

func (Good) Name() string { return "good" }

func (Good) NewNode(degree int) sim.Node {
	return &goodNode{deg: degree, seen: make([]bool, degree)}
}

type goodNode struct {
	deg  int
	seen []bool
	pc   int
}

func (n *goodNode) Send(round int) []sim.Message {
	msgs := make([]sim.Message, n.deg)
	for i := range msgs {
		if n.seen[i] {
			msgs[i] = "ack"
		}
	}
	return msgs
}

func (n *goodNode) Receive(round int, inbox []sim.Message) {
	for i, m := range inbox {
		if m != nil {
			n.seen[i] = true
		}
	}
	n.pc++
}

func (n *goodNode) Done() bool { return n.pc >= 2 }

func (n *goodNode) Output() []int {
	var out []int
	for i, s := range n.seen {
		if s {
			out = append(out, i+1)
		}
	}
	return out
}
