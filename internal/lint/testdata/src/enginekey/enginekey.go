// Package enginekey is the enginekey fixture: an engine registry that
// grows three new entries — one unmarked (reported), one asserted
// result-equivalent, one opted out of result-cache sharing. The
// equivalence tests cannot catch the unmarked case at all: the hazard
// is not a wrong result today but a silently shared cache entry the day
// a non-equivalent engine lands.
package enginekey

import (
	"eds/internal/graph"
	"eds/internal/sim"
)

type runner = func(*graph.Graph, sim.Algorithm, ...sim.Option) (*sim.Result, error)

// Engines mirrors the real registry in eds/internal/sim/sharded.go.
func Engines() map[string]runner {
	return map[string]runner{
		"sequential": sim.RunSequential,
		"concurrent": sim.RunConcurrent,
		"sharded":    sim.RunSharded,
		"frontier":   sim.RunSharded,    // want `not in the asserted-equivalent baseline`
		"replay":     sim.RunSequential, // enginekey:equivalent — asserted by TestEngineEquivalence
		"sampled":    sim.RunSharded,    // enginekey:cache-keyed — cacheKey carries an engine component for it
	}
}
