// End-to-end suite for the edsd serving layer, driven through a real
// HTTP stack (httptest): request decoding, engine execution, cache
// behaviour, admission control, deadlines, and graceful drain. Most
// tests use the real engines; the saturation and drain tests substitute
// a gated runner so the timing is deterministic.
//
// The file lives in package server (not server_test) so it can reach the
// runEngine seam and the internal queue/semaphore lengths.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"eds/internal/gen"
	"eds/internal/graph"
	"eds/internal/sim"
)

// graphBytes serialises g in the codec wire format.
func graphBytes(t testing.TB, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteTo(&buf, g); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

func postRun(t testing.TB, client *http.Client, url, query string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url+"/v1/run"+query, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, out
}

func decodeRun(t testing.TB, body []byte) RunResponse {
	t.Helper()
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	return rr
}

func TestServerHappyPath(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := gen.Cycle(12)
	resp, body := postRun(t, ts.Client(), ts.URL, "?alg=auto&engine=auto&edges=1", graphBytes(t, g))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss", got)
	}
	rr := decodeRun(t, body)
	if rr.Algorithm != "portone" { // cycle is 2-regular → auto resolves to portone
		t.Errorf("algorithm = %q, want portone", rr.Algorithm)
	}
	if rr.N != 12 || rr.M != 12 {
		t.Errorf("got n=%d m=%d, want 12/12", rr.N, rr.M)
	}
	if rr.Rounds != 1 {
		t.Errorf("rounds = %d, want 1 (PortOne is a one-round algorithm)", rr.Rounds)
	}
	if !rr.Dominating {
		t.Error("output is not an edge dominating set")
	}
	if len(rr.EdgeList) != rr.Edges {
		t.Errorf("edge_list has %d entries, edges says %d", len(rr.EdgeList), rr.Edges)
	}
	if rr.Bound == "" {
		t.Error("bound missing for a regular graph")
	}

	// Every engine name must be accepted and agree.
	for _, engine := range []string{"sequential", "concurrent", "sharded"} {
		resp, body2 := postRun(t, ts.Client(), ts.URL, "?alg=portone&engine="+engine, graphBytes(t, g))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("engine %s: status = %d, body %s", engine, resp.StatusCode, body2)
		}
		rr2 := decodeRun(t, body2)
		if rr2.Edges != rr.Edges || rr2.Rounds != rr.Rounds || rr2.Messages != rr.Messages {
			t.Errorf("engine %s disagrees: %+v vs %+v", engine, rr2, rr)
		}
	}
}

func TestServerCacheHitReturnsIdenticalBytes(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := gen.Hypercube(4)
	first, body1 := postRun(t, ts.Client(), ts.URL, "?alg=auto", graphBytes(t, g))
	if first.StatusCode != http.StatusOK || first.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first request: status %d, X-Cache %q", first.StatusCode, first.Header.Get("X-Cache"))
	}
	second, body2 := postRun(t, ts.Client(), ts.URL, "?alg=auto", graphBytes(t, g))
	if second.StatusCode != http.StatusOK {
		t.Fatalf("second request: status %d", second.StatusCode)
	}
	if second.Header.Get("X-Cache") != "hit" {
		t.Errorf("second request X-Cache = %q, want hit", second.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("cache hit returned different bytes:\n%s\nvs\n%s", body1, body2)
	}

	// The cache keys on the canonical graph + resolved algorithm, so a
	// cosmetically different wire form (comments, blank lines) of the
	// same graph and the resolved algorithm name both hit.
	cosmetic := append([]byte("# same graph, different bytes\n\n"), graphBytes(t, g)...)
	third, body3 := postRun(t, ts.Client(), ts.URL, "?alg=portone", cosmetic)
	if third.StatusCode != http.StatusOK || third.Header.Get("X-Cache") != "hit" {
		t.Errorf("cosmetic variant: status %d, X-Cache %q, want hit", third.StatusCode, third.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body1, body3) {
		t.Error("cosmetic variant returned different bytes")
	}

	// A different algorithm on the same graph must miss.
	fourth, _ := postRun(t, ts.Client(), ts.URL, "?alg=alledges", graphBytes(t, g))
	if fourth.Header.Get("X-Cache") != "miss" {
		t.Errorf("different algorithm X-Cache = %q, want miss", fourth.Header.Get("X-Cache"))
	}
}

func TestServerBadRequests(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cycle := graphBytes(t, gen.Cycle(6))
	tests := []struct {
		name  string
		query string
		body  string
		want  int
	}{
		{"malformed graph", "", "nodes zz\n", http.StatusBadRequest},
		{"conn before nodes", "", "conn 0 1 1 1\n", http.StatusBadRequest},
		{"empty body", "", "", http.StatusBadRequest},
		{"unknown algorithm", "?alg=zigzag", string(cycle), http.StatusBadRequest},
		{"unknown engine", "?engine=quantum", string(cycle), http.StatusBadRequest},
		{"bad timeout", "?timeout=soon", string(cycle), http.StatusBadRequest},
		{"negative timeout", "?timeout=-5s", string(cycle), http.StatusBadRequest},
		{"bad shards", "?shards=many", string(cycle), http.StatusBadRequest},
		{"alg incompatible with graph", "?alg=regularodd", string(cycle), http.StatusBadRequest},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postRun(t, ts.Client(), ts.URL, tc.query, []byte(tc.body))
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d (body %s)", resp.StatusCode, tc.want, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Errorf("error body %q is not a JSON error", body)
			}
		})
	}

	t.Run("GET not allowed", func(t *testing.T) {
		resp, err := ts.Client().Get(ts.URL + "/v1/run")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("status = %d, want 405", resp.StatusCode)
		}
	})
}

func TestServerOversized(t *testing.T) {
	s := New(Config{
		MaxBodyBytes: 512,
		Limits:       graph.Limits{MaxNodes: 100, MaxPorts: 400},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	t.Run("body over the byte cap", func(t *testing.T) {
		big := strings.Repeat("# padding\n", 200)
		resp, _ := postRun(t, ts.Client(), ts.URL, "", []byte(big))
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("status = %d, want 413", resp.StatusCode)
		}
	})
	t.Run("graph over the node cap", func(t *testing.T) {
		resp, body := postRun(t, ts.Client(), ts.URL, "", []byte("nodes 101\n"))
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("status = %d, want 413 (body %s)", resp.StatusCode, body)
		}
	})
	t.Run("graph within caps is served", func(t *testing.T) {
		resp, body := postRun(t, ts.Client(), ts.URL, "", graphBytes(t, gen.Cycle(20)))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("status = %d (body %s)", resp.StatusCode, body)
		}
	})
}

// gateServer returns a server whose runs block until the returned gate
// is closed, plus a channel that receives one value per run started.
func gateServer(cfg Config) (*Server, chan struct{}, chan struct{}) {
	s := New(cfg)
	gate := make(chan struct{})
	started := make(chan struct{}, 64)
	s.runEngine = func(ctx context.Context, engine string, shards int, g *graph.Graph, a sim.Algorithm) (*sim.Result, sim.Timings, error) {
		started <- struct{}{}
		select {
		case <-gate:
			return defaultRunEngine(ctx, "sequential", 0, g, a)
		case <-ctx.Done():
			// Produce the exact error a real engine would.
			res, err := sim.RunSequential(g, a, sim.WithContext(ctx))
			return res, sim.Timings{}, err
		}
	}
	return s, gate, started
}

func TestServerSaturationReturns429(t *testing.T) {
	s, gate, started := gateServer(Config{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Three distinct graphs: identical bodies would coalesce onto one
	// flight instead of saturating the pool (see TestServerCoalescing).
	bodies := [][]byte{
		graphBytes(t, gen.Cycle(8)),
		graphBytes(t, gen.Cycle(10)),
		graphBytes(t, gen.Cycle(12)),
	}

	results := make(chan int, 2)
	// First request occupies the single worker...
	go func() {
		resp, _ := postRun(t, ts.Client(), ts.URL, "", bodies[0])
		results <- resp.StatusCode
	}()
	<-started
	// ...second request fills the queue...
	go func() {
		resp, _ := postRun(t, ts.Client(), ts.URL, "", bodies[1])
		results <- resp.StatusCode
	}()
	waitFor(t, func() bool { return len(s.queue) == 1 })

	// ...so the third is rejected immediately with 429.
	start := time.Now()
	resp, respBody := postRun(t, ts.Client(), ts.URL, "", bodies[2])
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, respBody)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("saturated request took %v; 429 must be immediate", d)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("admitted request %d finished with %d, want 200", i, code)
		}
	}
}

func TestServerTimeoutReturns504(t *testing.T) {
	t.Run("expired before the engine starts", func(t *testing.T) {
		s := New(Config{})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		resp, body := postRun(t, ts.Client(), ts.URL, "?timeout=1ns", graphBytes(t, gen.Cycle(12)))
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
		}
	})
	t.Run("expired mid-run", func(t *testing.T) {
		s, _, started := gateServer(Config{}) // gate never closes: the run hangs until its deadline
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		start := time.Now()
		resp, body := postRun(t, ts.Client(), ts.URL, "?timeout=50ms", graphBytes(t, gen.Cycle(12)))
		<-started
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Errorf("timed-out request took %v, deadline was 50ms", d)
		}
	})
	t.Run("expired while queued", func(t *testing.T) {
		s, gate, started := gateServer(Config{Workers: 1, QueueDepth: 4, CacheEntries: -1})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		body := graphBytes(t, gen.Cycle(8))
		done := make(chan int, 1)
		go func() {
			resp, _ := postRun(t, ts.Client(), ts.URL, "", body)
			done <- resp.StatusCode
		}()
		<-started
		// This request waits in the queue and its deadline passes there.
		resp, respBody := postRun(t, ts.Client(), ts.URL, "?timeout=30ms", body)
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, respBody)
		}
		close(gate)
		if code := <-done; code != http.StatusOK {
			t.Errorf("first request finished with %d", code)
		}
	})
}

func TestServerGracefulDrain(t *testing.T) {
	s, gate, started := gateServer(Config{Workers: 2, CacheEntries: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// healthz is green before the drain.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %v / %d", err, resp.StatusCode)
	}
	resp.Body.Close()

	inFlight := make(chan int, 1)
	go func() {
		resp, _ := postRun(t, ts.Client(), ts.URL, "", graphBytes(t, gen.Cycle(10)))
		inFlight <- resp.StatusCode
	}()
	<-started

	s.StartDraining()

	// New work is refused and health flips, telling balancers to leave.
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503", resp.StatusCode)
	}
	refused, _ := postRun(t, ts.Client(), ts.URL, "", graphBytes(t, gen.Cycle(10)))
	if refused.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new run during drain = %d, want 503", refused.StatusCode)
	}

	// The in-flight run is not abandoned: it completes with 200.
	close(gate)
	if code := <-inFlight; code != http.StatusOK {
		t.Errorf("in-flight run finished with %d during drain, want 200", code)
	}
}

func TestServerStatsz(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := graphBytes(t, gen.Torus(4, 4))
	postRun(t, ts.Client(), ts.URL, "", body) // miss
	postRun(t, ts.Client(), ts.URL, "", body) // hit
	postRun(t, ts.Client(), ts.URL, "", []byte("bogus\n"))

	resp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding statsz: %v", err)
	}
	if st.Requests.Total != 3 {
		t.Errorf("requests.total = %d, want 3", st.Requests.Total)
	}
	if st.Requests.ByStatus["200"] != 2 || st.Requests.ByStatus["400"] != 1 {
		t.Errorf("by_status = %v", st.Requests.ByStatus)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Cache.HitRate != 0.5 {
		t.Errorf("hit_rate = %v, want 0.5", st.Cache.HitRate)
	}
	// One served result occupies two entries: the raw-body key and the
	// canonical-structure key.
	if st.Cache.Size != 2 {
		t.Errorf("cache size = %d, want 2", st.Cache.Size)
	}
	// The torus is 4-regular → portone; its histogram must have the run.
	h, ok := st.LatencyMs["portone"]
	if !ok || h.Count != 1 {
		t.Errorf("latency histogram missing the portone run: %+v", st.LatencyMs)
	}
	if st.Draining {
		t.Error("draining reported before drain")
	}
	// The engine-time split covers exactly the executed (non-cached,
	// non-bogus) run. Sub-millisecond runs can legitimately report 0 ms,
	// so only the run count and non-negativity are pinned here.
	if st.EngineTime.Runs != 1 {
		t.Errorf("engine_time.runs = %d, want 1", st.EngineTime.Runs)
	}
	if st.EngineTime.SetupMs < 0 || st.EngineTime.RoundsMs < 0 || st.EngineTime.OutputsMs < 0 {
		t.Errorf("negative engine_time split: %+v", st.EngineTime)
	}
}

// TestServerPprofGating pins the profiling endpoints' default-off
// posture: /debug/pprof/ must 404 unless Config.EnablePprof (edsd's
// -pprof flag) opted in — the handlers expose heap contents and let any
// client start CPU profiles.
func TestServerPprofGating(t *testing.T) {
	t.Run("off by default", func(t *testing.T) {
		ts := httptest.NewServer(New(Config{}).Handler())
		defer ts.Close()
		for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
			resp, err := ts.Client().Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("GET %s = %d without EnablePprof, want 404", path, resp.StatusCode)
			}
		}
	})
	t.Run("mounted when enabled", func(t *testing.T) {
		ts := httptest.NewServer(New(Config{EnablePprof: true}).Handler())
		defer ts.Close()
		for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/goroutine"} {
			resp, err := ts.Client().Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("GET %s = %d with EnablePprof, want 200", path, resp.StatusCode)
			}
		}
		// The serving API is unaffected by the extra mounts.
		resp, body := postRun(t, ts.Client(), ts.URL, "", graphBytes(t, gen.Cycle(8)))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("POST /v1/run with pprof enabled = %d (body %s)", resp.StatusCode, body)
		}
	})
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.put("c", []byte("C")) // evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || string(v) != "A" {
		t.Error("a lost")
	}
	if v, ok := c.get("c"); !ok || string(v) != "C" {
		t.Error("c lost")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLoadSmoke is the acceptance load test: >= 64 concurrent requests
// against the daemon on a RandomRegular n=10k graph must complete with a
// bounded goroutine count, at least one cache hit, zero dropped
// responses, and every cancelled request back within its deadline. Run
// under -race in CI.
func TestLoadSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := gen.RandomRegular(rng, 10_000, 3)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	body := graphBytes(t, g)

	s := New(Config{QueueDepth: 128, MaxTimeout: 10 * time.Minute})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		clients  = 64 // concurrent clients, each issuing two requests
		canceled = 8  // of which this many use an immediate deadline
	)
	baseGoroutines := numGoroutinesStable()

	type outcome struct {
		status   int
		elapsed  time.Duration
		canceled bool
		dropped  bool
	}
	results := make(chan outcome, 2*clients)
	for i := 0; i < clients; i++ {
		wantCancel := i < canceled
		go func(wantCancel bool) {
			for wave := 0; wave < 2; wave++ {
				// The deadline clock starts before admission, and under
				// -race the whole first wave queues behind a handful of
				// workers, so successful requests need a deadline that
				// covers the queueing, not just their own run.
				query := "?timeout=5m"
				if wantCancel {
					// edges=1 gives these a cache key of their own; they
					// must never be answered from entries the successful
					// requests populated, or the 504 assertion is moot.
					query = "?timeout=1ns&edges=1"
				}
				start := time.Now()
				resp, err := ts.Client().Post(ts.URL+"/v1/run"+query, "text/plain", bytes.NewReader(body))
				if err != nil {
					results <- outcome{dropped: true}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				results <- outcome{status: resp.StatusCode, elapsed: time.Since(start), canceled: wantCancel}
			}
		}(wantCancel)
	}

	statusCount := map[int]int{}
	for i := 0; i < 2*clients; i++ {
		o := <-results
		if o.dropped {
			t.Fatal("a request was dropped without a response")
		}
		statusCount[o.status]++
		if o.canceled {
			if o.status != http.StatusGatewayTimeout {
				t.Errorf("canceled request got %d, want 504", o.status)
			}
			// The server answers an expired request without queueing it,
			// so its latency must stay far below the tens of seconds a
			// full queue drain takes. The bound is loose because on a
			// small -race box the client goroutine itself is starved by
			// the engine runs; TestServerTimeoutReturns504 asserts tight
			// promptness on an unloaded server.
			if o.elapsed > 30*time.Second {
				t.Errorf("canceled request took %v; it must not wait behind the queue", o.elapsed)
			}
		} else if o.status != http.StatusOK {
			t.Errorf("request got %d, want 200", o.status)
		}
	}
	wantOK := 2 * (clients - canceled)
	if statusCount[http.StatusOK] != wantOK || statusCount[http.StatusGatewayTimeout] != 2*canceled {
		t.Errorf("status counts = %v, want %d OK and %d 504", statusCount, wantOK, 2*canceled)
	}

	// The second wave of each client runs after its first completed, so
	// the cache must have served at least one hit.
	resp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Cache.Hits < 1 {
		t.Errorf("cache hits = %d, want >= 1", st.Cache.Hits)
	}
	if st.Queue.Depth != 0 || st.Queue.InFlight != 0 {
		t.Errorf("queue not drained: depth=%d in_flight=%d", st.Queue.Depth, st.Queue.InFlight)
	}

	// Goroutine count must return to (near) the pre-load baseline: no
	// engine worker, queue waiter, or handler may leak. Idle HTTP
	// keep-alive connections are the only tolerated slack.
	after := numGoroutinesStable()
	if after > baseGoroutines+2*clients {
		t.Errorf("goroutines grew from %d to %d; leak suspected", baseGoroutines, after)
	}
}

func numGoroutinesStable() int {
	// Let short-lived goroutines (closed connections, finished shards)
	// retire before counting.
	n := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(10 * time.Millisecond)
		m := runtime.NumGoroutine()
		if m >= n {
			return m
		}
		n = m
	}
	return n
}
