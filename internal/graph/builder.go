package graph

import (
	"errors"
	"fmt"
)

// Builder assembles a port-numbered graph incrementally. Two styles are
// supported and may be mixed:
//
//   - AddEdge(u, v): assign the next free port on each endpoint, in call
//     order. This matches the common construction "take an undirected graph
//     and equip it with an arbitrary port numbering compatible with E".
//   - Connect(u, i, v, j): wire explicit ports, as required by the paper's
//     lower-bound constructions where the port numbering is the adversary's
//     choice.
//
// The zero value is a builder for the empty graph; use NewBuilder or
// AddNodes to size it.
type Builder struct {
	conn [][]Port // conn[v][i-1]; zero Port{} means unassigned (Num==0)
}

// NewBuilder returns a builder for a graph with n isolated nodes.
func NewBuilder(n int) *Builder {
	return &Builder{conn: make([][]Port, n)}
}

// AddNodes appends k isolated nodes and returns the index of the first one.
func (b *Builder) AddNodes(k int) int {
	first := len(b.conn)
	b.conn = append(b.conn, make([][]Port, k)...)
	return first
}

// N returns the current number of nodes.
func (b *Builder) N() int { return len(b.conn) }

// ensurePort grows node v's port table to include port i and returns an
// error if the port is already wired.
func (b *Builder) ensurePort(v, i int) error {
	if v < 0 || v >= len(b.conn) {
		return fmt.Errorf("graph: node %d out of range [0,%d)", v, len(b.conn))
	}
	if i < 1 {
		return fmt.Errorf("graph: port number %d must be >= 1", i)
	}
	for len(b.conn[v]) < i {
		b.conn[v] = append(b.conn[v], Port{})
	}
	if b.conn[v][i-1].Num != 0 {
		return fmt.Errorf("graph: port (%d,%d) already connected to %v", v, i, b.conn[v][i-1])
	}
	return nil
}

// Connect wires port i of node u to port j of node v (and vice versa,
// keeping the involution property). Connecting a port to itself creates a
// directed loop; u == v with i != j creates an undirected loop.
func (b *Builder) Connect(u, i, v, j int) error {
	if err := b.ensurePort(u, i); err != nil {
		return err
	}
	if u == v && i == j {
		b.conn[u][i-1] = Port{Node: u, Num: i}
		return nil
	}
	if err := b.ensurePort(v, j); err != nil {
		return err
	}
	b.conn[u][i-1] = Port{Node: v, Num: j}
	b.conn[v][j-1] = Port{Node: u, Num: i}
	return nil
}

// MustConnect is Connect but panics on error; for use in generators whose
// inputs are correct by construction.
func (b *Builder) MustConnect(u, i, v, j int) {
	if err := b.Connect(u, i, v, j); err != nil {
		panic(err)
	}
}

// nextFree returns the lowest unassigned port number of node v.
func (b *Builder) nextFree(v int) int {
	for i, p := range b.conn[v] {
		if p.Num == 0 {
			return i + 1
		}
	}
	return len(b.conn[v]) + 1
}

// AddEdge connects u and v using the next free port on each side and
// returns the two assigned port numbers. For u == v it creates an
// undirected loop occupying two ports of u.
func (b *Builder) AddEdge(u, v int) (ui, vi int, err error) {
	if u < 0 || u >= len(b.conn) || v < 0 || v >= len(b.conn) {
		return 0, 0, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, len(b.conn))
	}
	ui = b.nextFree(u)
	if u == v {
		vi = ui + 1
	} else {
		vi = b.nextFree(v)
	}
	if err := b.Connect(u, ui, v, vi); err != nil {
		return 0, 0, err
	}
	return ui, vi, nil
}

// MustAddEdge is AddEdge but panics on error.
func (b *Builder) MustAddEdge(u, v int) (ui, vi int) {
	ui, vi, err := b.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return ui, vi
}

// AddDirectedLoop attaches a directed loop (involution fixed point) at the
// next free port of v and returns the port number.
func (b *Builder) AddDirectedLoop(v int) (int, error) {
	if v < 0 || v >= len(b.conn) {
		return 0, fmt.Errorf("graph: node %d out of range [0,%d)", v, len(b.conn))
	}
	i := b.nextFree(v)
	if err := b.Connect(v, i, v, i); err != nil {
		return 0, err
	}
	return i, nil
}

// Build validates that every port is wired and returns the immutable graph.
func (b *Builder) Build() (*Graph, error) {
	conn := make([][]Port, len(b.conn))
	for v := range b.conn {
		conn[v] = make([]Port, len(b.conn[v]))
		copy(conn[v], b.conn[v])
		for i, p := range conn[v] {
			if p.Num == 0 {
				return nil, fmt.Errorf("graph: port (%d,%d) left unconnected", v, i+1)
			}
		}
	}
	edges, edgeAt := buildEdges(conn)
	g := &Graph{conn: conn, edges: edges, edgeAt: edgeAt}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build but panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// ErrNotSimple is returned by FromUndirected when the edge list contains a
// loop or a duplicate edge.
var ErrNotSimple = errors.New("graph: edge list is not simple")

// FromUndirected builds a simple port-numbered graph on n nodes from an
// undirected edge list, assigning ports in edge-list order. It rejects
// loops and parallel edges.
func FromUndirected(n int, edges [][2]int) (*Graph, error) {
	b := NewBuilder(n)
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			return nil, fmt.Errorf("%w: loop {%d,%d}", ErrNotSimple, u, v)
		}
		key := [2]int{min(u, v), max(u, v)}
		if seen[key] {
			return nil, fmt.Errorf("%w: duplicate edge {%d,%d}", ErrNotSimple, u, v)
		}
		seen[key] = true
		if _, _, err := b.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// MustFromUndirected is FromUndirected but panics on error.
func MustFromUndirected(n int, edges [][2]int) *Graph {
	g, err := FromUndirected(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}
