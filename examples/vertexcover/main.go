// Vertexcover: the node-based covering problem the paper contrasts edge
// dominating sets with (Section 1.4), solved by the Polishchuk–Suomela
// local 3-approximation that Theorem 5's phase III is built from.
//
// The same anonymous network, two covering problems:
//
//   - vertex cover — choose nodes touching every edge (here: place a
//     guard on a subset of routers so every link has a guarded endpoint);
//   - edge dominating set — choose edges adjacent to every edge (place
//     monitors on links).
//
// Both are solved by the same 2-matching trick, and both run in O(Δ)
// resp. O(Δ²) rounds regardless of the network size.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"eds"
	"eds/internal/core"
	"eds/internal/sim"
	"eds/internal/verify"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(99))
	g := eds.RandomBoundedDegree(rng, 40, 3, 0.25)
	delta := g.MaxDegree()
	fmt.Printf("network: %d routers, %d links, max degree %d\n\n", g.N(), g.M(), delta)

	// Vertex cover via the local 3-approximation.
	vcAlg := core.VertexCover3{Delta: delta}
	res, err := sim.RunSequential(g, vcAlg)
	if err != nil {
		log.Fatal(err)
	}
	cover := make([]bool, g.N())
	size := 0
	for v, out := range res.Outputs {
		if len(out) > 0 {
			cover[v] = true
			size++
		}
	}
	if !verify.IsVertexCover(g, cover) {
		log.Fatal("not a vertex cover!")
	}
	optVC := verify.MinimumVertexCover(g)
	optSize := 0
	for _, in := range optVC {
		if in {
			optSize++
		}
	}
	fmt.Printf("vertex cover:        %2d guards in %d rounds (optimum %d, guarantee 3x)\n",
		size, res.Rounds, optSize)

	// Edge dominating set via A(Δ) on the same network.
	edsAlg := eds.General(delta)
	d, res2, err := eds.Run(g, edsAlg)
	if err != nil {
		log.Fatal(err)
	}
	opt := verify.MinimumMaximalMatching(g).Count()
	fmt.Printf("edge dominating set: %2d monitors in %d rounds (optimum %d, guarantee %s)\n",
		d.Count(), res2.Rounds, opt, eds.TightRatio(g))

	fmt.Println("\nboth algorithms are strictly local: round counts depend only on Δ,")
	fmt.Println("so the same code runs unchanged on a network of millions of routers.")
}
