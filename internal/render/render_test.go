package render

import (
	"strings"
	"testing"

	"eds/internal/gen"
	"eds/internal/graph"
)

func TestDOTBasics(t *testing.T) {
	g := gen.Path(3)
	s := graph.NewEdgeSetOf(g.M(), 0)
	out := DOT(g, Options{
		Title:      "test",
		NodeLabels: []string{"x", "y", "z"},
		Ports:      true,
		Overlays:   []Overlay{{Name: "picked", Set: s, Color: "red"}},
	})
	for _, want := range []string{
		"graph G {", `label="test"`, `label="x"`, "n0 -- n1", "n1 -- n2",
		`color="red"`, "taillabel=", "}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestDOTDirectedLoopDashed(t *testing.T) {
	b := graph.NewBuilder(1)
	b.MustConnect(0, 1, 0, 1)
	g := b.MustBuild()
	out := DOT(g, Options{})
	if !strings.Contains(out, "style=dashed") {
		t.Errorf("directed loop not dashed:\n%s", out)
	}
	if !strings.Contains(out, "n0 -- n0") {
		t.Errorf("loop edge missing:\n%s", out)
	}
}

func TestDOTClasses(t *testing.T) {
	g := gen.Path(2)
	out := DOT(g, Options{Classes: []int{0, 1}})
	if !strings.Contains(out, "style=filled") {
		t.Errorf("classes not filled:\n%s", out)
	}
}

func TestTextListsPortsAndOverlays(t *testing.T) {
	g := gen.Cycle(4)
	all := graph.NewEdgeSet(g.M())
	for i := 0; i < g.M(); i++ {
		all.Add(i)
	}
	out := Text(g, Options{Title: "C4", Overlays: []Overlay{{Name: "all", Set: all, Color: "red"}}})
	for _, want := range []string{"C4", "nodes: 4, edges: 4", "all (4 edges)", "{0,1}"} {
		if !strings.Contains(out, want) {
			t.Errorf("Text output missing %q:\n%s", want, out)
		}
	}
}
