package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"eds/internal/lint/analysis"
)

// OutboxAlias enforces the lifetime contract of the engines' flat
// message buffers. The sharded engine hands round hooks a zero-copy
// view of its outbox ([][]sim.Message backed by one flat array), every
// engine reuses the inbox slice it passes to Receive, and the
// BufferedNode fast path hands SendInto a window into the pooled flat
// outbox itself; all are overwritten at the next round barrier, and
// the pooled buffers outlive the run — a retained SendInto slice can
// alias a later, unrelated run's outbox. Any code that retains such a
// slice past the call observes torn, recycled data — and only on the
// engines that reuse buffers, which is exactly the class of divergence
// the equivalence suite can miss when the retained data is inspected
// after the run.
//
// Within any function or closure that receives a []sim.Message or
// [][]sim.Message parameter (hook callbacks, Receive implementations,
// SendInto implementations, trace sinks), the analyzer tracks the
// parameter and its local slice aliases and reports:
//
//   - stores of an aliased slice into a struct field, map/slice
//     element, package-level variable, or a variable captured from an
//     enclosing function;
//   - append of an aliased slice header (not its elements) onto
//     another slice;
//   - returning an aliased slice;
//   - sending an aliased slice on a channel or launching a goroutine
//     that captures one.
//
// Copying element values (messages themselves) is always fine; the
// analyzer only chases slice headers that point into the engine's
// buffers.
var OutboxAlias = &analysis.Analyzer{
	Name: "outboxalias",
	Doc:  "flag retention of engine-owned message buffers ([]sim.Message views) beyond the callback that received them",
	Run:  runOutboxAlias,
}

func runOutboxAlias(pass *analysis.Pass) (any, error) {
	sim := simPackage(pass.Pkg)
	if sim == nil {
		return nil, nil
	}
	msgType := simNamedType(sim, "Message")
	if msgType == nil {
		return nil, nil
	}
	bufType := func(t types.Type) bool {
		if t == nil {
			return false
		}
		if isSliceOf(t, msgType) {
			return true
		}
		s, ok := t.(*types.Slice)
		return ok && isSliceOf(s.Elem(), msgType)
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftype, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil || ftype.Params == nil {
				return true
			}
			rooted := map[types.Object]bool{}
			for _, field := range ftype.Params.List {
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj != nil && bufType(obj.Type()) {
						rooted[obj] = true
					}
				}
			}
			if len(rooted) > 0 {
				checkBufferRetention(pass, n, body, rooted)
			}
			return true
		})
	}
	return nil, nil
}

// checkBufferRetention analyzes one function whose rooted set seeds the
// buffer-derived slice aliases.
func checkBufferRetention(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt, rooted map[types.Object]bool) {
	info := pass.TypesInfo

	// isRootedSlice reports whether e is a slice expression backed by an
	// engine buffer: the parameter itself, an indexed row, a reslice, or
	// a local alias of one of those.
	var isRootedSlice func(e ast.Expr) bool
	isRootedSlice = func(e ast.Expr) bool {
		t := pass.TypeOf(e)
		if t == nil {
			return false
		}
		if _, ok := t.Underlying().(*types.Slice); !ok {
			return false
		}
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return rooted[info.Uses[e]]
		case *ast.IndexExpr:
			return isRootedSlice(e.X)
		case *ast.SliceExpr:
			return isRootedSlice(e.X)
		}
		return false
	}

	// Fixpoint: a local variable assigned from a rooted slice joins the
	// rooted set, so `row := sent[v]; s.f = row` is still caught.
	addAlias := func(id *ast.Ident) bool {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || rooted[obj] || !funcScopeContains(fn, obj) {
			return false
		}
		rooted[obj] = true
		return true
	}
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || !isRootedSlice(n.Rhs[i]) {
						continue
					}
					if addAlias(id) {
						grew = true
					}
				}
			case *ast.RangeStmt:
				// for _, row := range sent: row aliases a matrix row.
				id, ok := n.Value.(*ast.Ident)
				if !ok || !isRootedSlice(n.X) {
					return true
				}
				if t := pass.TypeOf(id); t != nil {
					if _, isSlice := t.Underlying().(*types.Slice); isSlice && addAlias(id) {
						grew = true
					}
				}
			}
			return true
		})
		if !grew {
			break
		}
	}

	report := func(pos interface{ Pos() token.Pos }, what string) {
		pass.Reportf(pos.Pos(), "%s: the slice is a view of an engine-owned buffer that is overwritten at the next round barrier; copy the data instead", what)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) || !isRootedSlice(n.Rhs[i]) {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					report(n, "outbox-backed slice stored in a field")
				case *ast.IndexExpr:
					if !isRootedSlice(l.X) {
						report(n, "outbox-backed slice stored in a container element")
					}
				case *ast.Ident:
					obj := info.Defs[l]
					if obj == nil {
						obj = info.Uses[l]
					}
					if obj != nil && !funcScopeContains(fn, obj) {
						report(n, "outbox-backed slice stored outside the callback")
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 1 {
				for _, arg := range n.Args[1:] {
					if !isRootedSlice(arg) {
						continue
					}
					if n.Ellipsis.IsValid() && arg == n.Args[len(n.Args)-1] {
						// append(dst, buf...) copies the elements; that
						// aliases engine memory only when the elements
						// are themselves slice headers (matrix rows).
						s, ok := pass.TypeOf(arg).Underlying().(*types.Slice)
						if !ok {
							continue
						}
						if _, elemIsSlice := s.Elem().Underlying().(*types.Slice); !elemIsSlice {
							continue
						}
					}
					report(n, "outbox-backed slice appended to another slice")
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isRootedSlice(res) {
					report(n, "outbox-backed slice returned from the callback")
				}
			}
		case *ast.SendStmt:
			if isRootedSlice(n.Value) {
				report(n, "outbox-backed slice sent on a channel")
			}
		case *ast.GoStmt:
			captured := false
			ast.Inspect(n.Call, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && rooted[info.Uses[id]] {
					captured = true
				}
				return !captured
			})
			if captured {
				report(n, "outbox-backed slice captured by a goroutine")
			}
		}
		return true
	})
}
