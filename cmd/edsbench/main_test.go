package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	cases := []struct {
		name string
		line string
		want Bench
		ok   bool
	}{
		{
			"full benchmem line with custom metrics",
			"BenchmarkSharded/Cycle/n=100k/sharded-8  \t5\t  42791983 ns/op\t21800513 B/op\t  800005 allocs/op\t100000 nodes\t1.000 rounds",
			Bench{Name: "BenchmarkSharded/Cycle/n=100k/sharded", NsPerOp: 42791983, BytesPerOp: 21800513, AllocsPerOp: 800005, Nodes: 100000, Rounds: 1},
			true,
		},
		{
			"gomaxprocs suffix stripped, no custom metrics",
			"BenchmarkEngines/Sequential-16 5 21156670 ns/op 5784390 B/op 139269 allocs/op",
			Bench{Name: "BenchmarkEngines/Sequential", NsPerOp: 21156670, BytesPerOp: 5784390, AllocsPerOp: 139269},
			true,
		},
		{
			"fractional ns/op",
			"BenchmarkTable1/d=4-8 1000000 1052.5 ns/op",
			Bench{Name: "BenchmarkTable1/d=4", NsPerOp: 1052.5},
			true,
		},
		{
			// A benchmark name containing a literal -N segment inside a
			// sub-benchmark path keeps everything but the final suffix.
			"only the trailing suffix is stripped",
			"BenchmarkX/d=-5-8 10 5 ns/op",
			Bench{Name: "BenchmarkX/d=-5", NsPerOp: 5},
			true,
		},
		{"header goos", "goos: linux", Bench{}, false},
		{"header cpu", "cpu: Intel(R) Xeon(R) Processor @ 2.10GHz", Bench{}, false},
		{"pass line", "PASS", Bench{}, false},
		{"ok line", "ok  \teds\t12.345s", Bench{}, false},
		{"skip line", "--- SKIP: BenchmarkSharded/Million/Cycle/n=1M/sharded", Bench{}, false},
	}
	for _, tc := range cases {
		got, ok := parseBench(tc.line)
		if ok != tc.ok {
			t.Errorf("%s: ok = %v, want %v", tc.name, ok, tc.ok)
			continue
		}
		if ok && got != tc.want {
			t.Errorf("%s:\n got %+v\nwant %+v", tc.name, got, tc.want)
		}
	}
}

func TestParseOutput(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: eds
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngines/Sequential-8 5 21156670 ns/op 5784390 B/op 139269 allocs/op
BenchmarkSharded/Cycle/n=100k/sharded-8 5 42791983 ns/op 21800513 B/op 800005 allocs/op 100000 nodes 1.000 rounds
PASS
ok	eds	1.234s
`
	got, cpu, err := parseOutput(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d results, want 2: %v", len(got), got)
	}
	if got["BenchmarkSharded/Cycle/n=100k/sharded"].Nodes != 100000 {
		t.Errorf("nodes not parsed: %+v", got["BenchmarkSharded/Cycle/n=100k/sharded"])
	}
}

func TestDiff(t *testing.T) {
	baseline := []Bench{
		{Name: "A", AllocsPerOp: 1000},
		{Name: "B", AllocsPerOp: 1_000_000},
	}
	mk := func(a, b int64) map[string]Bench {
		return map[string]Bench{"A": {Name: "A", AllocsPerOp: a}, "B": {Name: "B", AllocsPerOp: b}}
	}
	if p := diff(baseline, mk(1000, 1_000_000), 0.25, 10000); len(p) != 0 {
		t.Errorf("exact match should pass, got %v", p)
	}
	// Within tolerance+slack: 1000 → 11250 = 1000*1.25 + 10000 exactly.
	if p := diff(baseline, mk(11250, 1_000_000), 0.25, 10000); len(p) != 0 {
		t.Errorf("at the ceiling should pass, got %v", p)
	}
	if p := diff(baseline, mk(11251, 1_000_000), 0.25, 10000); len(p) != 1 {
		t.Errorf("one over the ceiling should fail once, got %v", p)
	}
	// O(n) regression on the big benchmark is far past 25%+10000.
	if p := diff(baseline, mk(1000, 2_000_000), 0.25, 10000); len(p) != 1 {
		t.Errorf("2x allocation growth should fail, got %v", p)
	}
	// Improvements never fail.
	if p := diff(baseline, mk(10, 36), 0.25, 10000); len(p) != 0 {
		t.Errorf("improvement should pass, got %v", p)
	}
	// A baseline entry missing from the run fails the gate.
	if p := diff(baseline, map[string]Bench{"A": {Name: "A", AllocsPerOp: 1000}}, 0.25, 10000); len(p) != 1 {
		t.Errorf("missing benchmark should fail once, got %v", p)
	}
	// Extra benchmarks in the run are not gated.
	got := mk(1000, 1_000_000)
	got["C"] = Bench{Name: "C", AllocsPerOp: 999_999_999}
	if p := diff(baseline, got, 0.25, 10000); len(p) != 0 {
		t.Errorf("ungated extra benchmark should pass, got %v", p)
	}
}

const sampleOutput = `cpu: Test CPU
BenchmarkEngines/Sequential-8 5 100 ns/op 50 B/op 40 allocs/op
BenchmarkNew/NotGated-8 5 100 ns/op 50 B/op 77 allocs/op
PASS
`

func writeBaseline(t *testing.T, dir string, b Baseline) string {
	t.Helper()
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunGateAndUpdate(t *testing.T) {
	dir := t.TempDir()
	path := writeBaseline(t, dir, Baseline{
		CPU:        "Old CPU",
		Benchmarks: []Bench{{Name: "BenchmarkEngines/Sequential", AllocsPerOp: 500_000}},
	})

	// Gate passes: 40 allocs against a 500k baseline is an improvement.
	var out, errOut strings.Builder
	code := run([]string{"-baseline", path}, strings.NewReader(sampleOutput), &out, &errOut)
	if code != 0 {
		t.Fatalf("gate should pass, exit %d: %s", code, errOut.String())
	}

	// -update banks the improvement and keeps the gated set stable.
	out.Reset()
	errOut.Reset()
	code = run([]string{"-baseline", path, "-update"}, strings.NewReader(sampleOutput), &out, &errOut)
	if code != 0 {
		t.Fatalf("update failed, exit %d: %s", code, errOut.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var fresh Baseline
	if err := json.Unmarshal(raw, &fresh); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Benchmarks) != 1 || fresh.Benchmarks[0].AllocsPerOp != 40 {
		t.Fatalf("baseline not refreshed: %+v", fresh.Benchmarks)
	}
	if fresh.CPU != "Test CPU" {
		t.Errorf("cpu not taken from the run header: %q", fresh.CPU)
	}
	if fresh.Comment == "" || fresh.Generated == "" || fresh.Go == "" {
		t.Errorf("metadata missing from regenerated baseline: %+v", fresh)
	}

	// After the update, a rerun of the same output still passes…
	code = run([]string{"-baseline", path}, strings.NewReader(sampleOutput), &out, &errOut)
	if code != 0 {
		t.Fatalf("gate after update should pass, exit %d: %s", code, errOut.String())
	}
	// …and a genuine regression against the tight new baseline fails.
	regressed := strings.Replace(sampleOutput, "40 allocs/op", "90000 allocs/op", 1)
	errOut.Reset()
	code = run([]string{"-baseline", path}, strings.NewReader(regressed), &out, &errOut)
	if code != 1 {
		t.Fatalf("regression should exit 1, got %d: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "allocs/op grew") {
		t.Errorf("missing diagnostic: %s", errOut.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	dir := t.TempDir()
	path := writeBaseline(t, dir, Baseline{Benchmarks: []Bench{{Name: "X", AllocsPerOp: 1}}})
	var out, errOut strings.Builder
	if code := run([]string{"-baseline", path}, strings.NewReader("PASS\n"), &out, &errOut); code != 2 {
		t.Fatalf("empty input should exit 2, got %d", code)
	}
}
