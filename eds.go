// Package eds is a Go implementation of Jukka Suomela's "Distributed
// Algorithms for Edge Dominating Sets" (PODC 2010): deterministic
// distributed approximation of minimum edge dominating sets in anonymous
// port-numbered networks, with the paper's tight upper bounds implemented
// as runnable message-passing algorithms and its matching lower-bound
// constructions implemented as adversarial inputs.
//
// The package is a facade over the implementation packages:
//
//   - build port-numbered graphs with NewBuilder / FromUndirected, or
//     generate classic and random families via the helpers below;
//   - pick an algorithm with PortOne, RegularOdd, General, or let
//     ForGraph choose the one with the optimal guarantee for your graph;
//   - execute with Run (deterministic sequential reference engine),
//     RunConcurrent (goroutine-per-node, channel message passing — the
//     literal embedding of the model), RunSharded (flat-buffer engine
//     sharded across the CPUs — the fast path for large graphs), or
//     RunAuto (picks an engine by graph size). All engines return
//     identical results on every input; internal/sim's cross-engine
//     equivalence suite enforces it;
//   - check feasibility and quality with IsEdgeDominatingSet,
//     MinimumEdgeDominatingSet, and TightRatio.
//
// A minimal session:
//
//	g := eds.Cycle(12)                     // 2-regular, anonymous
//	alg, _ := eds.ForGraph(g)              // PortOne: tight 4-2/d = 3
//	d, res, _ := eds.Run(g, alg)
//	fmt.Println(d.Count(), "edges in", res.Rounds, "round(s)")
package eds

import (
	"context"
	"fmt"
	"math/rand"

	"eds/internal/core"
	"eds/internal/gen"
	"eds/internal/graph"
	"eds/internal/ratio"
	"eds/internal/sim"
	"eds/internal/verify"
)

// Core types, re-exported from the implementation packages.
type (
	// Graph is an immutable port-numbered graph (Section 2.1 of the
	// paper); it may be a multigraph.
	Graph = graph.Graph
	// Builder assembles a port-numbered graph, either edge by edge or
	// port by port.
	Builder = graph.Builder
	// Port identifies port Num (1-based) of node Node.
	Port = graph.Port
	// Edge is one edge, identified by the two ports it connects.
	Edge = graph.Edge
	// EdgeSet is a set of edges of one particular graph.
	EdgeSet = graph.EdgeSet
	// Algorithm is a distributed algorithm in the port-numbering model.
	Algorithm = sim.Algorithm
	// Node is one node's state machine: Send produces the round's
	// outgoing messages, Receive consumes the incoming ones.
	Node = sim.Node
	// Message is one message on one port; nil means "no message".
	Message = sim.Message
	// BufferedNode is the optional zero-allocation extension of Node:
	// SendInto writes the round's messages directly into an
	// engine-owned buffer instead of returning a fresh slice. Engines
	// detect it once per run; the buffer must not be retained past the
	// call (see CONTRIBUTING.md and the outboxalias analyzer).
	BufferedNode = sim.BufferedNode
	// BulkAlgorithm is the optional bulk-construction extension of
	// Algorithm: BuildNodes constructs whole node ranges at once, with
	// per-node state carved from an engine-owned StateArena in O(1)
	// slabs, and the sharded engine builds all shards in parallel.
	// Arena-carved state must not be retained past the run (see
	// CONTRIBUTING.md and the arenaalias analyzer).
	BulkAlgorithm = sim.BulkAlgorithm
	// StateArena is the engines' bump allocator for per-node algorithm
	// state, recycled with the pooled run state.
	StateArena = sim.StateArena
	// OutputAppender is the optional zero-allocation extension of
	// Output: AppendOutput writes the node's chosen ports onto the
	// engines' flat output buffer.
	OutputAppender = sim.OutputAppender
	// Timings is the per-run wall-clock split (setup, rounds, outputs)
	// recorded by WithTimings.
	Timings = sim.Timings
	// Result carries the statistics of one execution.
	Result = sim.Result
	// Option customises an execution (context, round budget, shards).
	Option = sim.Option
	// Ratio is an exact rational approximation ratio.
	Ratio = ratio.R
)

// Execution errors, re-exported from the engine package.
var (
	// ErrRoundLimit is returned when a run exceeds its round budget.
	ErrRoundLimit = sim.ErrRoundLimit
	// ErrCanceled is returned when a run attached to a context is
	// canceled or times out; the error also wraps context.Canceled or
	// context.DeadlineExceeded accordingly.
	ErrCanceled = sim.ErrCanceled
	// ErrHookUnsupported is returned by RunConcurrent when a round hook
	// (e.g. a trace) is attached: the concurrent engine has no barrier
	// window in which a consistent outbox exists. Hooked runs belong on
	// Run, RunSharded, or RunAuto.
	ErrHookUnsupported = sim.ErrHookUnsupported
)

// WithContext makes a run cancellable: every engine polls the context at
// its round barriers and returns an error wrapping ErrCanceled when it
// is canceled or its deadline passes.
func WithContext(ctx context.Context) Option { return sim.WithContext(ctx) }

// WithMaxRounds overrides the default round budget.
func WithMaxRounds(n int) Option { return sim.WithMaxRounds(n) }

// WithShards sets the worker count of the sharded engine (<= 0 selects
// one shard per CPU). Other engines ignore it.
func WithShards(p int) Option { return sim.WithShards(p) }

// WithTimings makes the engine record its setup/rounds/outputs
// wall-clock split into *t. Diagnostic only: Results stay identical.
func WithTimings(t *Timings) Option { return sim.WithTimings(t) }

// NewBuilder returns a builder for a graph with n isolated nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromUndirected builds a simple port-numbered graph from an undirected
// edge list, assigning ports in edge order.
func FromUndirected(n int, edges [][2]int) (*Graph, error) {
	return graph.FromUndirected(n, edges)
}

// Graph generators.

// Cycle returns the n-cycle (n >= 3).
func Cycle(n int) *Graph { return gen.Cycle(n) }

// Path returns the path on n nodes.
func Path(n int) *Graph { return gen.Path(n) }

// Complete returns the complete graph K_n.
func Complete(n int) *Graph { return gen.Complete(n) }

// CompleteBipartite returns K_{a,b}.
func CompleteBipartite(a, b int) *Graph { return gen.CompleteBipartite(a, b) }

// Hypercube returns the dim-dimensional hypercube.
func Hypercube(dim int) *Graph { return gen.Hypercube(dim) }

// Torus returns the rows x cols toroidal grid (4-regular).
func Torus(rows, cols int) *Graph { return gen.Torus(rows, cols) }

// RandomRegular returns a random simple d-regular graph on n nodes.
func RandomRegular(rng *rand.Rand, n, d int) (*Graph, error) {
	return gen.RandomRegular(rng, n, d)
}

// RandomBoundedDegree returns a random simple graph with maximum degree
// at most maxDeg; each candidate edge is kept with probability p.
func RandomBoundedDegree(rng *rand.Rand, n, maxDeg int, p float64) *Graph {
	return gen.RandomBoundedDegree(rng, n, maxDeg, p)
}

// Algorithms.

// PortOne returns the Theorem 3 algorithm: one round, factor 4 - 2/d on
// d-regular graphs (optimal for even d).
func PortOne() Algorithm { return core.PortOne{} }

// RegularOdd returns the Theorem 4 algorithm: O(d²) rounds, factor
// 4 - 6/(d+1) on d-regular graphs with odd d (optimal).
func RegularOdd() Algorithm { return core.RegularOdd{} }

// General returns the Theorem 5 family A(Δ) for graphs of maximum degree
// Δ >= 2: O(Δ²) rounds, factor 4 - 1/k for Δ in {2k, 2k+1} (optimal).
func General(delta int) Algorithm { return core.NewGeneral(delta) }

// AllEdges returns the trivial algorithm selecting every edge — optimal
// for maximum degree 1.
func AllEdges() Algorithm { return core.AllEdges{} }

// ForGraph picks the algorithm with the best worst-case guarantee for g:
// AllEdges for max degree <= 1, PortOne for even-regular, RegularOdd for
// odd-regular, and General(Δ) otherwise. The returned ratio is the tight
// worst-case guarantee.
func ForGraph(g *Graph) (Algorithm, Ratio, error) {
	if g.MaxDegree() <= 1 {
		return core.AllEdges{}, ratio.FromInt(1), nil
	}
	if d, ok := g.Regular(); ok {
		if d%2 == 0 {
			return core.PortOne{}, ratio.EvenRegularBound(d), nil
		}
		return core.RegularOdd{}, ratio.OddRegularBound(d), nil
	}
	return core.NewGeneral(g.MaxDegree()), ratio.BoundedDegreeBound(g.MaxDegree()), nil
}

// Run executes the algorithm on the deterministic sequential engine and
// returns the selected edge set. Options (WithContext, WithMaxRounds)
// customise the execution.
func Run(g *Graph, a Algorithm, opts ...Option) (*EdgeSet, *Result, error) {
	return runWith(sim.RunSequential, g, a, opts...)
}

// RunConcurrent executes the algorithm with one goroutine per node and
// capacity-1 channels carrying the messages, then returns the selected
// edge set. The result is always identical to Run's. Runs with a round
// hook attached fail with ErrHookUnsupported.
func RunConcurrent(g *Graph, a Algorithm, opts ...Option) (*EdgeSet, *Result, error) {
	return runWith(sim.RunConcurrent, g, a, opts...)
}

// RunSharded executes the algorithm on the sharded flat-buffer engine:
// nodes are partitioned across the CPUs and messages travel through a
// precomputed flat routing table with no channels and no per-round
// allocation. The result is always identical to Run's; on large graphs
// this is by far the fastest engine.
func RunSharded(g *Graph, a Algorithm, opts ...Option) (*EdgeSet, *Result, error) {
	return runWith(sim.RunSharded, g, a, opts...)
}

// RunAuto picks an engine by setup volume (sim.EngineChoice: the
// sequential reference for small graphs or single-CPU processes, the
// sharded engine once the port count crosses sim.AutoShardedPorts on
// multi-core) and returns the selected edge set. Every engine returns
// identical results, so the choice affects only the wall-clock time.
func RunAuto(g *Graph, a Algorithm, opts ...Option) (*EdgeSet, *Result, error) {
	return runWith(sim.RunAuto, g, a, opts...)
}

func runWith(run func(*graph.Graph, sim.Algorithm, ...sim.Option) (*sim.Result, error), g *Graph, a Algorithm, opts ...Option) (*EdgeSet, *Result, error) {
	res, err := run(g, a, opts...)
	if err != nil {
		return nil, nil, err
	}
	d, err := sim.EdgeSet(g, res.Outputs)
	if err != nil {
		return nil, nil, err
	}
	return d, res, nil
}

// Verification and baselines.

// IsEdgeDominatingSet reports whether s dominates every edge of g.
func IsEdgeDominatingSet(g *Graph, s *EdgeSet) bool {
	return verify.IsEdgeDominatingSet(g, s)
}

// IsMaximalMatching reports whether s is a maximal matching of g.
func IsMaximalMatching(g *Graph, s *EdgeSet) bool {
	return verify.IsMaximalMatching(g, s)
}

// MinimumEdgeDominatingSet computes an exact minimum edge dominating set.
// It is exponential; intended for small instances (tens of edges).
func MinimumEdgeDominatingSet(g *Graph) *EdgeSet {
	return verify.MinimumEdgeDominatingSet(g)
}

// GreedyMaximalMatching returns the deterministic greedy maximal
// matching, a centralized 2-approximation baseline.
func GreedyMaximalMatching(g *Graph) *EdgeSet {
	return verify.GreedyMaximalMatching(g)
}

// TightRatio returns the paper's tight approximation ratio for the graph
// family g belongs to (Table 1).
func TightRatio(g *Graph) Ratio {
	if g.MaxDegree() <= 1 {
		return ratio.FromInt(1)
	}
	if d, ok := g.Regular(); ok {
		if d%2 == 0 {
			return ratio.EvenRegularBound(d)
		}
		return ratio.OddRegularBound(d)
	}
	return ratio.BoundedDegreeBound(g.MaxDegree())
}

// MeasuredRatio returns |d| / |opt| as an exact rational, where opt is
// computed exactly (exponential; small instances only).
func MeasuredRatio(g *Graph, d *EdgeSet) (Ratio, error) {
	opt := verify.MinimumEdgeDominatingSet(g)
	if opt.Count() == 0 {
		if d.Count() == 0 {
			return ratio.FromInt(1), nil
		}
		return Ratio{}, fmt.Errorf("eds: graph has no edges but %d were selected", d.Count())
	}
	return ratio.New(int64(d.Count()), int64(opt.Count())), nil
}
