package sim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"eds/internal/gen"
)

func TestTraceRecordsProfile(t *testing.T) {
	g := gen.Cycle(5)
	tr, opt := NewTrace()
	res, err := RunSequential(g, sumAlg{rounds: 3}, opt)
	if err != nil {
		t.Fatalf("RunSequential: %v", err)
	}
	if len(tr.Rounds) != res.Rounds {
		t.Errorf("trace has %d rounds, result says %d", len(tr.Rounds), res.Rounds)
	}
	if tr.TotalMessages() != res.Messages {
		t.Errorf("trace counted %d messages, result says %d", tr.TotalMessages(), res.Messages)
	}
	totals := tr.TypeTotals()
	if totals["int"] != res.Messages {
		t.Errorf("TypeTotals = %v, want all %d messages of type int", totals, res.Messages)
	}
	out := tr.String()
	for _, want := range []string{"rounds: 3", "int", "busiest round"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentHookUnsupported pins the ROADMAP fix: a hooked run on
// the concurrent engine must fail eagerly with the documented sentinel
// instead of silently dropping the hook, while the hook-capable engines
// accept the identical options. The error must carry the algorithm name
// (the engines' shared error shape) and must not be confused with
// cancellation.
func TestConcurrentHookUnsupported(t *testing.T) {
	g := gen.Cycle(5)
	tr, opt := NewTrace()
	res, err := RunConcurrent(g, sumAlg{rounds: 3}, opt)
	if !errors.Is(err, ErrHookUnsupported) {
		t.Fatalf("RunConcurrent with hook: err = %v, want ErrHookUnsupported", err)
	}
	if res != nil {
		t.Errorf("RunConcurrent with hook returned a result alongside the error")
	}
	if errors.Is(err, ErrCanceled) {
		t.Errorf("hook-unsupported error must not wrap ErrCanceled: %v", err)
	}
	if !strings.Contains(err.Error(), `"degree-sum"`) {
		t.Errorf("error %q does not name the algorithm", err)
	}
	if len(tr.Rounds) != 0 {
		t.Errorf("trace recorded %d rounds from a rejected run", len(tr.Rounds))
	}
	// The rejection is checked before the context, so it wins even over
	// an already-canceled run: hook misuse is a programming error, not a
	// runtime condition.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunConcurrent(g, sumAlg{rounds: 3}, opt, WithContext(ctx)); !errors.Is(err, ErrHookUnsupported) {
		t.Errorf("canceled hooked run: err = %v, want ErrHookUnsupported", err)
	}
	// The hook-capable engines accept the same option set.
	for _, tc := range []struct {
		name string
		run  func() (*Result, error)
	}{
		{"sequential", func() (*Result, error) { _, o := NewTrace(); return RunSequential(g, sumAlg{rounds: 3}, o) }},
		{"sharded", func() (*Result, error) { _, o := NewTrace(); return RunSharded(g, sumAlg{rounds: 3}, o) }},
		{"auto", func() (*Result, error) { _, o := NewTrace(); return RunAuto(g, sumAlg{rounds: 3}, o) }},
	} {
		if _, err := tc.run(); err != nil {
			t.Errorf("%s engine rejected a hooked run: %v", tc.name, err)
		}
	}
}

func TestTraceEmptyRun(t *testing.T) {
	g := gen.PerfectMatching(2)
	tr, opt := NewTrace()
	// markAlg stops after one round.
	if _, err := RunSequential(g, markAlg{}, opt); err != nil {
		t.Fatalf("RunSequential: %v", err)
	}
	if len(tr.Rounds) != 1 {
		t.Errorf("rounds = %d, want 1", len(tr.Rounds))
	}
}
