package gen

import (
	"fmt"
	"math/rand"

	"eds/internal/graph"
)

// RandomRegular returns a random simple d-regular graph on n nodes using
// greedy stub pairing with restarts: half-edges are matched in random
// order, skipping partners that would create a loop or a parallel edge; a
// dead end restarts the attempt. n*d must be even and d < n.
func RandomRegular(rng *rand.Rand, n, d int) (*graph.Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("gen: d-regular needs 0 <= d < n, got d=%d n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: n*d must be even, got n=%d d=%d", n, d)
	}
	if d == 0 {
		return graph.MustFromUndirected(n, nil), nil
	}
	const maxAttempts = 5000
	for attempt := 0; attempt < maxAttempts; attempt++ {
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		edges := make([][2]int, 0, n*d/2)
		seen := make(map[[2]int]bool, n*d/2)
		ok := true
		for len(stubs) > 0 && ok {
			u := stubs[len(stubs)-1]
			stubs = stubs[:len(stubs)-1]
			ok = false
			for j := len(stubs) - 1; j >= 0; j-- {
				v := stubs[j]
				if v == u {
					continue
				}
				key := [2]int{min(u, v), max(u, v)}
				if seen[key] {
					continue
				}
				seen[key] = true
				edges = append(edges, [2]int{u, v})
				stubs[j] = stubs[len(stubs)-1]
				stubs = stubs[:len(stubs)-1]
				ok = true
				break
			}
		}
		if ok {
			return graph.MustFromUndirected(n, edges), nil
		}
	}
	return nil, fmt.Errorf("gen: could not sample a simple %d-regular graph on %d nodes", d, n)
}

// MustRandomRegular is RandomRegular but panics on error.
func MustRandomRegular(rng *rand.Rand, n, d int) *graph.Graph {
	g, err := RandomRegular(rng, n, d)
	if err != nil {
		panic(err)
	}
	return g
}

// RandomBoundedDegree returns a random simple graph on n nodes with maximum
// degree at most maxDeg: candidate pairs are visited in random order and an
// edge is kept with probability p while both endpoints have spare degree.
func RandomBoundedDegree(rng *rand.Rand, n, maxDeg int, p float64) *graph.Graph {
	type pair struct{ u, v int }
	pairs := make([]pair, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, pair{u, v})
		}
	}
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	deg := make([]int, n)
	var edges [][2]int
	for _, pr := range pairs {
		if deg[pr.u] >= maxDeg || deg[pr.v] >= maxDeg {
			continue
		}
		if rng.Float64() < p {
			deg[pr.u]++
			deg[pr.v]++
			edges = append(edges, [2]int{pr.u, pr.v})
		}
	}
	return graph.MustFromUndirected(n, edges)
}

// RandomTree returns a uniformly random labelled tree on n nodes via a
// random Prüfer sequence. Trees exercise the bounded-degree algorithm on
// highly irregular degree distributions.
func RandomTree(rng *rand.Rand, n int) *graph.Graph {
	if n <= 0 {
		panic(fmt.Sprintf("gen: tree needs n >= 1, got %d", n))
	}
	if n == 1 {
		return graph.MustFromUndirected(1, nil)
	}
	if n == 2 {
		return graph.MustFromUndirected(2, [][2]int{{0, 1}})
	}
	prufer := make([]int, n-2)
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for i := range prufer {
		prufer[i] = rng.Intn(n)
		deg[prufer[i]]++
	}
	edges := make([][2]int, 0, n-1)
	// Standard linear-time Prüfer decoding with a scan pointer: leaf is
	// the smallest currently unused degree-1 node.
	ptr := 0
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range prufer {
		edges = append(edges, [2]int{leaf, v})
		deg[v]--
		if deg[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	// The last edge joins the remaining leaf to node n-1.
	edges = append(edges, [2]int{leaf, n - 1})
	return graph.MustFromUndirected(n, edges)
}

// RelabelPorts returns a copy of g in which every node's port numbers have
// been permuted uniformly at random. Distributed algorithms in the
// port-numbering model must produce feasible output for every numbering;
// tests use this to search for numbering-dependent bugs.
func RelabelPorts(rng *rand.Rand, g *graph.Graph) *graph.Graph {
	n := g.N()
	perm := make([][]int, n) // perm[v][i-1] = new port number of old port i
	for v := 0; v < n; v++ {
		d := g.Deg(v)
		p := rng.Perm(d)
		perm[v] = make([]int, d)
		for old, newIdx := range p {
			perm[v][old] = newIdx + 1
		}
	}
	b := graph.NewBuilder(n)
	done := make(map[[2]graph.Port]bool, g.M())
	for v := 0; v < n; v++ {
		for i := 1; i <= g.Deg(v); i++ {
			q := g.P(v, i)
			self := graph.Port{Node: v, Num: i}
			key := [2]graph.Port{self, q}
			if q.Less(self) {
				key = [2]graph.Port{q, self}
			}
			if done[key] {
				continue
			}
			done[key] = true
			b.MustConnect(v, perm[v][i-1], q.Node, perm[q.Node][q.Num-1])
		}
	}
	return b.MustBuild()
}
