package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"eds/internal/core"
	"eds/internal/gen"
	"eds/internal/sim"
)

// ScalingRow is one data point of the Ext-C study: round counts as a
// function of n and d, demonstrating that the algorithms are strictly
// local (rounds depend on d only, never on n).
type ScalingRow struct {
	Algorithm string
	D, N      int
	Rounds    int
	Scheduled int
	Messages  int
}

// RoundScaling runs the appropriate regular-graph algorithm on random
// d-regular graphs of increasing size and records the observed rounds.
func RoundScaling(seed int64, d int, sizes []int) ([]ScalingRow, error) {
	rng := rand.New(rand.NewSource(seed))
	var alg sim.Algorithm
	var scheduled int
	if d%2 == 0 {
		a := core.PortOne{}
		alg, scheduled = a, a.Rounds(d)
	} else {
		a := core.RegularOdd{}
		alg, scheduled = a, a.Rounds(d)
	}
	rows := make([]ScalingRow, 0, len(sizes))
	for _, n := range sizes {
		if n*d%2 != 0 {
			n++
		}
		g, err := gen.RandomRegular(rng, n, d)
		if err != nil {
			return nil, err
		}
		res, err := sim.RunSequential(g, alg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalingRow{
			Algorithm: alg.Name(),
			D:         d,
			N:         n,
			Rounds:    res.Rounds,
			Scheduled: scheduled,
			Messages:  res.Messages,
		})
	}
	return rows, nil
}

// FormatScaling renders scaling rows as an aligned table.
func FormatScaling(rows []ScalingRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %4s %7s %8s %10s %10s\n", "algorithm", "d", "n", "rounds", "scheduled", "messages")
	sb.WriteString(strings.Repeat("-", 68) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %4d %7d %8d %10d %10d\n", r.Algorithm, r.D, r.N, r.Rounds, r.Scheduled, r.Messages)
	}
	return sb.String()
}
