// Singleflight suite: identical in-flight /v1/run requests must share
// one engine run (and its worker slot), deterministic failures must be
// shared with followers, and a leader whose outcome was private to its
// own budget (cancellation, deadline) must not poison the followers —
// they retry and take the lead themselves.
//
// Lives in package server for the same reason as server_test.go: the
// tests reach the runEngine seam and the stats internals.
package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"eds/internal/gen"
	"eds/internal/graph"
	"eds/internal/sim"
)

// waitForMisses blocks until n requests have passed the cache probe
// (each records exactly one miss before joining the flight group).
func waitForMisses(t *testing.T, s *Server, n int64) {
	t.Helper()
	waitFor(t, func() bool { return s.st.snapshot().misses >= n })
}

func TestServerCoalescing(t *testing.T) {
	s, gate, started := gateServer(Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := graphBytes(t, gen.Cycle(16))

	const followers = 3
	type outcome struct {
		code  int
		cache string
	}
	results := make(chan outcome, 1+followers)
	post := func() {
		resp, _ := postRun(t, ts.Client(), ts.URL, "", body)
		results <- outcome{resp.StatusCode, resp.Header.Get("X-Cache")}
	}

	go post()
	<-started // the leader's engine run is in flight
	for i := 0; i < followers; i++ {
		go post()
	}
	// Every duplicate has passed its cache probe; give them a moment to
	// park on the flight before releasing the leader.
	waitForMisses(t, s, 1+followers)
	time.Sleep(50 * time.Millisecond)
	close(gate)

	var misses, coalesced int
	for i := 0; i < 1+followers; i++ {
		o := <-results
		if o.code != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200", i, o.code)
		}
		switch o.cache {
		case "miss":
			misses++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("request %d: X-Cache = %q", i, o.cache)
		}
	}
	if misses != 1 || coalesced != followers {
		t.Errorf("got %d misses and %d coalesced, want 1 and %d", misses, coalesced, followers)
	}
	if extra := len(started); extra != 0 {
		t.Errorf("%d extra engine runs started; duplicates must share the leader's run", extra)
	}
	coalescedStat := s.st.snapshot().coalesced
	if coalescedStat != int64(followers) {
		t.Errorf("statsz coalesced = %d, want %d", coalescedStat, followers)
	}
}

func TestServerCoalescingSharesDeterministicError(t *testing.T) {
	s := New(Config{Workers: 4, CacheEntries: -1})
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	s.runEngine = func(ctx context.Context, engine string, shards int, g *graph.Graph, a sim.Algorithm) (*sim.Result, sim.Timings, error) {
		started <- struct{}{}
		<-gate
		return nil, sim.Timings{}, errors.New("deterministic failure for this graph")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := graphBytes(t, gen.Cycle(16))

	type outcome struct {
		code int
		body string
	}
	results := make(chan outcome, 2)
	post := func() {
		resp, b := postRun(t, ts.Client(), ts.URL, "", body)
		results <- outcome{resp.StatusCode, string(b)}
	}
	go post()
	<-started
	go post()
	waitForMisses(t, s, 2)
	time.Sleep(50 * time.Millisecond)
	close(gate)

	first, second := <-results, <-results
	for i, o := range []outcome{first, second} {
		if o.code != http.StatusInternalServerError {
			t.Errorf("request %d: status %d, want 500", i, o.code)
		}
	}
	if first.body != second.body {
		t.Errorf("leader and follower error bodies differ:\n%s\n%s", first.body, second.body)
	}
	if extra := len(started); extra != 0 {
		t.Errorf("%d extra engine runs started for a shared deterministic failure", extra)
	}
}

func TestServerFollowerRetriesAfterLeaderTimeout(t *testing.T) {
	s, gate, started := gateServer(Config{Workers: 4, CacheEntries: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := graphBytes(t, gen.Cycle(16))

	var wg sync.WaitGroup
	wg.Add(2)
	var leaderCode, followerCode int
	var followerCache string
	// The leader's budget is far shorter than the follower's: its 504 is
	// private and must not be served to the follower.
	go func() {
		defer wg.Done()
		resp, _ := postRun(t, ts.Client(), ts.URL, "?timeout=100ms", body)
		leaderCode = resp.StatusCode
	}()
	<-started
	go func() {
		defer wg.Done()
		resp, _ := postRun(t, ts.Client(), ts.URL, "?timeout=30s", body)
		followerCode = resp.StatusCode
		followerCache = resp.Header.Get("X-Cache")
	}()
	// The follower retries after the leader's deadline and becomes the
	// new leader: a second engine run starts.
	<-started
	close(gate)
	wg.Wait()

	if leaderCode != http.StatusGatewayTimeout {
		t.Errorf("leader status = %d, want 504", leaderCode)
	}
	if followerCode != http.StatusOK {
		t.Errorf("follower status = %d, want 200", followerCode)
	}
	if followerCache != "miss" {
		t.Errorf("follower X-Cache = %q, want miss (it re-ran the engine itself)", followerCache)
	}
}

func TestServerFollowerHonoursOwnDeadline(t *testing.T) {
	s, gate, started := gateServer(Config{Workers: 4, CacheEntries: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := graphBytes(t, gen.Cycle(16))

	done := make(chan struct{})
	go func() { // leader hangs on the gate until teardown
		postRun(t, ts.Client(), ts.URL, "?timeout=30s", body)
		close(done)
	}()
	<-started
	resp, respBody := postRun(t, ts.Client(), ts.URL, "?timeout=100ms", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("follower status = %d, want 504 (body %s)", resp.StatusCode, respBody)
	}
	close(gate) // release the leader so ts.Close does not wait out its deadline
	<-done
}
