// Command edsrun runs one of the paper's algorithms on a generated
// port-numbered graph and reports feasibility, solution quality, and
// execution statistics.
//
// Usage:
//
//	edsrun -graph cycle:12 -alg auto
//	edsrun -graph regular:n=20,d=3 -alg regularodd -engine concurrent
//	edsrun -graph regular:n=100000,d=3 -alg regularodd -engine sharded -shards 8
//	edsrun -graph evenlb:d=6 -alg portone -dot out.dot
//
// Engines: sequential (reference), concurrent (goroutine per node),
// sharded (flat-buffer engine, one worker per CPU by default), auto
// (sharded above 4096 nodes, sequential below). All engines produce
// identical results.
//
// Graphs: cycle:N, path:N, complete:N, hypercube:DIM, torus:RxC,
// petersen, matching:K, regular:n=N,d=D, bounded:n=N,delta=D,
// tree:N, evenlb:d=D, oddlb:d=D.
//
// Algorithms: auto, portone, regularodd, regularodd-nopruning,
// general (uses the graph's max degree), general:DELTA, alledges.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"eds/internal/sim"
	"eds/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("edsrun: ")
	graphSpec := flag.String("graph", "cycle:12", "graph specification (see -help)")
	algSpec := flag.String("alg", "auto", "algorithm: auto|portone|regularodd|regularodd-nopruning|general[:D]|alledges")
	engine := flag.String("engine", "sequential", "engine: sequential|concurrent|sharded|auto")
	shards := flag.Int("shards", 0, "worker shards for the sharded engine (0 = one per CPU)")
	seed := flag.Int64("seed", 1, "seed for random graph families")
	dotOut := flag.String("dot", "", "write a DOT rendering with the output highlighted")
	exact := flag.Bool("exact", false, "also compute the exact optimum (exponential; small graphs only)")
	profile := flag.Bool("profile", false, "print the per-message-type communication profile (sequential, sharded, and auto engines)")
	flag.Parse()

	g, opt, err := spec.Graph(*graphSpec, *seed)
	if err != nil {
		log.Fatal(err)
	}
	alg, bound, err := spec.Algorithm(*algSpec, g)
	if err != nil {
		log.Fatal(err)
	}

	var res *sim.Result
	var trace *sim.Trace
	traceOpts := func() []sim.Option {
		if !*profile {
			return nil
		}
		var traceOpt sim.Option
		trace, traceOpt = sim.NewTrace()
		return []sim.Option{traceOpt}
	}
	switch *engine {
	case "auto":
		res, err = sim.RunAuto(g, alg, append(traceOpts(), sim.WithShards(*shards))...)
	case "sequential":
		res, err = sim.RunSequential(g, alg, traceOpts()...)
	case "concurrent":
		// The concurrent engine rejects hooked runs with a documented
		// sim.ErrHookUnsupported; passing the trace option through keeps
		// the CLI aligned with the engine's contract instead of
		// duplicating the policy here.
		res, err = sim.RunConcurrent(g, alg, traceOpts()...)
	case "sharded":
		res, err = sim.RunSharded(g, alg, append(traceOpts(), sim.WithShards(*shards))...)
	default:
		log.Fatalf("unknown engine %q", *engine)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := report(os.Stdout, g, alg, bound, res, opt, *exact, *dotOut); err != nil {
		log.Fatal(err)
	}
	if trace != nil {
		fmt.Println("\ncommunication profile:")
		fmt.Print(trace.String())
	}
}
