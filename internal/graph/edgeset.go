package graph

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// EdgeSet is a set of edges of one particular graph, stored as a bitset
// over the graph's canonical edge indices. The zero value is not usable;
// create sets with NewEdgeSet.
type EdgeSet struct {
	words []uint64
	size  int // number of edge slots, not the population count
}

// NewEdgeSet returns an empty edge set for a graph with m edges.
func NewEdgeSet(m int) *EdgeSet {
	return &EdgeSet{words: make([]uint64, (m+63)/64), size: m}
}

// NewEdgeSetOf returns an edge set containing exactly the given indices.
func NewEdgeSetOf(m int, indices ...int) *EdgeSet {
	s := NewEdgeSet(m)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// Universe returns the number of edge slots the set was created for.
func (s *EdgeSet) Universe() int { return s.size }

// Add inserts edge index i.
func (s *EdgeSet) Add(i int) {
	s.check(i)
	s.words[i/64] |= 1 << (uint(i) % 64)
}

// Remove deletes edge index i.
func (s *EdgeSet) Remove(i int) {
	s.check(i)
	s.words[i/64] &^= 1 << (uint(i) % 64)
}

// Has reports whether edge index i is present.
func (s *EdgeSet) Has(i int) bool {
	s.check(i)
	return s.words[i/64]&(1<<(uint(i)%64)) != 0
}

func (s *EdgeSet) check(i int) {
	if i < 0 || i >= s.size {
		panic(fmt.Sprintf("graph: edge index %d out of range [0,%d)", i, s.size))
	}
}

// Count returns the number of edges in the set.
func (s *EdgeSet) Count() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Empty reports whether the set has no edges.
func (s *EdgeSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *EdgeSet) Clone() *EdgeSet {
	c := &EdgeSet{words: make([]uint64, len(s.words)), size: s.size}
	copy(c.words, s.words)
	return c
}

// Union adds all edges of t into s. The sets must share a universe size.
func (s *EdgeSet) Union(t *EdgeSet) {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// Subtract removes all edges of t from s.
func (s *EdgeSet) Subtract(t *EdgeSet) {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Intersect keeps only the edges also present in t.
func (s *EdgeSet) Intersect(t *EdgeSet) {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// Equal reports whether s and t contain exactly the same edges.
func (s *EdgeSet) Equal(t *EdgeSet) bool {
	if s.size != t.size {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// Disjoint reports whether s and t share no edge.
func (s *EdgeSet) Disjoint(t *EdgeSet) bool {
	s.sameUniverse(t)
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return false
		}
	}
	return true
}

func (s *EdgeSet) sameUniverse(t *EdgeSet) {
	if s.size != t.size {
		panic(fmt.Sprintf("graph: edge set universe mismatch %d vs %d", s.size, t.size))
	}
}

// Indices returns the sorted slice of edge indices in the set.
func (s *EdgeSet) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &^= 1 << uint(b)
		}
	}
	return out
}

// ForEach calls fn for every edge index in ascending order. If fn returns
// false, iteration stops early.
func (s *EdgeSet) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*64 + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// String formats the set as "{0, 3, 7}".
func (s *EdgeSet) String() string {
	idx := s.Indices()
	parts := make([]string, len(idx))
	for i, e := range idx {
		parts[i] = fmt.Sprint(e)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// CoveredNodes returns, for edge set s in graph g, the boolean vector of
// nodes covered by (incident to) at least one edge of s.
func CoveredNodes(g *Graph, s *EdgeSet) []bool {
	covered := make([]bool, g.N())
	s.ForEach(func(i int) bool {
		e := g.Edge(i)
		covered[e.A.Node] = true
		covered[e.B.Node] = true
		return true
	})
	return covered
}

// DegreeIn returns, for each node, the number of edges of s incident to it.
// Loops count twice for undirected loops and once for directed loops,
// matching the degree convention.
func DegreeIn(g *Graph, s *EdgeSet) []int {
	deg := make([]int, g.N())
	s.ForEach(func(i int) bool {
		e := g.Edge(i)
		deg[e.A.Node]++
		if e.A != e.B {
			deg[e.B.Node]++
		}
		return true
	})
	return deg
}

// EdgeSetFromPairs builds an edge set from node pairs, resolving each pair
// to an arbitrary edge between the nodes. It fails if some pair has no
// edge. Intended for tests and examples on simple graphs.
func EdgeSetFromPairs(g *Graph, pairs [][2]int) (*EdgeSet, error) {
	s := NewEdgeSet(g.M())
	for _, pr := range pairs {
		i := g.PortBetween(pr[0], pr[1])
		if i == 0 {
			return nil, fmt.Errorf("graph: no edge between %d and %d", pr[0], pr[1])
		}
		s.Add(g.EdgeAt(pr[0], i))
	}
	return s, nil
}

// SortedPairs returns the node pairs {u,v} of the edges in s, each sorted
// ascending, for human-readable output.
func SortedPairs(g *Graph, s *EdgeSet) [][2]int {
	out := make([][2]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		e := g.Edge(i)
		u, v := e.A.Node, e.B.Node
		if u > v {
			u, v = v, u
		}
		out = append(out, [2]int{u, v})
		return true
	})
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}
