// Package sim executes deterministic distributed algorithms on
// port-numbered graphs under the synchronous model of Section 2.2 of the
// paper: in every round each node (i) computes, (ii) sends one message to
// each of its ports, and (iii) receives one message from each of its
// ports, routed by the involution p.
//
// Two engines are provided. RunSequential is a deterministic single-
// threaded reference. RunConcurrent runs one goroutine per node and routes
// messages over capacity-1 channels — the natural Go embedding of the
// model — with a coordinator barrier keeping rounds aligned. Both must
// produce identical results on every input; a property test enforces it.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"eds/internal/graph"
)

// Message is the content sent over one port in one round. nil means the
// empty message; only non-nil messages are counted in Result.Messages.
type Message any

// Node is the state machine one node runs. The engine calls Send, then
// delivers the round's incoming messages via Receive; after Receive it
// polls Done. Once Done reports true the node is never called again and
// Output must return the node's chosen ports (the set X(v) of the paper,
// 1-based port numbers).
type Node interface {
	// Send returns the outgoing message for each port; index 0 is port 1.
	// The returned slice must have exactly one entry per port.
	Send(round int) []Message
	// Receive delivers the incoming message of each port for this round.
	Receive(round int, inbox []Message)
	// Done reports whether the node has stopped.
	Done() bool
	// Output returns the chosen port numbers once Done is true.
	Output() []int
}

// Algorithm is a factory of node state machines. In the port-numbering
// model a starting node knows nothing but its own degree, which is
// therefore the only argument.
type Algorithm interface {
	// Name identifies the algorithm in logs and error messages.
	Name() string
	// NewNode returns the initial state of a node with the given degree.
	NewNode(degree int) Node
}

// Result summarises one execution.
type Result struct {
	// Outputs[v] is the sorted set of ports chosen by node v.
	Outputs [][]int
	// Rounds is the number of communication rounds until every node
	// stopped.
	Rounds int
	// Messages counts non-nil messages sent over the whole execution.
	Messages int
}

// ErrRoundLimit is returned when an execution exceeds the round budget,
// which for the paper's algorithms indicates a protocol bug.
var ErrRoundLimit = errors.New("sim: round limit exceeded")

const defaultMaxRounds = 100_000

type config struct {
	maxRounds int
	roundHook func(round int, sent [][]Message)
}

// Option customises an execution.
type Option func(*config)

// WithMaxRounds overrides the default round budget.
func WithMaxRounds(n int) Option {
	return func(c *config) { c.maxRounds = n }
}

// WithRoundHook installs a callback invoked after the send phase of every
// round with the full message matrix (sent[v][i-1] = message sent by v on
// port i). Only the sequential engine honours the hook; it is meant for
// traces and figures.
func WithRoundHook(fn func(round int, sent [][]Message)) Option {
	return func(c *config) { c.roundHook = fn }
}

func buildConfig(opts []Option) config {
	c := config{maxRounds: defaultMaxRounds}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// RunSequential executes the algorithm on g with a deterministic
// single-threaded engine.
func RunSequential(g *graph.Graph, a Algorithm, opts ...Option) (*Result, error) {
	c := buildConfig(opts)
	n := g.N()
	nodes := make([]Node, n)
	done := make([]bool, n)
	for v := 0; v < n; v++ {
		nodes[v] = a.NewNode(g.Deg(v))
	}
	sent := make([][]Message, n)
	inbox := make([][]Message, n)
	for v := 0; v < n; v++ {
		sent[v] = make([]Message, g.Deg(v))
		inbox[v] = make([]Message, g.Deg(v))
	}
	res := &Result{}
	for round := 0; ; round++ {
		allDone := true
		for v := 0; v < n; v++ {
			if !done[v] && !nodes[v].Done() {
				allDone = false
				break
			}
			done[v] = true
		}
		if allDone {
			break
		}
		if round >= c.maxRounds {
			return nil, fmt.Errorf("%w: algorithm %q still running after %d rounds", ErrRoundLimit, a.Name(), round)
		}
		res.Rounds = round + 1
		// Send phase.
		for v := 0; v < n; v++ {
			if done[v] {
				for i := range sent[v] {
					sent[v][i] = nil
				}
				continue
			}
			out := nodes[v].Send(round)
			if len(out) != g.Deg(v) {
				return nil, fmt.Errorf("sim: algorithm %q: node %d sent %d messages, want %d",
					a.Name(), v, len(out), g.Deg(v))
			}
			copy(sent[v], out)
			for _, m := range out {
				if m != nil {
					res.Messages++
				}
			}
		}
		if c.roundHook != nil {
			c.roundHook(round, sent)
		}
		// Route via the involution.
		for v := 0; v < n; v++ {
			for i := 1; i <= g.Deg(v); i++ {
				q := g.P(v, i)
				inbox[q.Node][q.Num-1] = sent[v][i-1]
			}
		}
		// Receive phase.
		for v := 0; v < n; v++ {
			if !done[v] {
				nodes[v].Receive(round, inbox[v])
			}
		}
	}
	var err error
	res.Outputs, err = collectOutputs(g, a, nodes)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RunConcurrent executes the algorithm with one goroutine per node,
// messages travelling over capacity-1 channels, and a coordinator barrier
// aligning rounds. Its results are identical to RunSequential because each
// node's view is deterministic regardless of scheduling.
func RunConcurrent(g *graph.Graph, a Algorithm, opts ...Option) (*Result, error) {
	c := buildConfig(opts)
	n := g.N()
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		nodes[v] = a.NewNode(g.Deg(v))
	}
	// in[v][i-1] is the inbound channel of port (v, i). Capacity 1: a
	// round's message parks there until the owner consumes it.
	in := make([][]chan Message, n)
	for v := 0; v < n; v++ {
		in[v] = make([]chan Message, g.Deg(v))
		for i := range in[v] {
			in[v][i] = make(chan Message, 1)
		}
	}
	start := make([]chan bool, n) // true = run another round, false = stop
	reports := make(chan int, n)  // non-nil message count per worker round
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		start[v] = make(chan bool, 1)
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			node := nodes[v]
			deg := g.Deg(v)
			inbox := make([]Message, deg)
			done := node.Done()
			round := 0
			for cont := range start[v] {
				if !cont {
					return
				}
				var out []Message
				sentCount := 0
				if !done {
					out = node.Send(round)
					if len(out) != deg {
						// A malformed Send would deadlock the peers
						// mid-round; treat it as a programmer error.
						panic(fmt.Sprintf("sim: algorithm %q: node %d sent %d messages, want %d",
							a.Name(), v, len(out), deg))
					}
					for _, m := range out {
						if m != nil {
							sentCount++
						}
					}
				} else {
					out = make([]Message, deg)
				}
				for i := 1; i <= deg; i++ {
					q := g.P(v, i)
					in[q.Node][q.Num-1] <- out[i-1]
				}
				for i := 0; i < deg; i++ {
					inbox[i] = <-in[v][i]
				}
				if !done {
					node.Receive(round, inbox)
					done = node.Done()
				}
				round++
				reports <- sentCount
			}
		}(v)
	}
	stopAll := func() {
		for v := 0; v < n; v++ {
			start[v] <- false
		}
		wg.Wait()
	}
	res := &Result{}
	for round := 0; ; round++ {
		allDone := true
		for v := 0; v < n; v++ {
			if !nodes[v].Done() {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		if round >= c.maxRounds {
			stopAll()
			return nil, fmt.Errorf("%w: algorithm %q still running after %d rounds", ErrRoundLimit, a.Name(), round)
		}
		res.Rounds = round + 1
		for v := 0; v < n; v++ {
			start[v] <- true
		}
		for i := 0; i < n; i++ {
			res.Messages += <-reports
		}
	}
	stopAll()
	outputs, err := collectOutputs(g, a, nodes)
	if err != nil {
		return nil, err
	}
	res.Outputs = outputs
	return res, nil
}

// collectOutputs gathers, sorts, and validates the per-node port sets.
func collectOutputs(g *graph.Graph, a Algorithm, nodes []Node) ([][]int, error) {
	outputs := make([][]int, len(nodes))
	for v, node := range nodes {
		out := append([]int(nil), node.Output()...)
		sort.Ints(out)
		for k, p := range out {
			if p < 1 || p > g.Deg(v) {
				return nil, fmt.Errorf("sim: algorithm %q: node %d output invalid port %d", a.Name(), v, p)
			}
			if k > 0 && out[k-1] == p {
				return nil, fmt.Errorf("sim: algorithm %q: node %d output duplicate port %d", a.Name(), v, p)
			}
		}
		outputs[v] = out
	}
	return outputs, nil
}

// CheckConsistency verifies the paper's output well-formedness condition:
// if i ∈ X(v) and p(v,i) = (u,j) then j ∈ X(u).
func CheckConsistency(g *graph.Graph, outputs [][]int) error {
	chosen := make([]map[int]bool, g.N())
	for v, out := range outputs {
		chosen[v] = make(map[int]bool, len(out))
		for _, p := range out {
			chosen[v][p] = true
		}
	}
	for v, out := range outputs {
		for _, i := range out {
			q := g.P(v, i)
			if !chosen[q.Node][q.Num] {
				return fmt.Errorf("sim: inconsistent output: %d ∈ X(%d) but %d ∉ X(%d)", i, v, q.Num, q.Node)
			}
		}
	}
	return nil
}

// EdgeSet converts consistent outputs into the selected edge set D.
func EdgeSet(g *graph.Graph, outputs [][]int) (*graph.EdgeSet, error) {
	if err := CheckConsistency(g, outputs); err != nil {
		return nil, err
	}
	s := graph.NewEdgeSet(g.M())
	for v, out := range outputs {
		for _, i := range out {
			s.Add(g.EdgeAt(v, i))
		}
	}
	return s, nil
}

// RunToEdgeSet runs the algorithm sequentially and returns the selected
// edge set together with the execution statistics.
func RunToEdgeSet(g *graph.Graph, a Algorithm, opts ...Option) (*graph.EdgeSet, *Result, error) {
	res, err := RunSequential(g, a, opts...)
	if err != nil {
		return nil, nil, err
	}
	s, err := EdgeSet(g, res.Outputs)
	if err != nil {
		return nil, nil, err
	}
	return s, res, nil
}
