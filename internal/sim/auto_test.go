package sim

import (
	"testing"

	"eds/internal/gen"
)

// TestEngineChoiceBoundary pins RunAuto's decision boundary: the
// cutover is derived from the port count (nodes×degree — the setup and
// per-round work volume), not the node count, and sharding is never
// chosen without usable parallelism. If AutoShardedPorts is retuned,
// this table is the place that must change with it.
func TestEngineChoiceBoundary(t *testing.T) {
	const cut = AutoShardedPorts
	cases := []struct {
		name            string
		n, ports, procs int
		want            string
	}{
		// Single CPU: sequential no matter the size — the sharded
		// engine's barriers cannot win without parallelism.
		{"1cpu-small", 100, 200, 1, "sequential"},
		{"1cpu-huge", 1_000_000, 3_000_000, 1, "sequential"},
		{"0cpu-degenerate", 100, 200, 0, "sequential"},

		// Multi-core: the port volume decides.
		{"below-cutover", cut / 2, cut - 1, 8, "sequential"},
		{"at-cutover", cut / 2, cut, 8, "sharded"},
		{"above-cutover", cut, 2 * cut, 8, "sharded"},

		// Many sparse nodes vs few dense nodes: ports, not n, decide.
		// The old node-count heuristic (n > 4096) got both of these
		// wrong — sharding port-free graphs and serializing dense ones.
		{"many-isolated-nodes", 100_000, 0, 8, "sequential"},
		{"few-dense-nodes", 300, 300 * 299, 8, "sharded"},

		{"2-procs-large", cut, 2 * cut, 2, "sharded"},
	}
	for _, tc := range cases {
		if got := EngineChoice(tc.n, tc.ports, tc.procs); got != tc.want {
			t.Errorf("%s: EngineChoice(n=%d, ports=%d, procs=%d) = %q, want %q",
				tc.name, tc.n, tc.ports, tc.procs, got, tc.want)
		}
	}
}

// TestEngineChoiceNamesAreEngines guards the contract that every name
// EngineChoice can return resolves in the Engines registry (the server
// and CLI look the choice up there).
func TestEngineChoiceNamesAreEngines(t *testing.T) {
	reg := Engines()
	for _, choice := range []string{
		EngineChoice(10, 20, 1),
		EngineChoice(1_000_000, 3_000_000, 8),
	} {
		if _, ok := reg[choice]; !ok {
			t.Errorf("EngineChoice returned %q, which is not in Engines()", choice)
		}
	}
}

// TestRunAutoMatchesEngineChoice runs RunAuto on graphs straddling the
// boundary and checks the result matches the sequential reference —
// whatever engine the policy picked, Results must be identical.
func TestRunAutoMatchesEngineChoice(t *testing.T) {
	for _, n := range []int{64, AutoShardedPorts} { // cycle: 2n ports
		g := gen.Cycle(n)
		ref, err := RunSequential(g, sumAlg{rounds: 2})
		if err != nil {
			t.Fatalf("sequential n=%d: %v", n, err)
		}
		res, err := RunAuto(g, sumAlg{rounds: 2})
		if err != nil {
			t.Fatalf("auto n=%d: %v", n, err)
		}
		if res.Rounds != ref.Rounds || res.Messages != ref.Messages {
			t.Errorf("n=%d: auto %+v diverges from sequential %+v", n, res, ref)
		}
	}
}
