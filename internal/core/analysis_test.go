package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eds/internal/gen"
	"eds/internal/graph"
)

// figure2H rebuilds the Section 5 example graph (see the graph package
// tests): a has no uniquely labelled edges, a is b's distinguishable
// neighbour, d is c's distinguishable neighbour.
func figure2H() *graph.Graph {
	b := graph.NewBuilder(4)
	b.MustConnect(0, 1, 2, 2)
	b.MustConnect(0, 2, 1, 1)
	b.MustConnect(1, 2, 3, 2)
	b.MustConnect(2, 1, 3, 1)
	return b.MustBuild()
}

func TestDistinguishablePortFigure2(t *testing.T) {
	g := figure2H()
	const a, bb, c, d = 0, 1, 2, 3
	if _, _, ok := DistinguishablePort(g, a); ok {
		t.Error("node a should have no distinguishable neighbour")
	}
	if i, _, ok := DistinguishablePort(g, bb); !ok || g.P(bb, i).Node != a {
		t.Errorf("distinguishable neighbour of b should be a (ok=%v)", ok)
	}
	if i, _, ok := DistinguishablePort(g, c); !ok || g.P(c, i).Node != d {
		t.Errorf("distinguishable neighbour of c should be d (ok=%v)", ok)
	}
}

func TestDistinguishFromPeersTable(t *testing.T) {
	tests := []struct {
		name  string
		peers []int
		i, j  int
		ok    bool
	}{
		{"degree 0", nil, 0, 0, false},
		{"degree 1", []int{1}, 1, 1, true},
		{"degree 1 asym", []int{7}, 1, 7, true},
		{"all duplicate", []int{2, 1}, 0, 0, false},     // pairs {1,2},{2,1}
		{"two unique", []int{3, 5}, 1, 3, true},         // {1,3} and {2,5}: min own port
		{"dup then unique", []int{2, 1, 4}, 3, 4, true}, // {1,2},{2,1} dup; {3,4} unique
		{"self pair", []int{1, 2}, 1, 1, true},          // {1,1} unique, {2,2} unique -> port 1
		{"mixed", []int{2, 1, 1, 3}, 0, 0, false},       // {1,2},{2,1} dup; {3,1},{4,3}... unique exists
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			i, j, ok := DistinguishFromPeers(tc.peers)
			if tc.name == "mixed" {
				// {3,1} and {4,3} are unique; min own port is 3.
				if !ok || i != 3 || j != 1 {
					t.Errorf("got (%d,%d,%v), want (3,1,true)", i, j, ok)
				}
				return
			}
			if ok != tc.ok || i != tc.i || j != tc.j {
				t.Errorf("got (%d,%d,%v), want (%d,%d,%v)", i, j, ok, tc.i, tc.j, tc.ok)
			}
		})
	}
}

func randomGraph(rng *rand.Rand) *graph.Graph {
	switch rng.Intn(4) {
	case 0:
		d := 1 + rng.Intn(5)
		n := d + 1 + rng.Intn(12)
		if n*d%2 != 0 {
			n++
		}
		return gen.MustRandomRegular(rng, n, d)
	case 1:
		return gen.RandomBoundedDegree(rng, 4+rng.Intn(16), 1+rng.Intn(6), 0.4)
	case 2:
		return gen.RandomTree(rng, 2+rng.Intn(20))
	default:
		return gen.RelabelPorts(rng, gen.Petersen())
	}
}

func TestLemma1OddDegreeHasDistinguishableQuick(t *testing.T) {
	// Lemma 1: every node with odd degree has a distinguishable
	// neighbour.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		for v := 0; v < g.N(); v++ {
			if g.Deg(v)%2 == 1 {
				if _, _, ok := DistinguishablePort(g, v); !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestLemma2MatchingQuick(t *testing.T) {
	// Lemma 2: every M_G(i,j) is a matching.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		d := g.MaxDegree()
		for i := 1; i <= d; i++ {
			for j := 1; j <= d; j++ {
				m := MatchingM(g, i, j)
				deg := graph.DegreeIn(g, m)
				for v := 0; v < g.N(); v++ {
					if deg[v] > 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMatchingsCoverOddDegreeNodesQuick(t *testing.T) {
	// The rephrasing of Lemmas 1 and 2: the union of the M_G(i,j) covers
	// every node of odd degree.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		union := graph.NewEdgeSet(g.M())
		for _, row := range AllMatchings(g) {
			for _, m := range row {
				union.Union(m)
			}
		}
		covered := graph.CoveredNodes(g, union)
		for v := 0; v < g.N(); v++ {
			if g.Deg(v)%2 == 1 && !covered[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMatchingMMembershipDefinition(t *testing.T) {
	// Spot-check the definition on the Petersen graph: e ∈ M_G(i,j) iff
	// p(v,i) = (u,j) for some v whose distinguishable neighbour is u.
	g := gen.Petersen()
	for i := 1; i <= 3; i++ {
		for j := 1; j <= 3; j++ {
			m := MatchingM(g, i, j)
			want := graph.NewEdgeSet(g.M())
			for v := 0; v < g.N(); v++ {
				di, dj, ok := DistinguishablePort(g, v)
				if ok && di == i && dj == j {
					want.Add(g.EdgeAt(v, i))
				}
			}
			if !m.Equal(want) {
				t.Errorf("M_G(%d,%d) = %v, want %v", i, j, m, want)
			}
		}
	}
}
