// Package suppress exercises the //lint:ignore mechanism: an identical
// violation appears twice, once with a justified suppression (no
// diagnostic may surface) and once bare (the diagnostic must survive).
package suppress

import "context"

func sanctioned(ctx context.Context) error {
	//lint:ignore roundctx test helper compared against the raw cause on purpose
	return ctx.Err()
}

func unsanctioned(ctx context.Context) error {
	return ctx.Err() // want `raw context error returned`
}
