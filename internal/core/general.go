package core

import (
	"fmt"

	"eds/internal/sim"
)

// General is the Theorem 5 family A(Δ) for graphs of maximum degree Δ.
// Given Δ = 2k+1 (an even parameter is promoted to the next odd one,
// exactly as the paper sets A(2k) = A(2k+1)), the algorithm builds two
// node-disjoint edge sets and outputs their union D = M ∪ P:
//
//	Phase I   — a greedy matching M over the distinguishable-edge
//	            matchings M_G(i,j), processed pair by pair: add e when
//	            neither endpoint is covered by M. Afterwards every
//	            odd-degree node is covered by M or adjacent to a covered
//	            node (property b).
//	Phase II  — for i = 2..Δ: a maximal matching M_i on the bipartite
//	            graph B_i of edges {u,v} with deg(u) < deg(v) = i and
//	            both endpoints M-uncovered, via port-ordered proposals
//	            from the degree-i side; M grows by M_i. Afterwards every
//	            surviving uncovered edge joins equal-degree endpoints
//	            (property c).
//	Phase III — on the subgraph H of edges with both endpoints
//	            M-uncovered, a 2-matching P dominating H: simultaneous
//	            port-ordered proposals, each node accepting at most one
//	            incoming proposal and retiring after one accepted
//	            outgoing proposal — a maximal matching on the bipartite
//	            double cover of H mapped back to H (Polishchuk–Suomela).
//
// The approximation factor is 4 - 1/k for max degree in {2k, 2k+1},
// optimal by Corollary 1; the round schedule depends only on Δ.
type General struct {
	delta int // normalised: odd, >= 3
}

var _ sim.Algorithm = General{}

// NewGeneral returns A(Δ) for graphs of maximum degree at most Δ. It
// panics if delta < 2; use AllEdges for Δ = 1.
func NewGeneral(delta int) General {
	if delta < 2 {
		panic(fmt.Sprintf("core: General needs Δ >= 2, got %d (use AllEdges for Δ = 1)", delta))
	}
	if delta%2 == 0 {
		delta++ // A(2k) = A(2k+1)
	}
	return General{delta: delta}
}

// Name implements sim.Algorithm.
func (a General) Name() string { return fmt.Sprintf("general(Δ=%d)", a.delta) }

// Delta returns the normalised (odd) family parameter.
func (a General) Delta() int { return a.delta }

// Rounds returns the full round schedule length for the family parameter:
// 1 label-exchange round, 2Δ² phase I rounds, Σ_{i=2..Δ} (1+2i) phase II
// rounds, and 1+2Δ phase III rounds.
func (a General) Rounds(int) int {
	d := a.delta
	total := 1 + 2*d*d
	for i := 2; i <= d; i++ {
		total += 1 + 2*i
	}
	total += 1 + 2*d
	return total
}

// generalNode carries the mutable per-node state across the phases.
type generalNode struct {
	*pairState // phase I machinery; inSet = membership in M
	delta      int
	inP        []bool // phase III membership
	nbrCovered []bool // neighbour M-coverage, refreshed by status rounds

	// Phase II (black role) per-iteration state.
	eligible []int // 0-based ports to propose on, in increasing order
	ptr      int
	matched  bool

	// Shared proposal bookkeeping.
	proposedPort  int   // 0-based port proposed on this cycle, -1 if none
	proposalPorts []int // 0-based ports that carried proposals this cycle

	// Phase III state.
	sentAccepted     bool
	acceptedIncoming bool
}

// NewNode implements sim.Algorithm.
func (a General) NewNode(degree int) sim.Node {
	st := &generalNode{
		pairState:    newPairState(degree),
		delta:        a.delta,
		inP:          make([]bool, degree),
		nbrCovered:   make([]bool, degree),
		proposedPort: -1,
		// Both scratch lists hold at most one entry per port; sizing them
		// up front keeps every proposal round allocation-free.
		eligible:      make([]int, 0, degree),
		proposalPorts: make([]int, 0, degree),
	}
	node := &scriptNode{deg: degree}
	node.steps = append(node.steps, labelExchangeStep(st.pairState))
	// Phase I: all pairs over the family parameter so every node stays on
	// the same global schedule regardless of its own degree.
	for i := 1; i <= a.delta; i++ {
		for j := 1; j <= a.delta; j++ {
			node.steps = append(node.steps, phaseIAddSteps(st.pairState, i, j, addOnlyIfNeitherCovered)...)
		}
	}
	// Phase II: degree-stratified bipartite maximal matchings.
	for i := 2; i <= a.delta; i++ {
		node.steps = append(node.steps, phaseIIStatusStep(st, i))
		for c := 0; c < i; c++ {
			node.steps = append(node.steps, phaseIIProposeStep(st), phaseIIAnswerStep(st))
		}
	}
	// Phase III: the 2-matching on the M-uncovered subgraph.
	node.steps = append(node.steps, phaseIIIStatusStep(st))
	for c := 0; c < a.delta; c++ {
		node.steps = append(node.steps, phaseIIIProposeStep(st), phaseIIIAnswerStep(st))
	}
	node.output = func() []int {
		out := make([]int, 0, degree)
		for idx := 0; idx < degree; idx++ {
			if st.inSet[idx] || st.inP[idx] {
				out = append(out, idx+1)
			}
		}
		return out
	}
	return node
}

// phaseIIStatusStep opens iteration i of phase II: everyone broadcasts
// its M-coverage; a node of degree exactly i that is uncovered becomes
// black and lists its eligible white neighbours (smaller degree,
// uncovered) in increasing port order.
func phaseIIStatusStep(st *generalNode, i int) step {
	return step{
		send: statusBroadcast(st),
		recv: func(inbox []sim.Message) {
			recordStatus(st, inbox)
			st.eligible = st.eligible[:0]
			st.ptr = 0
			st.matched = false
			if st.deg != i || st.covered() {
				return
			}
			for idx := 0; idx < st.deg; idx++ {
				if st.peerDeg[idx] < i && !st.nbrCovered[idx] {
					st.eligible = append(st.eligible, idx)
				}
			}
		},
	}
}

// phaseIIProposeStep: every live black node proposes to its next eligible
// white neighbour.
func phaseIIProposeStep(st *generalNode) step {
	return step{
		send: func(buf []sim.Message) {
			st.proposedPort = -1
			if st.matched || st.ptr >= len(st.eligible) {
				return
			}
			st.proposedPort = st.eligible[st.ptr]
			buf[st.proposedPort] = msgProposal{}
		},
		recv: func(inbox []sim.Message) {
			collectProposals(st, inbox)
		},
	}
}

// phaseIIAnswerStep: every white node answers the proposals it has just
// received — accepting the one on its smallest port if it is still
// unmatched in M, rejecting everything else — and the black nodes act on
// the answers. A white that got matched in an earlier cycle of this
// iteration is covered by M and must reject.
func phaseIIAnswerStep(st *generalNode) step {
	return step{
		send: func(buf []sim.Message) {
			if st.covered() {
				rejectAll(st, buf)
				return
			}
			answerProposals(st, buf, func(accepted int) {
				st.inSet[accepted] = true
			})
		},
		recv: func(inbox []sim.Message) {
			if st.proposedPort < 0 {
				return
			}
			if m, ok := inbox[st.proposedPort].(msgAnswer); ok {
				if m.Accept {
					st.inSet[st.proposedPort] = true
					st.matched = true
				} else {
					st.ptr++
				}
			}
			st.proposedPort = -1
		},
	}
}

// phaseIIIStatusStep opens phase III: everyone broadcasts M-coverage; an
// uncovered node lists the incident H-edges (both endpoints uncovered).
func phaseIIIStatusStep(st *generalNode) step {
	return step{
		send: statusBroadcast(st),
		recv: func(inbox []sim.Message) {
			recordStatus(st, inbox)
			st.eligible = st.eligible[:0]
			st.ptr = 0
			if st.covered() {
				return
			}
			for idx := 0; idx < st.deg; idx++ {
				if !st.nbrCovered[idx] {
					st.eligible = append(st.eligible, idx)
				}
			}
		},
	}
}

// phaseIIIProposeStep: every H-node that has not had a proposal accepted
// yet proposes along its next H-port.
func phaseIIIProposeStep(st *generalNode) step {
	return step{
		send: func(buf []sim.Message) {
			st.proposedPort = -1
			if st.covered() || st.sentAccepted || st.ptr >= len(st.eligible) {
				return
			}
			st.proposedPort = st.eligible[st.ptr]
			buf[st.proposedPort] = msgProposal{}
		},
		recv: func(inbox []sim.Message) {
			collectProposals(st, inbox)
		},
	}
}

// phaseIIIAnswerStep: each H-node accepts the first incoming proposal of
// its life (smallest port this cycle) and rejects all others; proposers
// act on the answers. Accepted edges form the 2-matching P.
func phaseIIIAnswerStep(st *generalNode) step {
	return step{
		send: func(buf []sim.Message) {
			if st.acceptedIncoming {
				rejectAll(st, buf)
				return
			}
			answerProposals(st, buf, func(accepted int) {
				st.inP[accepted] = true
				st.acceptedIncoming = true
			})
		},
		recv: func(inbox []sim.Message) {
			if st.proposedPort < 0 {
				return
			}
			if m, ok := inbox[st.proposedPort].(msgAnswer); ok {
				if m.Accept {
					st.inP[st.proposedPort] = true
					st.sentAccepted = true
				} else {
					st.ptr++
				}
			}
			st.proposedPort = -1
		},
	}
}

// statusBroadcast sends the node's M-coverage flag on every port.
func statusBroadcast(st *generalNode) func(buf []sim.Message) {
	return func(buf []sim.Message) {
		cov := st.covered()
		for idx := range buf {
			buf[idx] = msgStatus{Covered: cov}
		}
	}
}

// recordStatus stores the neighbours' coverage flags.
func recordStatus(st *generalNode, inbox []sim.Message) {
	for idx, m := range inbox {
		if s, ok := m.(msgStatus); ok {
			st.nbrCovered[idx] = s.Covered
		}
	}
}

// collectProposals notes which ports carried proposals this cycle,
// reusing nbr bookkeeping in proposalPorts.
func collectProposals(st *generalNode, inbox []sim.Message) {
	st.proposalPorts = st.proposalPorts[:0]
	for idx, m := range inbox {
		if _, ok := m.(msgProposal); ok {
			st.proposalPorts = append(st.proposalPorts, idx)
		}
	}
}

// answerProposals accepts the smallest-port proposal (invoking onAccept
// with the 0-based port) and rejects the rest, writing the answers into
// the round's send buffer. With no proposals it sends nothing.
func answerProposals(st *generalNode, buf []sim.Message, onAccept func(accepted int)) {
	if len(st.proposalPorts) == 0 {
		return
	}
	accepted := st.proposalPorts[0] // smallest port: inbox scanned in order
	onAccept(accepted)
	buf[accepted] = msgAnswer{Accept: true}
	for _, idx := range st.proposalPorts[1:] {
		buf[idx] = msgAnswer{Accept: false}
	}
}

// rejectAll rejects every proposal received this cycle.
func rejectAll(st *generalNode, buf []sim.Message) {
	if len(st.proposalPorts) == 0 {
		return
	}
	for _, idx := range st.proposalPorts {
		buf[idx] = msgAnswer{Accept: false}
	}
}
