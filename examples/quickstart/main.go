// Quickstart: build an anonymous port-numbered network, let the library
// pick the algorithm with the optimal worst-case guarantee, run it, and
// verify the output.
package main

import (
	"fmt"
	"log"

	"eds"
)

func main() {
	log.SetFlags(0)

	// A 4-regular toroidal grid: 16 anonymous nodes that know nothing
	// but their own degree and their port numbers 1..4.
	g := eds.Torus(4, 4)

	// For an even-regular graph the optimal deterministic algorithm is
	// Theorem 3's PortOne with the tight guarantee 4 - 2/d = 7/2.
	alg, bound, err := eds.ForGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d; algorithm: %s; tight guarantee: %s\n",
		g.N(), g.M(), alg.Name(), bound)

	// Run on the deterministic engine...
	d, res, err := eds.Run(g, alg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d edges in %d round(s) with %d messages\n",
		d.Count(), res.Rounds, res.Messages)

	// ...and on the goroutine-per-node engine: same output, by design.
	d2, _, err := eds.RunConcurrent(g, alg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("concurrent engine agrees: %v\n", d.Equal(d2))

	// The output is always a feasible edge dominating set.
	fmt.Printf("feasible edge dominating set: %v\n", eds.IsEdgeDominatingSet(g, d))

	// On a 16-node instance the exact optimum is still computable.
	measured, err := eds.MeasuredRatio(g, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured ratio %s (= %.3f) <= guarantee %s (= %.3f)\n",
		measured, measured.Float64(), bound, bound.Float64())
}
