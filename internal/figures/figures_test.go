package figures

import (
	"strings"
	"testing"
)

func TestAllFiguresBuild(t *testing.T) {
	arts, err := All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(arts) != 9 {
		t.Fatalf("got %d artifacts, want 9", len(arts))
	}
	for _, a := range arts {
		if a.DOT == "" || a.Text == "" {
			t.Errorf("figure %d: empty rendering", a.ID)
		}
		if len(a.Facts) == 0 {
			t.Errorf("figure %d: no verified facts", a.ID)
		}
		if !strings.Contains(a.DOT, "graph G {") {
			t.Errorf("figure %d: DOT header missing", a.ID)
		}
	}
}

func TestFigureRejectsUnknownID(t *testing.T) {
	if _, err := Figure(0); err == nil {
		t.Error("figure 0 accepted")
	}
	if _, err := Figure(10); err == nil {
		t.Error("figure 10 accepted")
	}
}

func TestFigure4FactorClaim(t *testing.T) {
	a, err := Figure(4)
	if err != nil {
		t.Fatalf("Figure(4): %v", err)
	}
	found := false
	for _, f := range a.Facts {
		if strings.Contains(f, "selects exactly factor G(1)") {
			found = true
		}
	}
	if !found {
		t.Errorf("figure 4 facts missing the forced-factor claim: %v", a.Facts)
	}
}
