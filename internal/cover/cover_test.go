package cover

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eds/internal/gen"
	"eds/internal/graph"
)

// cycleOverLoopNode builds the textbook example: the 2n-cycle with
// alternating pair ports covers the one-node multigraph with a single
// undirected loop numbered (1,2).
func cycleOverLoopNode(n int) (h, g *graph.Graph, f []int) {
	bh := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		bh.MustConnect(v, 1, (v+1)%n, 2)
	}
	bg := graph.NewBuilder(1)
	bg.MustConnect(0, 1, 0, 2)
	f = make([]int, n)
	return bh.MustBuild(), bg.MustBuild(), f
}

func TestVerifyCycleOverLoop(t *testing.T) {
	h, g, f := cycleOverLoopNode(6)
	if err := Verify(h, g, f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejects(t *testing.T) {
	h, g, f := cycleOverLoopNode(6)
	t.Run("wrong length", func(t *testing.T) {
		if err := Verify(h, g, f[:3]); err == nil {
			t.Error("short map accepted")
		}
	})
	t.Run("out of range", func(t *testing.T) {
		bad := append([]int(nil), f...)
		bad[0] = 7
		if err := Verify(h, g, bad); err == nil {
			t.Error("out-of-range map accepted")
		}
	})
	t.Run("degree mismatch", func(t *testing.T) {
		p3 := gen.Path(3) // degrees 1,2,1
		id := Identity(p3)
		id[0] = 1 // map a degree-1 node onto a degree-2 node
		if err := Verify(p3, p3, id); err == nil {
			t.Error("degree mismatch accepted")
		}
	})
	t.Run("not surjective", func(t *testing.T) {
		c6 := gen.Cycle(6)
		m := make([]int, 6) // all onto node 0 of a 6-node graph
		if err := Verify(c6, c6, m); err == nil {
			t.Error("non-surjective map accepted")
		}
	})
	t.Run("connection mismatch", func(t *testing.T) {
		// Two disjoint port-numbered edges with swapped numbering do not
		// cover each other under the identity-like map.
		b1 := graph.NewBuilder(2)
		b1.MustConnect(0, 1, 1, 1)
		g1 := b1.MustBuild()
		b2 := graph.NewBuilder(2)
		b2.MustConnect(0, 1, 1, 1)
		g2 := b2.MustBuild()
		// Maps both endpoints of g1's edge onto node 0 of g2: p(0,1)
		// should then be (0,1), but it is (1,1).
		if err := Verify(g1, g2, []int{0, 0}); err == nil {
			t.Error("connection mismatch accepted")
		}
	})
}

func TestIdentityIsACoveringMap(t *testing.T) {
	for _, g := range []*graph.Graph{gen.Cycle(5), gen.Petersen(), gen.Complete(4)} {
		if err := Verify(g, g, Identity(g)); err != nil {
			t.Errorf("identity rejected: %v", err)
		}
	}
}

func TestBipartiteDoubleCoverQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(3)
		n := d + 1 + rng.Intn(10)
		if n*d%2 != 0 {
			n++
		}
		g, err := gen.RandomRegular(rng, n, d)
		if err != nil {
			return false
		}
		h, cmap := BipartiteDoubleCover(g)
		if h.N() != 2*g.N() || h.M() != 2*g.M() {
			return false
		}
		if err := Verify(h, g, cmap); err != nil {
			return false
		}
		// The double cover is bipartite: all edges join an even node to
		// an odd node.
		for _, e := range h.Edges() {
			if e.U()%2 == e.V()%2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBipartiteDoubleCoverOfBipartiteIsTwoCopies(t *testing.T) {
	g := gen.CompleteBipartite(3, 3)
	h, cmap := BipartiteDoubleCover(g)
	if err := Verify(h, g, cmap); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// The double cover of a connected bipartite graph has exactly two
	// components.
	_, components := graph.Components(h)
	if components != 2 {
		t.Errorf("double cover of bipartite graph has %d components, want 2", components)
	}
}

func TestCompose(t *testing.T) {
	// C8 covers C4 covers the loop node; the composition covers too.
	h8, _, _ := cycleOverLoopNode(8)
	h4, g1, _ := cycleOverLoopNode(4)
	f84 := make([]int, 8)
	for v := range f84 {
		f84[v] = v % 4
	}
	if err := Verify(h8, h4, f84); err != nil {
		t.Fatalf("C8 over C4: %v", err)
	}
	f41 := make([]int, 4)
	if err := Verify(h4, g1, f41); err != nil {
		t.Fatalf("C4 over loop: %v", err)
	}
	comp := Compose(f84, f41)
	if err := Verify(h8, g1, comp); err != nil {
		t.Fatalf("composition: %v", err)
	}
}
