package main

import (
	"fmt"
	"io"

	"eds/internal/harness"
)

// emit writes the regenerated table (and optional studies) to w.
func emit(w io.Writer, maxEven, maxOdd, maxDelta int, study, scaling bool, seed int64) error {
	rows, err := harness.Table1(maxEven, maxOdd, maxDelta)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 1 — measured tight approximation ratios on the adversarial constructions")
	fmt.Fprintln(w)
	fmt.Fprint(w, harness.FormatTable1(rows))
	tight := 0
	for _, r := range rows {
		if r.Tight {
			tight++
		}
	}
	fmt.Fprintf(w, "\n%d/%d rows tight (measured ratio equals the paper's bound exactly)\n", tight, len(rows))

	if study {
		fmt.Fprintln(w, "\nTypical-case studies on random graphs (avg/worst |D|/opt):")
		fmt.Fprintln(w)
		var studies []harness.StudyRow
		for _, d := range []int{2, 3, 4, 5, 6} {
			row, err := harness.RandomRegularStudy(seed, d, 14, 10)
			if err != nil {
				return err
			}
			studies = append(studies, row)
		}
		for _, delta := range []int{3, 4, 5} {
			row, err := harness.RandomBoundedStudy(seed, delta, 14, 10)
			if err != nil {
				return err
			}
			studies = append(studies, row)
		}
		rb, err := harness.RandomizedBaselineStudy(seed, 6, 50)
		if err != nil {
			return err
		}
		studies = append(studies, rb)
		fmt.Fprint(w, harness.FormatStudy(studies))
		fmt.Fprintln(w, "\nNote the last row: with randomness (forbidden by the model), the ratio on the")
		fmt.Fprintln(w, "Theorem 1 construction collapses from 4-2/d to at most 2.")

		fmt.Fprintln(w, "\nCentralized baselines (total selected edges over the batch):")
		fmt.Fprintln(w)
		var baselines []harness.BaselineRow
		for _, maxDeg := range []int{3, 4, 5} {
			row, err := harness.BaselineComparison(seed, 12, maxDeg, 10)
			if err != nil {
				return err
			}
			baselines = append(baselines, row)
		}
		fmt.Fprint(w, harness.FormatBaseline(baselines))
	}

	if scaling {
		fmt.Fprintln(w, "\nLocality study — rounds are a function of d only, independent of n:")
		fmt.Fprintln(w)
		for _, d := range []int{3, 4, 5} {
			rows, err := harness.RoundScaling(seed, d, []int{32, 128, 512})
			if err != nil {
				return err
			}
			fmt.Fprint(w, harness.FormatScaling(rows))
			fmt.Fprintln(w)
		}
	}
	return nil
}
