package sim

import (
	"fmt"
	"runtime"
	"sync"

	"eds/internal/graph"
)

// AutoShardedThreshold is the node count above which engine
// auto-selection (eds.RunAuto, edsrun -engine auto, the harness scaling
// studies) switches from the sequential reference to the sharded engine:
// below it a sequential round is cheaper than the barrier
// synchronisation, above it the flat-buffer parallelism pays off.
const AutoShardedThreshold = 4096

// RunAuto picks an engine by graph size — the sequential reference at or
// below AutoShardedThreshold nodes, the sharded engine above it — and is
// the single home of that policy for the facade, the CLI, the server,
// and the harness studies. Every engine returns identical Results, so
// the choice affects only wall-clock time; both engines honour
// WithRoundHook and WithContext, so hooked or cancellable runs take the
// same path as any other.
func RunAuto(g *graph.Graph, a Algorithm, opts ...Option) (*Result, error) {
	if g.N() > AutoShardedThreshold {
		return RunSharded(g, a, opts...)
	}
	return RunSequential(g, a, opts...)
}

// Engines returns the named engine entry points, the single registry the
// harness studies and tooling resolve engine names against.
func Engines() map[string]func(*graph.Graph, Algorithm, ...Option) (*Result, error) {
	return map[string]func(*graph.Graph, Algorithm, ...Option) (*Result, error){
		"sequential": RunSequential,
		"concurrent": RunConcurrent,
		"sharded":    RunSharded,
	}
}

// WithShards sets the number of worker shards used by RunSharded. Values
// <= 0 select runtime.GOMAXPROCS(0). The shard count never affects the
// Result, only the parallelism.
func WithShards(p int) Option {
	return func(c *config) { c.shards = p }
}

// RunSharded executes the algorithm with P worker shards over the graph's
// flat routing table. Nodes are partitioned into contiguous ranges
// balanced by port count; each round runs two phases separated by a
// sync.WaitGroup barrier:
//
//	send:    every shard writes its nodes' outgoing messages into a flat
//	         outbox indexed by global port number and counts them;
//	receive: every shard gathers its inbox slots through the routing
//	         table (inbox[j] = outbox[route[j]]), delivers each node's
//	         contiguous inbox slice, and retires nodes that report Done.
//
// The two flat arrays are allocated once and reused every round — no
// channels and no per-round allocation — so the engine runs within a
// small constant factor of memory bandwidth on million-node graphs.
// Results are bit-identical to RunSequential for every shard count.
//
// WithRoundHook is honoured: the hook observes the flat outbox through
// per-node subslices, invoked between the send and receive barriers
// where no worker goroutine is running, so it sees exactly the matrix
// the sequential engine would show (retired nodes' slots are nil).
func RunSharded(g *graph.Graph, a Algorithm, opts ...Option) (*Result, error) {
	c := buildConfig(opts)
	if err := c.ctxErr(a); err != nil {
		return nil, err
	}
	n := g.N()
	p := c.shards
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}

	off := g.PortOffsets()
	route := g.RoutingTable()
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		nodes[v] = a.NewNode(g.Deg(v))
	}
	done := make([]bool, n)
	outbox := make([]Message, g.NumPorts())
	inbox := make([]Message, g.NumPorts())
	bounds := shardBounds(off, n, p)

	// Each shard owns one slot; workers touch only their own slot and
	// their node/port range, so phases are race-free by construction.
	type shardStat struct {
		sent    int   // non-nil messages this round
		pending int   // nodes not yet retired
		err     error // first malformed Send (lowest node in shard)
	}
	stats := make([]shardStat, p)

	runPhase := func(f func(s, lo, hi int)) {
		var wg sync.WaitGroup
		wg.Add(p)
		for s := 0; s < p; s++ {
			go func(s int) {
				defer wg.Done()
				f(s, bounds[s], bounds[s+1])
			}(s)
		}
		wg.Wait()
	}

	// Retire nodes that are born done (zero-round algorithms).
	runPhase(func(s, lo, hi int) {
		pending := 0
		for v := lo; v < hi; v++ {
			if nodes[v].Done() {
				done[v] = true
			} else {
				pending++
			}
		}
		stats[s].pending = pending
	})

	// The hook's view of the outbox: one subslice per node, built once.
	// Between the send and receive barriers the workers are joined, so
	// handing the buffers to the hook is race-free.
	var hookView [][]Message
	if c.roundHook != nil {
		hookView = make([][]Message, n)
		for v := 0; v < n; v++ {
			hookView[v] = outbox[off[v]:off[v+1]:off[v+1]]
		}
	}

	res := &Result{}
	for round := 0; ; round++ {
		if err := c.ctxErr(a); err != nil {
			return nil, err
		}
		pending := 0
		for s := range stats {
			pending += stats[s].pending
		}
		if pending == 0 {
			break
		}
		if round >= c.maxRounds {
			return nil, fmt.Errorf("%w: algorithm %q still running after %d rounds", ErrRoundLimit, a.Name(), round)
		}
		res.Rounds = round + 1

		runPhase(func(s, lo, hi int) {
			sent := 0
			for v := lo; v < hi; v++ {
				base := int(off[v])
				deg := int(off[v+1]) - base
				if done[v] {
					for j := base; j < base+deg; j++ {
						outbox[j] = nil
					}
					continue
				}
				out := nodes[v].Send(round)
				if len(out) != deg {
					stats[s].err = fmt.Errorf("sim: algorithm %q: node %d sent %d messages, want %d",
						a.Name(), v, len(out), deg)
					return
				}
				copy(outbox[base:base+deg], out)
				for _, m := range out {
					if m != nil {
						sent++
					}
				}
			}
			stats[s].sent = sent
		})
		// Shards are contiguous ascending node ranges and each worker
		// stops at its first bad node, so the first error in shard order
		// is the lowest misbehaving node — the same error the sequential
		// engine reports.
		for s := range stats {
			if stats[s].err != nil {
				return nil, stats[s].err
			}
			res.Messages += stats[s].sent
		}
		if c.roundHook != nil {
			c.roundHook(round, hookView)
		}

		runPhase(func(s, lo, hi int) {
			for j := int(off[lo]); j < int(off[hi]); j++ {
				inbox[j] = outbox[route[j]]
			}
			pending := 0
			for v := lo; v < hi; v++ {
				if done[v] {
					continue
				}
				nodes[v].Receive(round, inbox[off[v]:off[v+1]])
				if nodes[v].Done() {
					done[v] = true
				} else {
					pending++
				}
			}
			stats[s].pending = pending
		})
	}

	outputs, err := collectOutputs(g, a, nodes)
	if err != nil {
		return nil, err
	}
	res.Outputs = outputs
	return res, nil
}

// shardBounds partitions the nodes into p contiguous ranges balanced by
// port count (the unit of per-round work), returning p+1 boundaries.
// Trailing shards may be empty on degenerate inputs; that only idles a
// worker.
func shardBounds(off []int32, n, p int) []int {
	bounds := make([]int, p+1)
	total := int(off[n])
	if total == 0 {
		// Port-free graph (isolated nodes): balance by node count.
		for s := 0; s <= p; s++ {
			bounds[s] = s * n / p
		}
		return bounds
	}
	v := 0
	for s := 1; s < p; s++ {
		target := total * s / p
		for v < n && int(off[v+1]) <= target {
			v++
		}
		bounds[s] = v
	}
	bounds[p] = n
	return bounds
}
