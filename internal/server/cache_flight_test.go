// Satellite coverage for the PR4 cache and flight machinery that the
// cluster tier now leans on: LRU safety under concurrent fills, the
// leader-private outcome for client cancellation (the 499 sibling of
// the timeout retry test), and the two-level cache-key probing order.
package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"eds/internal/gen"
)

// TestResultCacheConcurrentFill hammers one LRU from many goroutines —
// concurrent peer fills and local runs insert into the same cache — and
// checks the two invariants that matter: size never exceeds capacity,
// and a surviving entry always carries the body it was inserted with.
// Run under -race in CI.
func TestResultCacheConcurrentFill(t *testing.T) {
	const (
		capacity = 8
		workers  = 16
		ops      = 400
		keySpace = 64
	)
	c := newResultCache(capacity)
	bodyFor := func(k int) []byte { return []byte(fmt.Sprintf("body-%d", k)) }

	stop := make(chan struct{})
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() { // samples the size invariant while the writers run
		defer watcher.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := c.len(); n > capacity {
				t.Errorf("cache grew to %d entries, capacity is %d", n, capacity)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := (w*ops + i*7) % keySpace
				key := fmt.Sprintf("key-%d", k)
				if body, ok := c.get(key); ok && !bytes.Equal(body, bodyFor(k)) {
					t.Errorf("key %s returned %q, want %q", key, body, bodyFor(k))
					return
				}
				c.put(key, bodyFor(k))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	watcher.Wait()

	if n := c.len(); n != capacity {
		t.Errorf("final size = %d, want the cache full at %d", n, capacity)
	}
}

// TestServerFollowerRetriesAfterLeaderCancel is the cancellation twin of
// TestServerFollowerRetriesAfterLeaderTimeout: the leader's client hangs
// up, its 499 outcome is private to it, and the follower retries the
// flight as the new leader rather than inheriting the cancellation.
func TestServerFollowerRetriesAfterLeaderCancel(t *testing.T) {
	s, gate, started := gateServer(Config{Workers: 4, CacheEntries: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := graphBytes(t, gen.Cycle(16))

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(leaderCtx, http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(body))
		if err != nil {
			leaderDone <- err
			return
		}
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		leaderDone <- err
	}()
	<-started // the leader holds the flight, its engine run is gated

	var followerCode int
	var followerCache string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postRun(t, ts.Client(), ts.URL, "?timeout=30s", body)
		followerCode = resp.StatusCode
		followerCache = resp.Header.Get("X-Cache")
	}()
	waitForMisses(t, s, 2)
	time.Sleep(20 * time.Millisecond) // let the follower park on the flight
	cancelLeader()

	// The follower must notice the leader's private outcome and start its
	// own engine run.
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("follower never retried after the leader's cancellation")
	}
	close(gate)
	wg.Wait()
	if err := <-leaderDone; err == nil {
		t.Error("leader request completed despite its context being canceled")
	}
	if followerCode != http.StatusOK {
		t.Errorf("follower status = %d, want 200", followerCode)
	}
	if followerCache != "miss" {
		t.Errorf("follower X-Cache = %q, want miss (it re-ran the engine itself)", followerCache)
	}
}

// TestTwoLevelKeyProbing pins the probing order of the two cache levels:
// a byte-identical replay is answered by the raw key without decoding,
// a cosmetic variant falls through to the canonical key and backfills
// its own raw key, and the backfill makes the next replay of the variant
// a raw hit too. Entry counts are the witness — every state transition
// has a distinct cache size.
func TestTwoLevelKeyProbing(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := graphBytes(t, gen.Cycle(12))
	variant := append([]byte("# cosmetic comment, same canonical graph\n"), body...)

	post := func(b []byte) string {
		t.Helper()
		resp, out := postRun(t, ts.Client(), ts.URL, "?alg=auto", b)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d (body %s)", resp.StatusCode, out)
		}
		return resp.Header.Get("X-Cache")
	}

	if c := post(body); c != "miss" {
		t.Fatalf("prime: X-Cache = %q, want miss", c)
	}
	if n := s.cache.len(); n != 2 {
		t.Fatalf("after the priming miss: %d entries, want 2 (raw + canonical)", n)
	}
	if c := post(body); c != "hit" {
		t.Errorf("byte-identical replay: X-Cache = %q, want hit", c)
	}
	if n := s.cache.len(); n != 2 {
		t.Errorf("a raw-key hit must not add entries: %d, want 2", n)
	}
	if c := post(variant); c != "hit" {
		t.Errorf("cosmetic variant: X-Cache = %q, want hit via the canonical key", c)
	}
	if n := s.cache.len(); n != 3 {
		t.Errorf("canonical hit must backfill the variant's raw key: %d entries, want 3", n)
	}
	if c := post(variant); c != "hit" {
		t.Errorf("variant replay: X-Cache = %q, want hit", c)
	}
	if n := s.cache.len(); n != 3 {
		t.Errorf("variant replay must be a raw hit, not another backfill: %d entries, want 3", n)
	}
}
