// Package arenaalias is the arenaalias fixture: BuildNodes-style
// functions that leak sim.StateArena carves in every way the analyzer
// recognises, next to lawful per-run carving. The arena is rewound when
// the run's pooled state is released, so any carve that outlives the
// run aliases a later run's zeroed memory — a corruption only the
// recycling engines can exhibit.
package arenaalias

import (
	"eds/internal/graph"
	"eds/internal/sim"
)

// latestPeers is a package-level sink; a carve stored here dangles the
// moment the run ends.
var latestPeers []int

// leakyAlg caches arena-backed state on the algorithm value itself.
// Algorithms outlive runs (one value serves many Run* calls), so these
// fields point into recycled memory on the second run.
type leakyAlg struct {
	cache   []int
	scratch []bool
	arena   *sim.StateArena
}

func (leakyAlg) Name() string                { return "leaky" }
func (leakyAlg) NewNode(degree int) sim.Node { return nil }

func (a *leakyAlg) BuildNodes(g *graph.Graph, lo, hi int, arena *sim.StateArena, nodes []sim.Node) {
	a.cache = arena.Ints(hi - lo)    // want `stored in an algorithm field`
	a.scratch = arena.Bools(hi - lo) // want `stored in an algorithm field`
	latestPeers = arena.Ints(4)      // want `stored outside the function`
	peers := arena.Ints(8)
	a.cache = peers[:4] // want `stored in an algorithm field`
}

func (a *leakyAlg) carve(arena *sim.StateArena, n int) []int {
	return arena.Ints(n) // want `returned from an algorithm method`
}

func leakyChannel(ch chan []int, arena *sim.StateArena) {
	ch <- arena.Ints(16) // want `sent on a channel`
}

func leakyGoroutine(arena *sim.StateArena) {
	go func() { // want `captured by a goroutine`
		_ = arena.Ints(1)
	}()
}

// goodNode holds carves in node state — the sanctioned pattern: nodes
// die with the run, exactly matching the arena's lifetime.
type goodNode struct {
	peer []int
	seen []bool
}

type goodAlg struct{}

func (goodAlg) Name() string                { return "good" }
func (goodAlg) NewNode(degree int) sim.Node { return nil }

func (goodAlg) BuildNodes(g *graph.Graph, lo, hi int, arena *sim.StateArena, nodes []sim.Node) {
	slab := make([]goodNode, hi-lo)
	for i := range slab {
		deg := g.Deg(lo + i)
		// Node-state stores are the arena's purpose; copying carved
		// data out is always lawful too.
		slab[i] = goodNode{peer: arena.Ints(deg), seen: arena.Bools(deg)}
	}
	snapshot := append([]int(nil), slab[0].peer...)
	latestPeers = snapshot
}

// carveInts mirrors core's arenaInts helper: free functions may return
// carves — the caller decides the lifetime, and the intraprocedural
// analysis checks each caller against its own arena parameter.
func carveInts(arena *sim.StateArena, n int) []int {
	if arena == nil {
		return make([]int, n)
	}
	return arena.Ints(n)
}
