package lint

import (
	"go/ast"
	"go/types"

	"eds/internal/lint/analysis"
)

// AlgDeterminism enforces the port-numbering model's core constraint
// (Section 2 of the paper): a node's behaviour must be a deterministic
// function of its degree, its local state, and the messages it has
// received. Inside any method of a type implementing sim.Node or
// sim.Algorithm — including function literals nested in those methods,
// which is how the core package scripts its protocols — it reports:
//
//   - calls to time.Now / time.Since / time.Until (wall-clock input);
//   - any use of math/rand or math/rand/v2, seeded or not (the model
//     forbids coin flips; randomized baselines live outside sim.Node);
//   - iteration over a map that feeds message emission or port
//     selection (appends/stores producing []sim.Message or []int, or a
//     return from the loop): map order would make the emitted messages
//     engine- and run-dependent;
//   - reads of package-level variables (shared mutable state breaks
//     both determinism and the sharded engine's race-freedom).
//
// These are exactly the bugs the cross-engine equivalence suite cannot
// catch reliably: a map-ordered Send can agree across engines for many
// seeds and diverge on the next, so the property must hold by
// construction.
var AlgDeterminism = &analysis.Analyzer{
	Name: "algdeterminism",
	Doc:  "flag nondeterministic inputs (time, rand, map order, global state) in sim.Node/sim.Algorithm implementations",
	Run:  runAlgDeterminism,
}

func runAlgDeterminism(pass *analysis.Pass) (any, error) {
	sim := simPackage(pass.Pkg)
	if sim == nil {
		return nil, nil
	}
	nodeIface := simInterface(sim, "Node")
	algIface := simInterface(sim, "Algorithm")
	msgType := simNamedType(sim, "Message")
	if nodeIface == nil && algIface == nil {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := obj.Signature().Recv()
			if recv == nil {
				continue
			}
			if !implementsEither(recv.Type(), nodeIface) && !implementsEither(recv.Type(), algIface) {
				continue
			}
			checkDeterminism(pass, fd.Name.Name, fd.Body, msgType)
		}
	}
	return nil, nil
}

// checkDeterminism walks one algorithm-code region (a method body of a
// Node/Algorithm implementation, closures included).
func checkDeterminism(pass *analysis.Pass, method string, body ast.Node, msgType types.Type) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := calleeObject(pass.TypesInfo, n)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				switch obj.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(n.Pos(), "call to time.%s in %s: node code must be a deterministic function of local state and received messages", obj.Name(), method)
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(n.Pos(), "use of %s.%s in %s: the port-numbering model forbids randomness in node code", obj.Pkg().Name(), obj.Name(), method)
			}
		case *ast.RangeStmt:
			t := pass.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if method == "Send" || method == "Output" || emitsFromLoop(pass, n.Body, msgType) {
				pass.Reportf(n.Pos(), "map iteration order feeds message emission or port selection in %s: emitted messages would differ between runs and engines; iterate sorted keys instead", method)
			}
		case *ast.Ident:
			obj, ok := pass.TypesInfo.Uses[n].(*types.Var)
			if !ok || obj.Pkg() == nil {
				return true
			}
			if obj.Parent() == obj.Pkg().Scope() {
				pass.Reportf(n.Pos(), "algorithm code in %s reads package-level state %s: node state must be confined to the Node value (shared state breaks determinism and the sharded engine's race-freedom)", method, obj.Name())
			}
		}
		return true
	})
}

// emitsFromLoop reports whether a map-range body produces messages or
// port numbers: it appends to or stores into a []sim.Message or []int,
// or returns (so iteration order picks the result).
func emitsFromLoop(pass *analysis.Pass, body ast.Node, msgType types.Type) bool {
	intSlice := types.NewSlice(types.Typ[types.Int])
	produces := func(t types.Type) bool {
		return t != nil && (isSliceOf(t, msgType) || types.Identical(t, intSlice))
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && produces(pass.TypeOf(n)) {
				found = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if produces(pass.TypeOf(lhs)) {
					found = true
				}
				if ix, ok := lhs.(*ast.IndexExpr); ok && produces(pass.TypeOf(ix.X)) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
