// Package factor implements Petersen's 2-factorisation theorem (1891) and
// the port numberings derived from it.
//
// The paper's lower-bound constructions (Sections 3.2 and 4.1) need the
// following classical pipeline: any 2k-regular multigraph has an Euler
// orientation (in-degree = out-degree = k at every node); the orientation
// induces a k-regular bipartite multigraph on out/in copies of the nodes;
// a k-regular bipartite multigraph decomposes into k perfect matchings;
// each perfect matching pulls back to a 2-factor, i.e. a spanning
// collection of directed cycles. Assigning p(u, 2i-1) = (v, 2i) along the
// directed cycles of factor i yields the adversarial "pair" port numbering
// used in Theorems 1 and 2.
package factor

import (
	"fmt"
)

// Multi is a lightweight undirected multigraph given by an edge list.
// Loops (U == V) and parallel edges are allowed. It is the input
// representation for factorisation; port numbers do not exist yet at this
// stage — producing them is the point.
type Multi struct {
	N     int
	Edges [][2]int
}

// Degrees returns the degree sequence; a loop contributes 2 to its node.
func (m Multi) Degrees() []int {
	deg := make([]int, m.N)
	for _, e := range m.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	return deg
}

// Regular returns the common degree, or an error if the graph is not
// regular.
func (m Multi) Regular() (int, error) {
	deg := m.Degrees()
	if m.N == 0 {
		return 0, nil
	}
	for v, d := range deg {
		if d != deg[0] {
			return 0, fmt.Errorf("factor: not regular: deg(%d)=%d vs deg(0)=%d", v, d, deg[0])
		}
	}
	return deg[0], nil
}

// Arc is a directed traversal of edge Edge from Tail to Head.
type Arc struct {
	Edge       int
	Tail, Head int
}

// EulerOrientation orients every edge so that each node has equal
// in-degree and out-degree. It requires every degree to be even (loops
// count twice) and works per connected component via Hierholzer's
// algorithm. The result has one arc per edge, indexed arbitrarily.
func EulerOrientation(m Multi) ([]Arc, error) {
	for v, d := range m.Degrees() {
		if d%2 != 0 {
			return nil, fmt.Errorf("factor: node %d has odd degree %d; Euler orientation impossible", v, d)
		}
	}
	// incidence[v] = list of (edge index, endpoint slot) pairs; a loop
	// appears twice at its node.
	type half struct {
		edge int
		slot int // 0 or 1: which endpoint of the edge this half is
	}
	incidence := make([][]half, m.N)
	for ei, e := range m.Edges {
		incidence[e[0]] = append(incidence[e[0]], half{edge: ei, slot: 0})
		incidence[e[1]] = append(incidence[e[1]], half{edge: ei, slot: 1})
	}
	usedEdge := make([]bool, len(m.Edges))
	next := make([]int, m.N) // per-node pointer into incidence
	arcs := make([]Arc, 0, len(m.Edges))
	// Hierholzer: walk greedily from each node with unused edges, closing
	// circuits; orientation = walk direction.
	var walk func(start int)
	walk = func(start int) {
		stack := []int{start}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			advanced := false
			for next[v] < len(incidence[v]) {
				h := incidence[v][next[v]]
				next[v]++
				if usedEdge[h.edge] {
					continue
				}
				usedEdge[h.edge] = true
				e := m.Edges[h.edge]
				u := e[1-h.slot] // the other endpoint
				arcs = append(arcs, Arc{Edge: h.edge, Tail: v, Head: u})
				stack = append(stack, u)
				advanced = true
				break
			}
			if !advanced {
				stack = stack[:len(stack)-1]
			}
		}
	}
	for v := 0; v < m.N; v++ {
		walk(v)
	}
	if len(arcs) != len(m.Edges) {
		return nil, fmt.Errorf("factor: internal error: oriented %d of %d edges", len(arcs), len(m.Edges))
	}
	return arcs, nil
}

// TwoFactorise partitions the edges of a 2k-regular multigraph into k
// oriented 2-factors (Petersen 1891). Each factor is returned as a set of
// arcs in which every node has out-degree and in-degree exactly 1, i.e.
// a spanning union of directed cycles.
func TwoFactorise(m Multi) ([][]Arc, error) {
	d, err := m.Regular()
	if err != nil {
		return nil, err
	}
	if d%2 != 0 {
		return nil, fmt.Errorf("factor: degree %d is odd; 2-factorisation needs a 2k-regular graph", d)
	}
	k := d / 2
	if k == 0 {
		return nil, nil
	}
	arcs, err := EulerOrientation(m)
	if err != nil {
		return nil, err
	}
	// Bipartite multigraph B: left = out-copies, right = in-copies; each
	// arc is an edge (tail_out, head_in). B is k-regular; peel off k
	// perfect matchings with Kuhn's augmenting-path algorithm.
	remaining := make([]bool, len(arcs))
	for i := range remaining {
		remaining[i] = true
	}
	outArcs := make([][]int, m.N)
	for ai, a := range arcs {
		outArcs[a.Tail] = append(outArcs[a.Tail], ai)
	}
	factors := make([][]Arc, 0, k)
	for round := 0; round < k; round++ {
		matchL := make([]int, m.N) // node -> arc index matched on its out-copy
		matchR := make([]int, m.N) // node -> arc index matched on its in-copy
		for i := range matchL {
			matchL[i] = -1
			matchR[i] = -1
		}
		var try func(u int, visited []bool) bool
		try = func(u int, visited []bool) bool {
			for _, ai := range outArcs[u] {
				if !remaining[ai] {
					continue
				}
				v := arcs[ai].Head
				if visited[v] {
					continue
				}
				visited[v] = true
				if matchR[v] == -1 || try(arcs[matchR[v]].Tail, visited) {
					matchL[u] = ai
					matchR[v] = ai
					return true
				}
			}
			return false
		}
		for u := 0; u < m.N; u++ {
			if matchL[u] == -1 {
				visited := make([]bool, m.N)
				if !try(u, visited) {
					return nil, fmt.Errorf("factor: no perfect matching in round %d; graph is not %d-regular?", round, d)
				}
			}
		}
		factor := make([]Arc, 0, m.N)
		for u := 0; u < m.N; u++ {
			ai := matchL[u]
			factor = append(factor, arcs[ai])
			remaining[ai] = false
		}
		factors = append(factors, factor)
	}
	return factors, nil
}

// PortAssignment records that port PU of node U is connected to port PV of
// node V. For a directed loop U == V and PU == PV.
type PortAssignment struct {
	U, V   int
	PU, PV int
}

// PairPorts computes the adversarial pair port numbering of a 2k-regular
// multigraph: the edges of the i-th 2-factor (i = 1..k) connect port 2i-1
// of the arc's tail to port 2i of the arc's head, exactly as in Sections
// 3.2 and 4.1 of the paper. The assignments are returned in arbitrary
// order; every node ends up using each port 1..2k exactly once.
func PairPorts(m Multi) ([]PortAssignment, error) {
	factors, err := TwoFactorise(m)
	if err != nil {
		return nil, err
	}
	out := make([]PortAssignment, 0, len(m.Edges))
	for fi, factor := range factors {
		lo, hi := 2*fi+1, 2*fi+2
		for _, a := range factor {
			out = append(out, PortAssignment{U: a.Tail, V: a.Head, PU: lo, PV: hi})
		}
	}
	return out, nil
}
