package core

import (
	"fmt"

	"eds/internal/graph"
	"eds/internal/sim"
)

// VertexCover3 is the Polishchuk–Suomela local 3-approximation of a
// minimum vertex cover (reference [21] of the paper) — the algorithm
// whose double-cover 2-matching is reused as phase III of Theorem 5.
// Implemented here as an extension, it demonstrates the node-based
// covering problem the paper contrasts edge dominating sets with.
//
// The protocol is the phase III proposal scheme run on the whole graph:
// every node proposes along its ports in increasing order until one
// proposal is accepted, and accepts the first incoming proposal of its
// life. Accepted proposals form a 2-matching P that dominates every
// edge; a node joins the cover exactly when it is covered by P, and its
// output X(v) lists its P-ports (so the cover is the set of nodes with
// non-empty output). The cover has at most 3 times the minimum size, and
// the bound is tight in the port-numbering model.
//
// Delta bounds the maximum degree; it fixes the uniform round schedule
// (2Δ rounds).
type VertexCover3 struct {
	Delta int
}

var (
	_ sim.Algorithm     = VertexCover3{}
	_ sim.BulkAlgorithm = VertexCover3{}
)

// Name implements sim.Algorithm.
func (a VertexCover3) Name() string { return fmt.Sprintf("vertexcover3(Δ=%d)", a.Delta) }

// Rounds returns the schedule length: 2Δ.
func (a VertexCover3) Rounds(int) int { return 2 * a.Delta }

// NewNode implements sim.Algorithm.
func (a VertexCover3) NewNode(degree int) sim.Node {
	return newProgNode(vertexCover3Program(a.Name(), a.Delta), degree)
}

// BuildNodes implements sim.BulkAlgorithm.
func (a VertexCover3) BuildNodes(g *graph.Graph, lo, hi int, arena *sim.StateArena, nodes []sim.Node) {
	prog := vertexCover3Program(a.Name(), a.Delta)
	buildProgNodes(g, lo, hi, arena, nodes, func(int) *program[generalState] { return prog })
}

// vertexCover3Program compiles (once per Δ) the 2Δ-round proposal
// schedule. It reuses the phase III machinery of Theorem 5 on the full
// generalState; the phase I/II fields simply stay at their zero values.
func vertexCover3Program(kind string, delta int) *program[generalState] {
	if delta < 1 {
		panic(fmt.Sprintf("core: VertexCover3 needs Δ >= 1, got %d", delta))
	}
	return cachedProgram(kind, 0, func() *program[generalState] {
		p := &program[generalState]{
			init: func(st *generalState, deg int, arena *sim.StateArena) {
				initGeneralState(st, deg, arena)
				// Every port is eligible: the 2-matching is computed on the
				// whole graph, not on an M-uncovered subgraph.
				for idx := 0; idx < deg; idx++ {
					st.eligible = append(st.eligible, idx)
				}
			},
			output: func(st *generalState, _ int, dst []int) []int {
				return appendChosen(dst, st.inP)
			},
		}
		for c := 0; c < delta; c++ {
			p.steps = append(p.steps, phaseIIIProposeStep(), phaseIIIAnswerStep())
		}
		return p
	})
}
