package sim

import (
	"strings"
	"testing"

	"eds/internal/gen"
)

func TestTraceRecordsProfile(t *testing.T) {
	g := gen.Cycle(5)
	tr, opt := NewTrace()
	res, err := RunSequential(g, sumAlg{rounds: 3}, opt)
	if err != nil {
		t.Fatalf("RunSequential: %v", err)
	}
	if len(tr.Rounds) != res.Rounds {
		t.Errorf("trace has %d rounds, result says %d", len(tr.Rounds), res.Rounds)
	}
	if tr.TotalMessages() != res.Messages {
		t.Errorf("trace counted %d messages, result says %d", tr.TotalMessages(), res.Messages)
	}
	totals := tr.TypeTotals()
	if totals["int"] != res.Messages {
		t.Errorf("TypeTotals = %v, want all %d messages of type int", totals, res.Messages)
	}
	out := tr.String()
	for _, want := range []string{"rounds: 3", "int", "busiest round"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestTraceEmptyRun(t *testing.T) {
	g := gen.PerfectMatching(2)
	tr, opt := NewTrace()
	// markAlg stops after one round.
	if _, err := RunSequential(g, markAlg{}, opt); err != nil {
		t.Fatalf("RunSequential: %v", err)
	}
	if len(tr.Rounds) != 1 {
		t.Errorf("rounds = %d, want 1", len(tr.Rounds))
	}
}
