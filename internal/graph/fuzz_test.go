package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadGraph feeds arbitrary bytes to the codec, which now parses
// untrusted network input for the edsd server. The decoder must never
// panic and must never allocate beyond the configured limits; any graph
// it does accept must validate, and the WriteTo → ReadGraph round trip
// of an accepted graph must be the identity.
func FuzzReadGraph(f *testing.F) {
	f.Add([]byte("nodes 2\nconn 0 1 1 1\n"))
	f.Add([]byte("nodes 3\nconn 0 1 1 1\nconn 1 2 2 1\n"))
	f.Add([]byte("nodes 1\nconn 0 1 0 1\n"))              // directed loop
	f.Add([]byte("nodes 1\nconn 0 1 0 2\n"))              // undirected loop
	f.Add([]byte("# comment\n\nnodes 2\nconn 0 1 1 1\n")) // comments + blanks
	f.Add([]byte("nodes"))                                // truncated directive
	f.Add([]byte("nodes 99999999999999999999"))           // overflows int
	f.Add([]byte("nodes 2\nconn 0 1000000 1 1\n"))        // huge port number
	f.Add([]byte("nodes -5\n"))
	f.Add([]byte("nodes 2\nnodes 2\n"))
	f.Add([]byte("conn 0 1 1 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Tight limits keep the fuzzer fast and prove the caps bound
		// allocation no matter what the input declares.
		lim := Limits{MaxNodes: 64, MaxPorts: 256}
		g, err := ReadGraphLimits(bytes.NewReader(data), lim)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		if g.N() > lim.MaxNodes || g.NumPorts() > lim.MaxPorts {
			t.Fatalf("limits not enforced: n=%d ports=%d", g.N(), g.NumPorts())
		}
		var buf bytes.Buffer
		if err := WriteTo(&buf, g); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		canonical := buf.String()
		h, err := ReadGraphLimits(strings.NewReader(canonical), lim)
		if err != nil {
			t.Fatalf("re-reading WriteTo output: %v", err)
		}
		if !g.Equal(h) {
			t.Fatalf("round trip is not the identity:\n%s", canonical)
		}
		// Canonical form is a fixed point: serialising again must yield
		// the same bytes (the edsd result cache keys on them).
		buf.Reset()
		if err := WriteTo(&buf, h); err != nil {
			t.Fatalf("WriteTo(round-tripped): %v", err)
		}
		if buf.String() != canonical {
			t.Fatalf("canonical form is not a fixed point:\n%q\nvs\n%q", canonical, buf.String())
		}
	})
}

// FuzzBuilder feeds arbitrary connect sequences to the builder: whatever
// subset of operations succeeds must still produce a valid involution,
// and Build must never return a structurally broken graph.
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 1, 2, 2, 1})
	f.Add([]byte{0, 1, 0, 1})             // directed loop
	f.Add([]byte{0, 1, 0, 2, 1, 1, 1, 2}) // undirected loops
	f.Add([]byte{3, 9, 2, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 5
		b := NewBuilder(n)
		wired := 0
		for i := 0; i+3 < len(data); i += 4 {
			u := int(data[i]) % n
			pi := 1 + int(data[i+1])%6
			v := int(data[i+2]) % n
			pj := 1 + int(data[i+3])%6
			if err := b.Connect(u, pi, v, pj); err == nil {
				wired++
			}
		}
		g, err := b.Build()
		if err != nil {
			// Holes in the port space are legitimate build failures.
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("built graph fails validation: %v", err)
		}
		total := 0
		for v := 0; v < g.N(); v++ {
			total += g.Deg(v)
		}
		// Handshake: every edge has two port endpoints except directed
		// loops, which have one.
		directed := 0
		for _, e := range g.Edges() {
			if e.IsDirectedLoop() {
				directed++
			}
		}
		if total != 2*(g.M()-directed)+directed {
			t.Fatalf("handshake violated: ports %d, edges %d (%d directed loops)", total, g.M(), directed)
		}
	})
}

// FuzzRoutingTable builds graphs from arbitrary connect sequences and
// checks that the flat routing view is a self-inverse permutation of the
// global port space consistent with the involution g.P(v, i).
func FuzzRoutingTable(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 1, 2, 2, 1})
	f.Add([]byte{0, 1, 0, 1})             // directed loop
	f.Add([]byte{0, 1, 0, 2, 1, 1, 1, 2}) // undirected loops
	f.Add([]byte{2, 1, 3, 1, 3, 2, 4, 1, 4, 2, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 6
		b := NewBuilder(n)
		for i := 0; i+3 < len(data); i += 4 {
			u := int(data[i]) % n
			pi := 1 + int(data[i+1])%7
			v := int(data[i+2]) % n
			pj := 1 + int(data[i+3])%7
			b.Connect(u, pi, v, pj) // failures leave holes; Build rejects them
		}
		g, err := b.Build()
		if err != nil {
			return
		}
		off := g.PortOffsets()
		route := g.RoutingTable()
		total := 0
		for v := 0; v < g.N(); v++ {
			if int(off[v]) != total {
				t.Fatalf("PortOffsets[%d] = %d, want %d", v, off[v], total)
			}
			total += g.Deg(v)
		}
		if int(off[g.N()]) != total || len(route) != total {
			t.Fatalf("port space size mismatch: off[n]=%d len(route)=%d want %d", off[g.N()], len(route), total)
		}
		seen := make([]bool, total)
		for j := range route {
			p := route[j]
			if p < 0 || int(p) >= total {
				t.Fatalf("route[%d] = %d out of range [0,%d)", j, p, total)
			}
			if route[p] != int32(j) {
				t.Fatalf("not self-inverse: route[%d]=%d, route[%d]=%d", j, p, p, route[p])
			}
			if seen[p] {
				t.Fatalf("route is not a permutation: %d hit twice", p)
			}
			seen[p] = true
		}
		for v := 0; v < g.N(); v++ {
			for i := 1; i <= g.Deg(v); i++ {
				q := g.P(v, i)
				if want := off[q.Node] + int32(q.Num-1); route[off[v]+int32(i-1)] != want {
					t.Fatalf("route for port (%d,%d) disagrees with P: got %d, want %d",
						v, i, route[off[v]+int32(i-1)], want)
				}
			}
		}
	})
}

// FuzzEdgeSetOps checks the bitset against a map-based model.
func FuzzEdgeSetOps(f *testing.F) {
	f.Add([]byte{1, 0, 2, 1, 1, 63, 0, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		const m = 130
		s := NewEdgeSet(m)
		model := map[int]bool{}
		for i := 0; i+1 < len(data); i += 2 {
			idx := int(data[i+1]) % m
			if data[i]%2 == 0 {
				s.Add(idx)
				model[idx] = true
			} else {
				s.Remove(idx)
				delete(model, idx)
			}
		}
		if s.Count() != len(model) {
			t.Fatalf("Count = %d, model %d", s.Count(), len(model))
		}
		for idx := 0; idx < m; idx++ {
			if s.Has(idx) != model[idx] {
				t.Fatalf("Has(%d) = %v, model %v", idx, s.Has(idx), model[idx])
			}
		}
	})
}
