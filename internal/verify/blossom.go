package verify

import (
	"fmt"

	"eds/internal/graph"
)

// MaximumMatching returns a maximum-cardinality matching of g, computed
// with Edmonds' blossom-shrinking algorithm (O(V³)). Unlike the
// branch-and-bound solvers in this package it is polynomial, so it
// scales to the large instances used in the studies, where ν(G)/2 is a
// lower bound on the minimum maximal matching and hence on the minimum
// edge dominating set. Loops are ignored; parallel edges are harmless.
func MaximumMatching(g *graph.Graph) *graph.EdgeSet {
	n := g.N()
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		for i := 1; i <= g.Deg(v); i++ {
			u := g.Neighbour(v, i)
			if u != v {
				adj[v] = append(adj[v], u)
			}
		}
	}
	match := blossomMatch(n, adj)
	s := graph.NewEdgeSet(g.M())
	for v := 0; v < n; v++ {
		u := match[v]
		if u > v {
			s.Add(g.EdgeAt(v, g.PortBetween(v, u)))
		}
	}
	return s
}

// blossomMatch is the standard array-based Edmonds implementation: grow
// alternating trees from free vertices, shrink odd cycles (blossoms) to
// their base, and augment when a free vertex is reached.
func blossomMatch(n int, adj [][]int) []int {
	match := make([]int, n)
	p := make([]int, n)    // alternating-tree parent of even vertices
	base := make([]int, n) // blossom base of each vertex
	used := make([]bool, n)
	blossom := make([]bool, n)
	for i := range match {
		match[i] = -1
	}
	queue := make([]int, 0, n)

	lca := func(a, b int) int {
		usedPath := make([]bool, n)
		for {
			a = base[a]
			usedPath[a] = true
			if match[a] == -1 {
				break
			}
			a = p[match[a]]
		}
		for {
			b = base[b]
			if usedPath[b] {
				return b
			}
			b = p[match[b]]
		}
	}

	markPath := func(v, b, child int) {
		for base[v] != b {
			blossom[base[v]] = true
			blossom[base[match[v]]] = true
			p[v] = child
			child = match[v]
			v = p[match[v]]
		}
	}

	findPath := func(root int) bool {
		for i := 0; i < n; i++ {
			used[i] = false
			p[i] = -1
			base[i] = i
		}
		used[root] = true
		queue = queue[:0]
		queue = append(queue, root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, to := range adj[v] {
				if base[v] == base[to] || match[v] == to {
					continue
				}
				if to == root || (match[to] != -1 && p[match[to]] != -1) {
					// Odd cycle: shrink the blossom rooted at the LCA.
					curBase := lca(v, to)
					for i := range blossom {
						blossom[i] = false
					}
					markPath(v, curBase, to)
					markPath(to, curBase, v)
					for i := 0; i < n; i++ {
						if blossom[base[i]] {
							base[i] = curBase
							if !used[i] {
								used[i] = true
								queue = append(queue, i)
							}
						}
					}
				} else if p[to] == -1 {
					p[to] = v
					if match[to] == -1 {
						// Augment along the alternating path to the root.
						u := to
						for u != -1 {
							pv := p[u]
							ppv := match[pv]
							match[u] = pv
							match[pv] = u
							u = ppv
						}
						return true
					}
					used[match[to]] = true
					queue = append(queue, match[to])
				}
			}
		}
		return false
	}

	for v := 0; v < n; v++ {
		if match[v] == -1 {
			findPath(v)
		}
	}
	return match
}

// MinimumEdgeCover returns a minimum-size edge cover via Gallai's
// identity: take a maximum matching and cover each exposed node with an
// arbitrary incident edge, giving |C| = n - ν(G). It fails if g has an
// isolated node (no edge cover exists then).
func MinimumEdgeCover(g *graph.Graph) (*graph.EdgeSet, error) {
	c := MaximumMatching(g)
	covered := graph.CoveredNodes(g, c)
	for v := 0; v < g.N(); v++ {
		if covered[v] {
			continue
		}
		if g.Deg(v) == 0 {
			return nil, fmt.Errorf("verify: node %d is isolated; no edge cover exists", v)
		}
		added := false
		for i := 1; i <= g.Deg(v); i++ {
			if g.Neighbour(v, i) != v {
				c.Add(g.EdgeAt(v, i))
				added = true
				break
			}
		}
		if !added {
			return nil, fmt.Errorf("verify: node %d has only loops; no edge cover exists", v)
		}
		covered[v] = true
	}
	return c, nil
}
