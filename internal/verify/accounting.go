package verify

import (
	"fmt"

	"eds/internal/graph"
)

// Accounting is the cost bookkeeping of the Theorem 5 analysis (Sections
// 7.4–7.8) evaluated on a concrete run: fix a maximal matching D* (the
// optimum when D* is a minimum maximal matching), call a node internal
// when D* covers it, and distribute the size of the algorithm's output D
// over the internal nodes:
//
//   - an edge of D joining an internal and an external node adds 1 to the
//     internal endpoint;
//   - an edge of D joining two internal nodes adds 1/2 to each.
//
// Costs are stored doubled so they stay integers: 2c(v) ∈ {0,1,2,3,4}.
type Accounting struct {
	// Internal flags nodes covered by D*.
	Internal []bool
	// DoubleCost[v] = 2c(v) for internal nodes, 0 for external ones.
	DoubleCost []int
	// I[x] counts internal nodes with 2c(v) = x (the paper's I_x).
	I [5]int
	// SizeD and SizeDstar are |D| and |D*|.
	SizeD, SizeDstar int
}

// Account computes the Theorem 5 cost decomposition of output d against
// the maximal matching dstar. It validates the two identities the proof
// rests on: Σ_x I_x = |I| = 2|D*| and Σ_x x·I_x = 2|D|, and that no edge
// joins two external nodes (which would contradict the maximality of D*).
func Account(g *graph.Graph, d, dstar *graph.EdgeSet) (*Accounting, error) {
	if !IsMaximalMatching(g, dstar) {
		return nil, fmt.Errorf("verify: D* is not a maximal matching")
	}
	a := &Accounting{
		Internal:   graph.CoveredNodes(g, dstar),
		DoubleCost: make([]int, g.N()),
		SizeD:      d.Count(),
		SizeDstar:  dstar.Count(),
	}
	for _, e := range g.Edges() {
		if !a.Internal[e.A.Node] && !a.Internal[e.B.Node] {
			return nil, fmt.Errorf("verify: edge %v joins two external nodes; D* not maximal", e)
		}
	}
	var err error
	d.ForEach(func(idx int) bool {
		e := g.Edge(idx)
		u, v := e.A.Node, e.B.Node
		switch {
		case u == v:
			err = fmt.Errorf("verify: accounting does not support loops (edge %v)", e)
			return false
		case a.Internal[u] && a.Internal[v]:
			a.DoubleCost[u]++
			a.DoubleCost[v]++
		case a.Internal[u]:
			a.DoubleCost[u] += 2
		default:
			a.DoubleCost[v] += 2
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	internalCount := 0
	for v := 0; v < g.N(); v++ {
		if !a.Internal[v] {
			continue
		}
		internalCount++
		dc := a.DoubleCost[v]
		if dc < 0 || dc > 4 {
			return nil, fmt.Errorf("verify: node %d has 2c(v) = %d outside {0..4}; D is not a valid union of a matching and a 2-matching", v, dc)
		}
		a.I[dc]++
	}
	if internalCount != 2*a.SizeDstar {
		return nil, fmt.Errorf("verify: |I| = %d, want 2|D*| = %d", internalCount, 2*a.SizeDstar)
	}
	sum := 0
	for x, c := range a.I {
		sum += x * c
	}
	if sum != 2*a.SizeD {
		return nil, fmt.Errorf("verify: Σ x·I_x = %d, want 2|D| = %d", sum, 2*a.SizeD)
	}
	return a, nil
}

// CheckTheorem5Inequality verifies the double-counting conclusion of
// Section 7.7 for maximum degree parameter delta (odd, = 2k+1):
//
//	2·I₄ ≤ (Δ-3)·I₃ + (2Δ-4)·I₂ + (2Δ-2)·I₁ + (2Δ-2)·I₀.
//
// The inequality is what forces the approximation ratio 4 - 1/k; it must
// hold for every output of A(Δ) against every maximal matching D*.
func (a *Accounting) CheckTheorem5Inequality(delta int) error {
	if delta < 3 {
		return fmt.Errorf("verify: inequality needs Δ >= 3, got %d", delta)
	}
	lhs := 2 * a.I[4]
	rhs := (delta-3)*a.I[3] + (2*delta-4)*a.I[2] + (2*delta-2)*a.I[1] + (2*delta-2)*a.I[0]
	if lhs > rhs {
		return fmt.Errorf("verify: Theorem 5 inequality violated: 2·I₄ = %d > %d (I = %v, Δ = %d)",
			lhs, rhs, a.I, delta)
	}
	return nil
}
