// Anonymity: why anonymous networks cannot solve symmetry-breaking
// problems, demonstrated with covering maps (Section 2.3 of the paper).
//
// A 12-cycle with the "pair" port numbering covers a one-node multigraph
// with a single loop. Any deterministic algorithm run on the cycle must
// therefore produce the *same* output at every node — which is exactly
// why no such algorithm can compute a maximal matching (nodes would have
// to disagree), while edge dominating sets remain approximable: a
// symmetric output like "every node picks port 1" is still a feasible
// EDS, just not a minimum one.
package main

import (
	"fmt"
	"log"

	"eds"
	"eds/internal/core"
	"eds/internal/cover"
	"eds/internal/sim"
	"eds/internal/verify"
)

func main() {
	log.SetFlags(0)

	// The 12-cycle where p(v,1) = (v+1,2): every node looks exactly like
	// every other node, forever.
	const n = 12
	b := eds.NewBuilder(n)
	for v := 0; v < n; v++ {
		if err := b.Connect(v, 1, (v+1)%n, 2); err != nil {
			log.Fatal(err)
		}
	}
	cycle, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// The quotient: one anonymous node with a single loop.
	qb := eds.NewBuilder(1)
	if err := qb.Connect(0, 1, 0, 2); err != nil {
		log.Fatal(err)
	}
	loop, err := qb.Build()
	if err != nil {
		log.Fatal(err)
	}
	f := make([]int, n)
	if err := cover.Verify(cycle, loop, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C%d covers the 1-node loop multigraph: verified\n\n", n)

	// Run the Theorem 3 algorithm on both graphs.
	alg := core.PortOne{}
	rc, err := sim.RunSequential(cycle, alg)
	if err != nil {
		log.Fatal(err)
	}
	rl, err := sim.RunSequential(loop, alg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output of every cycle node: %v\n", rc.Outputs[0])
	fmt.Printf("output of the loop node:    %v\n", rl.Outputs[0])
	uniform := true
	for v := range rc.Outputs {
		if fmt.Sprint(rc.Outputs[v]) != fmt.Sprint(rl.Outputs[0]) {
			uniform = false
		}
	}
	fmt.Printf("all %d nodes output exactly the loop node's output: %v\n\n", n, uniform)

	// The symmetric output is feasible but pays the price of symmetry.
	d, err := sim.EdgeSet(cycle, rc.Outputs)
	if err != nil {
		log.Fatal(err)
	}
	opt := verify.MinimumMaximalMatching(cycle).Count()
	fmt.Printf("the symmetric EDS selects all %d edges; optimum is %d: ratio %.2f, exactly the tight bound 4-2/d for d = 2\n",
		d.Count(), opt, float64(d.Count())/float64(opt))
	fmt.Println("a maximal matching would need adjacent nodes to decide differently —")
	fmt.Println("impossible here, which is why matchings are unsolvable and EDS approximation")
	fmt.Println("bottoms out at ratio 4-2/d in the port-numbering model.")
}
