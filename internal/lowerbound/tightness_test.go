package lowerbound_test

import (
	"reflect"
	"testing"

	"eds/internal/core"
	"eds/internal/lowerbound"
	"eds/internal/ratio"
	"eds/internal/sim"
	"eds/internal/verify"
)

// TestTheorem1Tightness runs the Theorem 3 algorithm on the Theorem 1
// construction: the measured ratio must equal 4 - 2/d exactly — the lower
// bound forces at least this much and the upper bound allows no more.
func TestTheorem1Tightness(t *testing.T) {
	for _, d := range []int{2, 4, 6, 8, 10, 12} {
		c := lowerbound.MustEven(d)
		got, _, err := sim.RunToEdgeSet(c.G, core.PortOne{})
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !verify.IsEdgeDominatingSet(c.G, got) {
			t.Fatalf("d=%d: output not an EDS", d)
		}
		measured := ratio.New(int64(got.Count()), int64(c.Opt.Count()))
		want := ratio.EvenRegularBound(d)
		if !measured.Equal(want) {
			t.Errorf("d=%d: measured ratio %v, want exactly %v", d, measured, want)
		}
		// The forced structure: the algorithm selects a full 2-factor,
		// i.e. |D| = |V| = 2d-1.
		if got.Count() != 2*d-1 {
			t.Errorf("d=%d: |D| = %d, want %d", d, got.Count(), 2*d-1)
		}
	}
}

// TestTheorem2Tightness runs the Theorem 4 algorithm on the Theorem 2
// construction: the measured ratio must equal 4 - 6/(d+1) exactly.
func TestTheorem2Tightness(t *testing.T) {
	for _, d := range []int{1, 3, 5, 7, 9} {
		c := lowerbound.MustOdd(d)
		got, res, err := sim.RunToEdgeSet(c.G, core.RegularOdd{})
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !verify.IsEdgeDominatingSet(c.G, got) {
			t.Fatalf("d=%d: output not an EDS", d)
		}
		if want := (core.RegularOdd{}).Rounds(d); res.Rounds != want {
			t.Errorf("d=%d: rounds = %d, want %d", d, res.Rounds, want)
		}
		measured := ratio.New(int64(got.Count()), int64(c.Opt.Count()))
		want := ratio.OddRegularBound(d)
		if !measured.Equal(want) {
			t.Errorf("d=%d: measured ratio %v, want exactly %v", d, measured, want)
		}
		// Section 4.4: any algorithm is forced to select at least
		// (2d-1)d edges; Theorem 4's output achieves it with equality.
		if got.Count() != (2*d-1)*d {
			t.Errorf("d=%d: |D| = %d, want %d", d, got.Count(), (2*d-1)*d)
		}
		// The output must be a star forest and an edge cover (Theorem 4's
		// structural invariants).
		if !verify.IsStarForest(c.G, got) {
			t.Errorf("d=%d: output is not a star forest", d)
		}
		if !verify.IsEdgeCover(c.G, got) {
			t.Errorf("d=%d: output is not an edge cover", d)
		}
	}
}

// TestCorollary1Tightness runs A(Δ) on the Theorem 1 construction with
// d = 2k (the Corollary 1 instance for both Δ = 2k and Δ = 2k+1): the
// measured ratio must equal 4 - 1/k exactly.
func TestCorollary1Tightness(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 5} {
		c := lowerbound.MustEven(2 * k)
		for _, delta := range []int{2 * k, 2*k + 1} {
			alg := core.NewGeneral(delta)
			got, _, err := sim.RunToEdgeSet(c.G, alg)
			if err != nil {
				t.Fatalf("k=%d Δ=%d: %v", k, delta, err)
			}
			if !verify.IsEdgeDominatingSet(c.G, got) {
				t.Fatalf("k=%d Δ=%d: output not an EDS", k, delta)
			}
			measured := ratio.New(int64(got.Count()), int64(c.Opt.Count()))
			want := ratio.BoundedDegreeBound(delta)
			if !measured.Equal(want) {
				t.Errorf("k=%d Δ=%d: measured ratio %v, want exactly %v", k, delta, measured, want)
			}
		}
	}
}

// TestUniformOutputsOnFibres verifies the covering-map lemma end to end:
// on the adversarial constructions, all nodes of the same fibre produce
// identical outputs, and those outputs equal the quotient node's output
// when the same algorithm runs on the quotient multigraph.
func TestUniformOutputsOnFibres(t *testing.T) {
	t.Run("even d=6 portone", func(t *testing.T) {
		c := lowerbound.MustEven(6)
		checkFibres(t, c, core.PortOne{})
	})
	t.Run("odd d=5 regularodd", func(t *testing.T) {
		c := lowerbound.MustOdd(5)
		checkFibres(t, c, core.RegularOdd{})
	})
	t.Run("odd d=5 general", func(t *testing.T) {
		c := lowerbound.MustOdd(5)
		checkFibres(t, c, core.NewGeneral(5))
	})
}

func checkFibres(t *testing.T, c *lowerbound.Construction, alg sim.Algorithm) {
	t.Helper()
	rg, err := sim.RunSequential(c.G, alg)
	if err != nil {
		t.Fatalf("run on G: %v", err)
	}
	rq, err := sim.RunSequential(c.Quotient, alg)
	if err != nil {
		t.Fatalf("run on quotient: %v", err)
	}
	for v := 0; v < c.G.N(); v++ {
		if !reflect.DeepEqual(rg.Outputs[v], rq.Outputs[c.Map[v]]) {
			t.Fatalf("node %d outputs %v but its quotient image %d outputs %v",
				v, rg.Outputs[v], c.Map[v], rq.Outputs[c.Map[v]])
		}
	}
}

// TestAnyAlgorithmForcedOnEven spot-checks the Theorem 1 argument itself
// for other algorithms: whatever deterministic algorithm runs on the
// construction, its output size is at least |V| = 2d-1 whenever it is a
// feasible EDS (every node selects the same non-empty port set, so a full
// 2-factor is selected).
func TestAnyAlgorithmForcedOnEven(t *testing.T) {
	c := lowerbound.MustEven(6)
	algs := []sim.Algorithm{
		core.PortOne{},
		core.NewGeneral(6),
		core.NewGeneral(9), // even with slack, the bound is forced
	}
	for _, alg := range algs {
		got, _, err := sim.RunToEdgeSet(c.G, alg)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if !verify.IsEdgeDominatingSet(c.G, got) {
			t.Fatalf("%s: not an EDS", alg.Name())
		}
		if got.Count() < c.G.N() {
			t.Errorf("%s: |D| = %d < |V| = %d contradicts Theorem 1", alg.Name(), got.Count(), c.G.N())
		}
	}
}
