module eds

go 1.24
