package sim

// StateArena is a bump allocator for per-node algorithm state. A
// BulkAlgorithm carves its nodes' int and bool slices out of a small
// number of large chunks instead of allocating one heap object per
// node, so constructing a 100k-node run costs O(1) allocations, not
// O(n) — and because the arenas live inside the pooled runState, a
// steady-state workload of one recurring graph shape reaches zero
// construction allocations after its first run: the chunks are
// retained across runs and merely rewound.
//
// Lifetime contract (the arenaalias analyzer in internal/lint enforces
// it mechanically): a carved slice is engine-owned, valid only for the
// run it was carved in. The engine rewinds the arena when the next run
// acquires the pooled state, after which every previously carved slice
// aliases freshly zeroed state of an unrelated run. Algorithms store
// carved slices in node state that dies with the run — never in the
// Algorithm value itself, a package-level variable, a channel, or a
// goroutine that outlives the run.
//
// Carve is NOT safe for concurrent use; the sharded engine gives every
// worker its own arena, so per-shard construction needs no locks.
type StateArena struct {
	ints  arenaSlab[int]
	bools arenaSlab[bool]
}

// Ints carves a zeroed []int of length n (capacity capped at n, so an
// append past the carved length cannot bleed into a neighbour's state).
func (a *StateArena) Ints(n int) []int { return a.ints.carve(n) }

// Bools carves a zeroed []bool of length n, capacity capped at n.
func (a *StateArena) Bools(n int) []bool { return a.bools.carve(n) }

// reset rewinds the arena to empty, keeping the chunks for reuse. The
// engines call it when the pooled runState is acquired; every slice
// carved before the reset is invalidated.
func (a *StateArena) reset() {
	a.ints.reset()
	a.bools.reset()
}

// arenaMinChunk is the element count of a slab's first chunk. Chunks
// at least double, so a slab serving total T elements holds O(log T)
// chunks and wastes at most half of the last one.
const arenaMinChunk = 1024

// arenaSlab is one element type's chunk list plus a bump cursor.
type arenaSlab[T int | bool] struct {
	chunks [][]T
	chunk  int // index of the chunk the cursor is in
	off    int // first free element of chunks[chunk]
}

func (s *arenaSlab[T]) carve(n int) []T {
	if n <= 0 {
		return nil
	}
	for {
		if s.chunk < len(s.chunks) {
			c := s.chunks[s.chunk]
			if s.off+n <= len(c) {
				out := c[s.off : s.off+n : s.off+n]
				s.off += n
				// Chunks are recycled across runs; hand out zeroed state.
				clear(out)
				return out
			}
			// The tail of this chunk is too small; skip to the next. The
			// waste is bounded by one request size per chunk.
			s.chunk++
			s.off = 0
			continue
		}
		size := arenaMinChunk
		if len(s.chunks) > 0 {
			size = 2 * len(s.chunks[len(s.chunks)-1])
		}
		for size < n {
			size *= 2
		}
		s.chunks = append(s.chunks, make([]T, size))
	}
}

func (s *arenaSlab[T]) reset() {
	s.chunk, s.off = 0, 0
}
