package server

import (
	"fmt"
	"sync"
	"time"

	"eds/internal/sim"
)

// histogram is a log-2 histogram: bucket k counts observations in
// [2^(k-1), 2^k) of the unit (bucket 0 is < 1), with the last bucket
// absorbing the overflow. The same machinery backs every distribution
// /statsz exposes — per-algorithm latencies (unit "ms", 16 buckets
// cover ~32 s, past any deadline the server grants), batch sizes (unit
// "", 16 buckets cover 32k-way coalescing), and streamed response sizes
// (unit "B", 28 buckets cover 128 MiB bodies).
type histogram struct {
	buckets []int64
	unit    string
	count   int64
	sum     int64
	max     int64
}

func newHistogram(nbuckets int, unit string) *histogram {
	return &histogram{buckets: make([]int64, nbuckets), unit: unit}
}

func (h *histogram) observe(v int64) {
	k := 0
	for x := v; x > 0 && k < len(h.buckets)-1; x >>= 1 {
		k++
	}
	h.buckets[k]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// histogramSnapshot is the JSON shape of one histogram in /statsz.
type histogramSnapshot struct {
	Count   int64            `json:"count"`
	Mean    float64          `json:"mean"`
	Max     int64            `json:"max"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

func (h *histogram) snapshot() histogramSnapshot {
	s := histogramSnapshot{Count: h.count, Max: h.max, Buckets: map[string]int64{}}
	if h.count > 0 {
		s.Mean = float64(h.sum) / float64(h.count)
	}
	for k, c := range h.buckets {
		if c == 0 {
			continue
		}
		label := "<1" + h.unit
		if k > 0 {
			label = fmt.Sprintf("<%d%s", 1<<k, h.unit)
		}
		if k == len(h.buckets)-1 {
			label = fmt.Sprintf(">=%d%s", 1<<(k-1), h.unit)
		}
		s.Buckets[label] = c
	}
	return s
}

// peerCounters tracks this replica's traffic with one peer, keyed by the
// peer's base URL. Sent/relayed/fallbacks count this replica acting as
// a non-owner (client of the fill protocol); served counts it acting as
// the owner for that peer.
type peerCounters struct {
	// FillsSent is the number of fill requests this replica addressed to
	// the peer (each with its own retry budget).
	FillsSent int64 `json:"fills_sent"`
	// FillsRelayed is how many of those produced an answer relayed to
	// the client — a cached or computed 200, or a deterministic error.
	FillsRelayed int64 `json:"fills_relayed"`
	// Fallbacks is how many fills failed (peer unreachable, draining, or
	// saturated) and degraded to local compute.
	Fallbacks int64 `json:"fallbacks"`
	// FillsServed is the number of fill requests this replica answered
	// as the owner on the peer's behalf.
	FillsServed int64 `json:"fills_served"`
}

// stats aggregates the serving metrics exposed at /statsz. One mutex is
// plenty: every field is touched a handful of times per request, far
// off any hot path.
type stats struct {
	mu          sync.Mutex
	requests    int64
	byStatus    map[int]int64
	cacheHits   int64
	cacheMisses int64
	coalesced   int64
	perAlg      map[string]*histogram
	// phases accumulates the engines' setup/rounds/outputs wall-time
	// split (sim.WithTimings) over every completed run, exposing where
	// serving time actually goes: a setup-heavy mix means run construction
	// dominates and the arena/bulk path is the lever; a rounds-heavy mix
	// means the protocol itself does. runs doubles as the replica's
	// engine-run counter — the cluster e2e suite sums it across replicas
	// to prove a graph was computed exactly once fleet-wide.
	phases sim.Timings
	runs   int64
	// batchSizes distributes how many requests each engine run served
	// (leader + coalesced followers): the windowed batcher's yield.
	batchSizes *histogram
	// stream counts chunked NDJSON responses and their bytes; the
	// histogram shows the size distribution the buffered-JSON path never
	// has to hold in memory.
	streamResponses int64
	streamBytes     int64
	streamSizes     *histogram
	peers           map[string]*peerCounters
}

func newStats() *stats {
	return &stats{
		byStatus:    map[int]int64{},
		perAlg:      map[string]*histogram{},
		batchSizes:  newHistogram(16, ""),
		streamSizes: newHistogram(28, "B"),
		peers:       map[string]*peerCounters{},
	}
}

func (s *stats) recordStatus(code int) {
	s.mu.Lock()
	s.requests++
	s.byStatus[code]++
	s.mu.Unlock()
}

func (s *stats) recordCache(hit bool) {
	s.mu.Lock()
	if hit {
		s.cacheHits++
	} else {
		s.cacheMisses++
	}
	s.mu.Unlock()
}

// recordCoalesced counts a follower served from an identical in-flight
// run's shared outcome (the singleflight path).
func (s *stats) recordCoalesced() {
	s.mu.Lock()
	s.coalesced++
	s.mu.Unlock()
}

// recordPhases accumulates one completed run's phase split.
func (s *stats) recordPhases(split sim.Timings) {
	s.mu.Lock()
	s.phases.Setup += split.Setup
	s.phases.Rounds += split.Rounds
	s.phases.Outputs += split.Outputs
	s.runs++
	s.mu.Unlock()
}

// recordBatch notes that one engine run's outcome served size requests.
func (s *stats) recordBatch(size int64) {
	s.mu.Lock()
	s.batchSizes.observe(size)
	s.mu.Unlock()
}

// recordStream notes one finished NDJSON response of n body bytes.
func (s *stats) recordStream(n int64) {
	s.mu.Lock()
	s.streamResponses++
	s.streamBytes += n
	s.streamSizes.observe(n)
	s.mu.Unlock()
}

func (s *stats) peer(base string) *peerCounters {
	p := s.peers[base]
	if p == nil {
		p = &peerCounters{}
		s.peers[base] = p
	}
	return p
}

func (s *stats) recordFillSent(base string) {
	s.mu.Lock()
	s.peer(base).FillsSent++
	s.mu.Unlock()
}

func (s *stats) recordFillRelayed(base string) {
	s.mu.Lock()
	s.peer(base).FillsRelayed++
	s.mu.Unlock()
}

func (s *stats) recordFallback(base string) {
	s.mu.Lock()
	s.peer(base).Fallbacks++
	s.mu.Unlock()
}

func (s *stats) recordFillServed(base string) {
	s.mu.Lock()
	s.peer(base).FillsServed++
	s.mu.Unlock()
}

func (s *stats) recordLatency(alg string, d time.Duration) {
	s.mu.Lock()
	h := s.perAlg[alg]
	if h == nil {
		h = newHistogram(16, "ms")
		s.perAlg[alg] = h
	}
	h.observe(d.Milliseconds())
	s.mu.Unlock()
}

// statsSnapshot is a consistent copy of every counter stats owns.
type statsSnapshot struct {
	requests        int64
	byStatus        map[string]int64
	hits, misses    int64
	coalesced       int64
	perAlg          map[string]histogramSnapshot
	phases          sim.Timings
	runs            int64
	batchSizes      histogramSnapshot
	streamResponses int64
	streamBytes     int64
	streamSizes     histogramSnapshot
	peers           map[string]peerCounters
}

func (s *stats) snapshot() statsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := statsSnapshot{
		requests:        s.requests,
		byStatus:        make(map[string]int64, len(s.byStatus)),
		hits:            s.cacheHits,
		misses:          s.cacheMisses,
		coalesced:       s.coalesced,
		perAlg:          make(map[string]histogramSnapshot, len(s.perAlg)),
		phases:          s.phases,
		runs:            s.runs,
		batchSizes:      s.batchSizes.snapshot(),
		streamResponses: s.streamResponses,
		streamBytes:     s.streamBytes,
		streamSizes:     s.streamSizes.snapshot(),
		peers:           make(map[string]peerCounters, len(s.peers)),
	}
	for code, c := range s.byStatus {
		snap.byStatus[fmt.Sprintf("%d", code)] = c
	}
	for alg, h := range s.perAlg {
		snap.perAlg[alg] = h.snapshot()
	}
	for base, p := range s.peers {
		snap.peers[base] = *p
	}
	return snap
}
