package server

import (
	"container/list"
	"sync"
)

// resultCache is a fixed-capacity LRU of finished response bodies, keyed
// by canonical graph bytes + resolved algorithm + response shape (see
// cacheKey in server.go). A hit returns the exact bytes of the original
// response, so repeated identical requests are served without touching
// the admission queue or an engine. A capacity <= 0 disables caching.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached body for key, promoting the entry to most
// recently used. The caller must not modify the returned slice.
func (c *resultCache) get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put inserts or refreshes key, evicting the least recently used entry
// past capacity.
func (c *resultCache) put(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
