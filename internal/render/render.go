// Package render turns port-numbered graphs into Graphviz DOT and plain
// text, used by cmd/figures to regenerate the paper's Figures 1-9 as
// machine-checked artifacts.
package render

import (
	"fmt"
	"sort"
	"strings"

	"eds/internal/graph"
)

// Overlay names an edge set to highlight and the DOT color to use.
type Overlay struct {
	Name  string
	Set   *graph.EdgeSet
	Color string
}

// Options configures rendering.
type Options struct {
	// Title labels the graph.
	Title string
	// NodeLabels overrides the default numeric labels.
	NodeLabels []string
	// Overlays highlights edge sets (drawn bold in their color; the first
	// matching overlay wins).
	Overlays []Overlay
	// Ports annotates every edge endpoint with its port number.
	Ports bool
	// Classes colors nodes by covering-map fibre.
	Classes []int
}

var classPalette = []string{
	"lightblue", "lightsalmon", "palegreen", "plum", "khaki", "lightpink",
	"powderblue", "wheat", "thistle", "honeydew", "mistyrose", "lavender",
}

// DOT renders g as an undirected Graphviz graph. Directed loops are drawn
// as dashed self-arcs.
func DOT(g *graph.Graph, opts Options) string {
	var sb strings.Builder
	sb.WriteString("graph G {\n")
	if opts.Title != "" {
		fmt.Fprintf(&sb, "  label=%q;\n  labelloc=\"t\";\n", opts.Title)
	}
	sb.WriteString("  node [shape=circle, fontsize=10];\n  edge [fontsize=8];\n")
	for v := 0; v < g.N(); v++ {
		label := fmt.Sprint(v)
		if opts.NodeLabels != nil && v < len(opts.NodeLabels) {
			label = opts.NodeLabels[v]
		}
		attrs := []string{fmt.Sprintf("label=%q", label)}
		if opts.Classes != nil && v < len(opts.Classes) {
			color := classPalette[opts.Classes[v]%len(classPalette)]
			attrs = append(attrs, "style=filled", fmt.Sprintf("fillcolor=%q", color))
		}
		fmt.Fprintf(&sb, "  n%d [%s];\n", v, strings.Join(attrs, ", "))
	}
	for idx, e := range g.Edges() {
		var attrs []string
		if opts.Ports {
			attrs = append(attrs,
				fmt.Sprintf("taillabel=\"%d\"", e.A.Num),
				fmt.Sprintf("headlabel=\"%d\"", e.B.Num))
		}
		for _, ov := range opts.Overlays {
			if ov.Set.Has(idx) {
				attrs = append(attrs, fmt.Sprintf("color=%q", ov.Color), "penwidth=2.5")
				break
			}
		}
		if e.IsDirectedLoop() {
			attrs = append(attrs, "style=dashed")
		}
		line := fmt.Sprintf("  n%d -- n%d", e.A.Node, e.B.Node)
		if len(attrs) > 0 {
			line += " [" + strings.Join(attrs, ", ") + "]"
		}
		sb.WriteString(line + ";\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Text renders g as a plain-text port table plus the overlays as edge
// lists — the format used for the .txt figure artifacts and for quick
// terminal inspection.
func Text(g *graph.Graph, opts Options) string {
	var sb strings.Builder
	if opts.Title != "" {
		sb.WriteString(opts.Title + "\n")
		sb.WriteString(strings.Repeat("=", len(opts.Title)) + "\n")
	}
	fmt.Fprintf(&sb, "nodes: %d, edges: %d\n", g.N(), g.M())
	label := func(v int) string {
		if opts.NodeLabels != nil && v < len(opts.NodeLabels) {
			return opts.NodeLabels[v]
		}
		return fmt.Sprint(v)
	}
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(&sb, "  %s (deg %d):", label(v), g.Deg(v))
		for i := 1; i <= g.Deg(v); i++ {
			q := g.P(v, i)
			fmt.Fprintf(&sb, "  %d->%s:%d", i, label(q.Node), q.Num)
		}
		sb.WriteString("\n")
	}
	for _, ov := range opts.Overlays {
		pairs := graph.SortedPairs(g, ov.Set)
		parts := make([]string, 0, len(pairs))
		for _, p := range pairs {
			parts = append(parts, fmt.Sprintf("{%s,%s}", label(p[0]), label(p[1])))
		}
		sort.Strings(parts)
		fmt.Fprintf(&sb, "%s (%d edges): %s\n", ov.Name, ov.Set.Count(), strings.Join(parts, " "))
	}
	return sb.String()
}
