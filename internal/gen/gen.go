// Package gen builds port-numbered graphs for tests, examples, and
// benchmarks: classic families (cycles, complete and bipartite graphs,
// crowns, stars, hypercubes, tori) and seeded random families (regular,
// bounded-degree, trees). Ports are assigned in edge insertion order;
// RelabelPorts derives adversarial alternative numberings.
package gen

import (
	"fmt"

	"eds/internal/graph"
)

// Cycle returns the n-cycle, n >= 3. It is 2-regular and simple.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: cycle needs n >= 3, got %d", n))
	}
	edges := make([][2]int, 0, n)
	for v := 0; v < n; v++ {
		edges = append(edges, [2]int{v, (v + 1) % n})
	}
	return graph.MustFromUndirected(n, edges)
}

// Path returns the path with n nodes (n-1 edges), n >= 1.
func Path(n int) *graph.Graph {
	if n < 1 {
		panic(fmt.Sprintf("gen: path needs n >= 1, got %d", n))
	}
	edges := make([][2]int, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, [2]int{v, v + 1})
	}
	return graph.MustFromUndirected(n, edges)
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	edges := make([][2]int, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	return graph.MustFromUndirected(n, edges)
}

// CompleteBipartite returns K_{a,b}: nodes 0..a-1 on the left side,
// a..a+b-1 on the right side.
func CompleteBipartite(a, b int) *graph.Graph {
	edges := make([][2]int, 0, a*b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			edges = append(edges, [2]int{u, a + v})
		}
	}
	return graph.MustFromUndirected(a+b, edges)
}

// Crown returns the crown graph S_n^0: K_{n,n} minus the perfect matching
// {i, n+i}. It is (n-1)-regular. The paper uses crowns as the T(ℓ) part of
// the Theorem 2 components. Requires n >= 2.
func Crown(n int) *graph.Graph {
	if n < 2 {
		panic(fmt.Sprintf("gen: crown needs n >= 2, got %d", n))
	}
	edges := make([][2]int, 0, n*(n-1))
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				edges = append(edges, [2]int{u, n + v})
			}
		}
	}
	return graph.MustFromUndirected(2*n, edges)
}

// Star returns the star K_{1,k}: node 0 is the centre, 1..k are leaves.
func Star(k int) *graph.Graph {
	edges := make([][2]int, 0, k)
	for v := 1; v <= k; v++ {
		edges = append(edges, [2]int{0, v})
	}
	return graph.MustFromUndirected(k+1, edges)
}

// PerfectMatching returns k disjoint edges on 2k nodes (1-regular): the
// graph family of the Δ = 1 row of Table 1.
func PerfectMatching(k int) *graph.Graph {
	edges := make([][2]int, 0, k)
	for i := 0; i < k; i++ {
		edges = append(edges, [2]int{2 * i, 2*i + 1})
	}
	return graph.MustFromUndirected(2*k, edges)
}

// Hypercube returns the dim-dimensional hypercube Q_dim (dim-regular,
// 2^dim nodes).
func Hypercube(dim int) *graph.Graph {
	if dim < 1 || dim > 20 {
		panic(fmt.Sprintf("gen: hypercube dimension %d out of range [1,20]", dim))
	}
	n := 1 << uint(dim)
	edges := make([][2]int, 0, n*dim/2)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			u := v ^ (1 << uint(b))
			if v < u {
				edges = append(edges, [2]int{v, u})
			}
		}
	}
	return graph.MustFromUndirected(n, edges)
}

// Torus returns the rows x cols toroidal grid (4-regular). Both dimensions
// must be >= 3 so the graph stays simple.
func Torus(rows, cols int) *graph.Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("gen: torus needs both dimensions >= 3, got %dx%d", rows, cols))
	}
	id := func(r, c int) int { return r*cols + c }
	edges := make([][2]int, 0, 2*rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			edges = append(edges,
				[2]int{id(r, c), id(r, (c+1)%cols)},
				[2]int{id(r, c), id((r+1)%rows, c)})
		}
	}
	return graph.MustFromUndirected(rows*cols, edges)
}

// Petersen returns the Petersen graph (3-regular, 10 nodes): outer 5-cycle
// 0..4, inner 5-star 5..9, spokes i -- i+5.
func Petersen() *graph.Graph {
	edges := make([][2]int, 0, 15)
	for i := 0; i < 5; i++ {
		edges = append(edges,
			[2]int{i, (i + 1) % 5},     // outer cycle
			[2]int{i, i + 5},           // spoke
			[2]int{5 + i, 5 + (i+2)%5}) // inner pentagram
	}
	return graph.MustFromUndirected(10, edges)
}
