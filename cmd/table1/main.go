// Command table1 regenerates Table 1 of the paper: for every graph
// family it runs the matching algorithm on the adversarial lower-bound
// construction and reports the measured approximation ratio as an exact
// rational next to the paper's closed-form bound. All rows must read
// tight=yes; anything else is a bug.
//
// Usage:
//
//	table1 [-max-even 16] [-max-odd 13] [-max-delta 13] [-study] [-scaling]
package main

import (
	"flag"
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("table1: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	maxEven := fs.Int("max-even", 16, "largest even d for the d-regular rows")
	maxOdd := fs.Int("max-odd", 13, "largest odd d for the d-regular rows")
	maxDelta := fs.Int("max-delta", 13, "largest Δ for the bounded-degree rows")
	study := fs.Bool("study", false, "append random-graph typical-case studies")
	scaling := fs.Bool("scaling", false, "append the rounds-vs-n locality study")
	seed := fs.Int64("seed", 1, "seed for the optional studies")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return emit(os.Stdout, *maxEven, *maxOdd, *maxDelta, *study, *scaling, *seed)
}
