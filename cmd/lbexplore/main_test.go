package main

import (
	"strings"
	"testing"
)

func TestExploreEven(t *testing.T) {
	var sb strings.Builder
	if err := explore(&sb, 6, true); err != nil {
		t.Fatalf("explore: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"Theorem 1 construction for d = 6",
		"covering map onto a 1-node quotient multigraph: verified",
		"portone",
		"fibre 0 (11 nodes)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExploreOdd(t *testing.T) {
	var sb strings.Builder
	if err := explore(&sb, 3, false); err != nil {
		t.Fatalf("explore: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"Theorem 2 construction for d = 3", "regularodd", "feasible = true"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
