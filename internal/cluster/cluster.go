// Package cluster turns N edsd processes into one cache-coherent fleet.
//
// The paper's algorithms are deterministic functions of the
// port-numbered graph (the determinism lints in cmd/edsvet guard exactly
// this property), so a run's result is globally cacheable by the
// canonical graph digest (graph.Digest). This package adds the machinery
// that exploits it across replicas:
//
//   - static membership: every replica is configured with the same peer
//     list (cmd/edsd's -self/-peers flags) and needs no coordination
//     service — membership changes are a rolling restart;
//   - ownership: rendezvous (highest-random-weight) hashing on the graph
//     digest assigns each graph exactly one owner replica, so each graph
//     is computed and cached once fleet-wide instead of once per replica;
//   - fill protocol: a non-owner that misses its local cache POSTs the
//     raw request to the owner's /internal/v1/fill and caches the
//     returned body, groupcache-style, instead of recomputing;
//   - health: each peer is probed at /readyz on an interval and marked
//     down passively when a fill fails, so requests stop routing to
//     draining or dead replicas without waiting for the next probe;
//   - degradation: when the owner is unreachable the caller computes
//     locally — the fleet degrades to N independent caches, it never
//     fails a request because a peer died.
//
// The package owns membership, ownership, health, and the client side of
// the fill protocol; the server side (the /internal/v1/fill handler,
// which must enforce the same admission and input limits as the public
// endpoint) lives in internal/server.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Config describes one replica's view of the fleet. Zero fields take the
// documented defaults.
type Config struct {
	// Self is this replica's advertised base URL, e.g.
	// "http://10.0.0.1:8080". It must appear in Peers.
	Self string
	// Peers is the full static membership, self included, as base URLs.
	// Every replica must be configured with the same set (order is
	// irrelevant: ownership is a pure function of the set and the graph
	// digest).
	Peers []string
	// HealthInterval is the period of the per-peer /readyz probe
	// (default 2s).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default 1s).
	HealthTimeout time.Duration
	// FillTimeout bounds one fill attempt against the owner (default
	// 15s). It must comfortably exceed the server's batch window plus
	// the expected run time, or fills will fall back to local compute.
	FillTimeout time.Duration
	// MaxRetries is the number of extra fill attempts after a transport
	// failure (default 1). HTTP responses are never retried: the owner
	// answered, and its answer is either deterministic (shared) or a
	// load signal (fall back, do not hammer).
	MaxRetries int
	// Backoff is the sleep before the first retry, doubling per attempt
	// (default 50ms).
	Backoff time.Duration
	// Client issues fill and health requests (default: a plain
	// http.Client; per-attempt deadlines come from contexts).
	Client *http.Client
	// Logger receives peer state transitions (default: discard).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.FillTimeout <= 0 {
		c.FillTimeout = 15 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 1
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Cluster is one replica's live view of the fleet: the static member
// set plus each remote peer's health state.
type Cluster struct {
	cfg   Config
	self  string
	peers map[string]*Peer // keyed by base URL, self excluded

	stop chan struct{}
	done chan struct{}
}

// New validates the membership and returns a Cluster. Call Start to
// begin health probing and Stop on shutdown.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, errors.New("cluster: Self must be set")
	}
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: Peers must be non-empty (include Self)")
	}
	c := &Cluster{
		cfg:   cfg,
		self:  strings.TrimSuffix(cfg.Self, "/"),
		peers: make(map[string]*Peer),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	selfSeen := false
	for _, raw := range cfg.Peers {
		base := strings.TrimSuffix(raw, "/")
		u, err := url.Parse(base)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q is not an absolute URL", raw)
		}
		if base == c.self {
			selfSeen = true
			continue
		}
		if _, dup := c.peers[base]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer %q", raw)
		}
		// Peers start ready: a replica that is actually down is caught by
		// the first probe or marked down passively on the first failed
		// fill, and the local-compute fallback keeps the window harmless.
		c.peers[base] = newPeer(base)
	}
	if !selfSeen {
		return nil, fmt.Errorf("cluster: Self %q must appear in Peers", cfg.Self)
	}
	return c, nil
}

// Self returns this replica's advertised base URL.
func (c *Cluster) Self() string { return c.self }

// Size returns the configured membership size, self included.
func (c *Cluster) Size() int { return len(c.peers) + 1 }

// Owner picks the replica owning the graph with the given canonical
// digest: the highest rendezvous score among self and the peers
// currently believed ready. self reports whether this replica is the
// owner (also true when every peer is down — ownership degrades to
// local compute, never to an error).
func (c *Cluster) Owner(digest []byte) (owner string, self bool) {
	best := c.self
	bestScore := rendezvousScore(c.self, digest)
	for base, p := range c.peers {
		if !p.Ready() {
			continue
		}
		s := rendezvousScore(base, digest)
		if s > bestScore || (s == bestScore && base > best) {
			best, bestScore = base, s
		}
	}
	return best, best == c.self
}

// ownerAmongAll is Owner over the full member set, health ignored. Tests
// use it to find the stable owner of a digest.
func (c *Cluster) ownerAmongAll(digest []byte) string {
	best := c.self
	bestScore := rendezvousScore(c.self, digest)
	for base := range c.peers {
		s := rendezvousScore(base, digest)
		if s > bestScore || (s == bestScore && base > best) {
			best, bestScore = base, s
		}
	}
	return best
}

// OwnerAmongAll returns the owner of digest over the full configured
// membership, ignoring health. This is the stable assignment that holds
// while the whole fleet is up.
func (c *Cluster) OwnerAmongAll(digest []byte) string { return c.ownerAmongAll(digest) }

// ErrPeerUnavailable wraps fill failures that exhausted their retry
// budget or hit an owner that is draining or overloaded; the caller
// degrades to local compute.
var ErrPeerUnavailable = errors.New("cluster: peer unavailable")

// Fill asks owner to serve the given /v1/run request body and query on
// this replica's behalf. The request is marked as an internal fill (the
// owner computes locally, never re-forwards) and carries the request ID
// for cross-replica tracing.
//
// The returned response is the owner's verbatim answer — 200 with the
// response body, or a deterministic client/run error (400, 413, 500,
// 504) that the caller should relay. Transport failures are retried
// MaxRetries times with doubling backoff; exhausted retries, 503 (owner
// draining) and 429 (owner overloaded) mark the peer down where
// appropriate and return an error wrapping ErrPeerUnavailable, telling
// the caller to compute locally. The caller owes resp.Body.Close when
// err is nil.
func (c *Cluster) Fill(ctx context.Context, owner, requestID, rawQuery string, body []byte) (*http.Response, error) {
	p := c.peers[owner]
	if p == nil {
		return nil, fmt.Errorf("%w: %q is not a peer", ErrPeerUnavailable, owner)
	}
	u := owner + "/internal/v1/fill"
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	var lastErr error
	backoff := c.cfg.Backoff
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
				backoff *= 2
			case <-ctx.Done():
				//lint:ignore roundctx not an engine: a fill abandoned by its caller is a peer-unavailable outcome, and the caller matches on ErrPeerUnavailable, not sim.ErrCanceled
				return nil, fmt.Errorf("%w: %v", ErrPeerUnavailable, context.Cause(ctx))
			}
		}
		attemptCtx, cancel := context.WithTimeout(ctx, c.cfg.FillTimeout)
		req, err := http.NewRequestWithContext(attemptCtx, http.MethodPost, u, bytes.NewReader(body))
		if err != nil {
			cancel()
			return nil, fmt.Errorf("%w: building fill request: %v", ErrPeerUnavailable, err)
		}
		req.Header.Set("Content-Type", "text/plain")
		req.Header.Set("X-Eds-Peer", c.self)
		if requestID != "" {
			req.Header.Set("X-Request-ID", requestID)
		}
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			cancel()
			lastErr = err
			// Do not retry past the caller's own deadline.
			if ctx.Err() != nil {
				break
			}
			continue
		}
		switch resp.StatusCode {
		case http.StatusServiceUnavailable:
			// The owner is draining: its readiness is already false, stop
			// routing to it before the next probe notices.
			resp.Body.Close()
			cancel()
			c.markDown(p, errors.New("fill answered 503 (draining)"))
			return nil, fmt.Errorf("%w: owner %s is draining", ErrPeerUnavailable, owner)
		case http.StatusTooManyRequests:
			// Overload is transient: fall back locally but keep the peer
			// ready — its queue being full says nothing about its health.
			resp.Body.Close()
			cancel()
			return nil, fmt.Errorf("%w: owner %s is saturated", ErrPeerUnavailable, owner)
		}
		// The owner answered: deterministic outcomes (200, 400, 413, 500,
		// 504) are the caller's to relay. The body must outlive this
		// attempt's context, so tie the cancel to its Close.
		p.markUp()
		resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
		return resp, nil
	}
	c.markDown(p, lastErr)
	return nil, fmt.Errorf("%w: owner %s unreachable after %d attempts: %v",
		ErrPeerUnavailable, owner, c.cfg.MaxRetries+1, lastErr)
}

// cancelOnClose defers an attempt context's cancel until the response
// body is consumed, so streaming fill responses are not cut off at the
// end of Fill.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

func (c *Cluster) markDown(p *Peer, cause error) {
	if p.markDown(cause) {
		c.cfg.Logger.Warn("peer down", "peer", p.base, "cause", fmt.Sprint(cause))
	}
}

// Start launches the per-peer health probes. Idempotent Stop ends them.
func (c *Cluster) Start() {
	go c.healthLoop()
}

// Stop signals the health probes started by Start to exit. Safe to call
// more than once, and before Start.
func (c *Cluster) Stop() {
	select {
	case <-c.stop:
		return
	default:
		close(c.stop)
	}
}

func (c *Cluster) healthLoop() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	c.probeAll()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

func (c *Cluster) probeAll() {
	for _, p := range c.peers {
		c.probe(p)
	}
}

// probe checks one peer's /readyz. Readiness — not liveness — is the
// routing signal: a draining replica is alive but must stop receiving
// fills.
func (c *Cluster) probe(p *Peer) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/readyz", nil)
	if err != nil {
		c.markDown(p, err)
		return
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		c.markDown(p, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.markDown(p, fmt.Errorf("readyz answered %d", resp.StatusCode))
		return
	}
	if p.markUp() {
		c.cfg.Logger.Info("peer ready", "peer", p.base)
	}
}

// PeerStatus is one remote peer's health as reported by Snapshot.
type PeerStatus struct {
	URL       string    `json:"url"`
	Ready     bool      `json:"ready"`
	LastErr   string    `json:"last_err,omitempty"`
	LastEvent time.Time `json:"last_event,omitempty"`
}

// Snapshot reports every remote peer's current health, sorted by URL.
func (c *Cluster) Snapshot() []PeerStatus {
	out := make([]PeerStatus, 0, len(c.peers))
	for _, p := range c.peers {
		out = append(out, p.status())
	}
	sortStatuses(out)
	return out
}

func sortStatuses(s []PeerStatus) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].URL < s[j-1].URL; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
