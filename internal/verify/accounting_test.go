package verify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eds/internal/gen"
	"eds/internal/graph"
	"eds/internal/local"
	"eds/internal/ratio"
)

func TestAccountOnPath(t *testing.T) {
	// P4: 0-1-2-3. D* = {1,2} (minimum maximal matching). D = {0,1},{2,3}
	// (a 2-matching dominating everything). Internal nodes: 1 and 2; both
	// have one D-edge to an external node: 2c = 2 each.
	g := gen.Path(4)
	dstar := pathSet(t, g, [2]int{1, 2})
	d := pathSet(t, g, [2]int{0, 1}, [2]int{2, 3})
	a, err := Account(g, d, dstar)
	if err != nil {
		t.Fatalf("Account: %v", err)
	}
	if a.SizeD != 2 || a.SizeDstar != 1 {
		t.Fatalf("sizes: |D|=%d |D*|=%d", a.SizeD, a.SizeDstar)
	}
	if a.I != [5]int{0, 0, 2, 0, 0} {
		t.Errorf("I = %v, want [0 0 2 0 0]", a.I)
	}
}

func TestAccountRejectsNonMaximalDstar(t *testing.T) {
	g := gen.Path(6)
	notMaximal := pathSet(t, g, [2]int{0, 1})
	d := pathSet(t, g, [2]int{1, 2}, [2]int{3, 4})
	if _, err := Account(g, d, notMaximal); err == nil {
		t.Error("non-maximal D* accepted")
	}
}

func TestAccountRejectsOverDegreeD(t *testing.T) {
	// A star with all edges selected: centre has 2c = 8 > 4, which is not
	// a union of a matching and a 2-matching.
	g := gen.Star(4)
	d := allEdgeSet(g)
	dstar := MinimumMaximalMatching(g)
	if _, err := Account(g, d, dstar); err == nil {
		t.Error("degree-4 D accepted by accounting")
	}
}

func TestTheorem5AccountingQuick(t *testing.T) {
	// Run A(Δ) on random graphs, account against the exact minimum
	// maximal matching, and check every claim of Sections 7.4-7.8: the
	// identities inside Account, the double-counting inequality, and the
	// final ratio bound 4 - 1/k.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomBoundedDegree(rng, 5+rng.Intn(9), 2+rng.Intn(4), 0.5)
		if g.M() == 0 {
			return true
		}
		delta := g.MaxDegree()
		if delta < 2 {
			delta = 2
		}
		res, err := local.General(g, delta)
		if err != nil {
			return false
		}
		if !IsEdgeDominatingSet(g, res.D) {
			return false
		}
		if !IsMatching(g, res.M) || !IsKMatching(g, res.P, 2) {
			return false
		}
		if !res.M.Disjoint(res.P) {
			return false
		}
		dstar := MinimumMaximalMatching(g)
		a, err := Account(g, res.D, dstar)
		if err != nil {
			return false
		}
		normalised := delta
		if normalised%2 == 0 {
			normalised++
		}
		if normalised >= 3 {
			if err := a.CheckTheorem5Inequality(normalised); err != nil {
				return false
			}
		}
		// Ratio bound: |D| <= (4 - 1/k) |D*|.
		got := ratio.New(int64(a.SizeD), int64(a.SizeDstar))
		return got.LessEq(ratio.BoundedDegreeBound(normalised))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAccountIdentitiesQuick(t *testing.T) {
	// For any valid (D, D*) pair the two identities hold by construction;
	// verify Account enforces them on random instances with D a greedy
	// maximal matching (a matching is a fine union of matching+2-matching).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomBoundedDegree(rng, 4+rng.Intn(8), 1+rng.Intn(4), 0.6)
		if g.M() == 0 {
			return true
		}
		d := GreedyMaximalMatching(g)
		dstar := MinimumMaximalMatching(g)
		a, err := Account(g, d, dstar)
		if err != nil {
			return false
		}
		sumI := 0
		sumX := 0
		for x, c := range a.I {
			sumI += c
			sumX += x * c
		}
		return sumI == 2*a.SizeDstar && sumX == 2*a.SizeD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

var _ = graph.NewEdgeSet // keep the import if helpers change
