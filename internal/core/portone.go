package core

import (
	"eds/internal/graph"
	"eds/internal/sim"
)

// PortOne is the Theorem 3 algorithm: output all edges that are connected
// to a port with port number 1. It runs in exactly one communication
// round and achieves factor 4 - 2/d on d-regular graphs, which is optimal
// for even d (Theorem 1).
//
// The selected set D covers every node (each node's port-1 edge is in D),
// so D is an edge cover and therefore an edge dominating set. Since each
// node contributes at most one port-1 edge, |D| <= |V|.
type PortOne struct{}

var (
	_ sim.Algorithm     = PortOne{}
	_ sim.BulkAlgorithm = PortOne{}
)

// Name implements sim.Algorithm.
func (PortOne) Name() string { return "portone" }

// Rounds returns the round count of the algorithm: always 1.
func (PortOne) Rounds(int) int { return 1 }

// portOneState is one node's flag vector of chosen ports.
type portOneState struct {
	chosen []bool
}

// NewNode implements sim.Algorithm.
func (a PortOne) NewNode(degree int) sim.Node {
	return newProgNode(portOneProgram(a.Name()), degree)
}

// BuildNodes implements sim.BulkAlgorithm.
func (a PortOne) BuildNodes(g *graph.Graph, lo, hi int, arena *sim.StateArena, nodes []sim.Node) {
	prog := portOneProgram(a.Name())
	buildProgNodes(g, lo, hi, arena, nodes, func(int) *program[portOneState] { return prog })
}

// portOneProgram compiles the single mark round. The schedule is
// degree-independent (isolated nodes just see an empty buffer), so one
// program serves every node.
func portOneProgram(kind string) *program[portOneState] {
	return cachedProgram(kind, 0, func() *program[portOneState] {
		return &program[portOneState]{
			init: func(st *portOneState, deg int, arena *sim.StateArena) {
				st.chosen = arenaBools(arena, deg)
			},
			steps: []pstep[portOneState]{{
				send: func(st *portOneState, buf []sim.Message) {
					if len(buf) >= 1 {
						buf[0] = msgMark{}
					}
				},
				recv: func(st *portOneState, inbox []sim.Message) {
					if len(inbox) >= 1 {
						st.chosen[0] = true
					}
					for idx, m := range inbox {
						if _, ok := m.(msgMark); ok {
							st.chosen[idx] = true
						}
					}
				},
			}},
			output: func(st *portOneState, _ int, dst []int) []int {
				return appendChosen(dst, st.chosen)
			},
		}
	})
}

// AllEdges is the trivial algorithm that selects every edge, with no
// communication at all. For graphs of maximum degree 1 it is exactly
// optimal (the Δ = 1 row of Table 1): every edge of a perfect matching
// must be in any edge dominating set.
type AllEdges struct{}

var (
	_ sim.Algorithm     = AllEdges{}
	_ sim.BulkAlgorithm = AllEdges{}
)

// Name implements sim.Algorithm.
func (AllEdges) Name() string { return "alledges" }

// Rounds returns the round count of the algorithm: always 0.
func (AllEdges) Rounds(int) int { return 0 }

// NewNode implements sim.Algorithm.
func (a AllEdges) NewNode(degree int) sim.Node {
	return newProgNode(allEdgesProgram(a.Name()), degree)
}

// BuildNodes implements sim.BulkAlgorithm.
func (a AllEdges) BuildNodes(g *graph.Graph, lo, hi int, arena *sim.StateArena, nodes []sim.Node) {
	prog := allEdgesProgram(a.Name())
	buildProgNodes(g, lo, hi, arena, nodes, func(int) *program[struct{}] { return prog })
}

// allEdgesProgram compiles the empty schedule: born done, every port
// chosen.
func allEdgesProgram(kind string) *program[struct{}] {
	return cachedProgram(kind, 0, func() *program[struct{}] {
		return &program[struct{}]{
			output: func(_ *struct{}, deg int, dst []int) []int {
				for i := 1; i <= deg; i++ {
					dst = append(dst, i)
				}
				return dst
			},
		}
	})
}
