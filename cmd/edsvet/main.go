// edsvet is the repository's custom vet: a multichecker driving the
// eds/internal/lint analyzers over package patterns, in the spirit of
// `go vet -vettool`. It enforces the invariants the engine-equivalence
// story depends on but no compiler checks:
//
//	algdeterminism  node code must be a deterministic function of local
//	                state and received messages (no time, no rand, no
//	                map-order emission, no global state)
//	outboxalias     engine-owned message buffers must not be retained
//	                past the callback that received them
//	roundctx        round loops must poll the run context; cancellation
//	                errors must wrap the shared ErrCanceled sentinel
//	enginekey       new engine registrations must assert result
//	                equivalence or opt out of result-cache sharing
//
// Usage:
//
//	go run ./cmd/edsvet ./...            # whole module incl. tests (the CI invocation)
//	go run ./cmd/edsvet ./internal/sim ./internal/server
//	go run ./cmd/edsvet -test=false ./...  # non-test sources only
//	go run ./cmd/edsvet -list            # describe the analyzers
//
// Test files are linted by default: round hooks and Receive callbacks
// written inside _test.go files handle the same engine-owned buffers as
// production code, so they get the same outboxalias (and sibling)
// scrutiny. -test=false restores the sources-only view.
//
// Findings print in the `file:line:col: analyzer: message` format; the
// exit status is 1 when any finding survives its suppressions, 2 when
// loading or type-checking fails, 0 otherwise. Deliberate violations
// are silenced in source with a justified directive:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"eds/internal/lint"
	"eds/internal/lint/checker"
	"eds/internal/lint/loader"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	tests := flag.Bool("test", true, "also lint _test.go files (in-package and external test packages)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: edsvet [-list] [-test=false] [package patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mod, err := loader.ModuleDir(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "edsvet:", err)
		os.Exit(2)
	}
	load := loader.Load
	if *tests {
		load = loader.LoadTests
	}
	pkgs, err := load(mod, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edsvet:", err)
		os.Exit(2)
	}
	findings, err := checker.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "edsvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "edsvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
